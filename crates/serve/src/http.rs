//! Minimal HTTP/1.1 codec: deadline-guarded request-head reading, fixed
//! content-length bodies, and response writing — just enough protocol
//! for the serving front-end, with every abuse path mapped to a typed
//! outcome instead of a hang or a panic.
//!
//! The server never reads more than it has been promised: the head is
//! capped at a configured byte budget, the body at a configured length,
//! and both reads carry wall-clock deadlines so a slowloris client
//! (bytes trickling in below the deadline) is answered with 408 and
//! disconnected instead of pinning a worker. Chunked transfer encoding
//! is deliberately not implemented (501): every dcspan payload has a
//! known length.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed request head: method, path (query string stripped), and the
/// raw header list.
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// Request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path with any `?query` suffix removed.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, values trimmed.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length: `Some(0)` when absent, `None` when
    /// present but not a decimal integer.
    pub fn content_length(&self) -> Option<usize> {
        match self.header("content-length") {
            None => Some(0),
            Some(v) => v.trim().parse::<usize>().ok(),
        }
    }

    /// True when the client declared `Transfer-Encoding: chunked`.
    pub fn is_chunked(&self) -> bool {
        self.header("transfer-encoding")
            .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    }

    /// True when the client asked for the connection to close after
    /// this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.to_ascii_lowercase().contains("close"))
    }

    /// True when the client sent `Expect: 100-continue` and is waiting
    /// for the interim response before transmitting the body.
    pub fn expects_continue(&self) -> bool {
        self.header("expect")
            .is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"))
    }

    /// Parse the bytes of one head (everything before `CRLF CRLF`).
    fn parse(bytes: &[u8]) -> Option<RequestHead> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next()?.to_string();
        let target = parts.next()?;
        let version = parts.next()?;
        if !version.starts_with("HTTP/1.") || parts.next().is_some() {
            return None;
        }
        let path = match target.split_once('?') {
            Some((p, _)) => p.to_string(),
            None => target.to_string(),
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line.split_once(':')?;
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        Some(RequestHead {
            method,
            path,
            headers,
        })
    }
}

/// What came of waiting for a request head on a connection.
#[derive(Debug)]
pub enum HeadOutcome {
    /// A complete head plus any body bytes read past it.
    Request(RequestHead, Vec<u8>),
    /// The client closed (or sent nothing within the idle window) with
    /// no partial request on the wire — close silently.
    Idle,
    /// The client vanished or errored mid-head — close silently.
    Disconnect,
    /// Bytes arrived but the head did not complete before the deadline
    /// (slowloris) — answer 408 and close.
    Partial,
    /// The head exceeded the byte cap — answer 431 and close.
    TooLarge,
    /// A complete head that does not parse as HTTP/1.x — answer 400
    /// and close.
    Malformed,
}

/// Position just past the first `CRLF CRLF` in `buf`, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Arm `stream`'s read timeout, flooring at 1 ms (a zero timeout is an
/// error to the OS, and we want "expired" to surface as `Partial`, not
/// as a config mistake).
fn arm_timeout(stream: &TcpStream, remaining: Duration) -> bool {
    stream
        .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
        .is_ok()
}

/// True when a read error means "timeout expired" rather than "peer
/// gone" (portably, timeouts surface as `WouldBlock` or `TimedOut`).
fn is_timeout(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Wait for one request head. The first byte may take up to `idle`
/// (keep-alive gap between requests); once bytes start arriving the
/// whole head must complete within `deadline` and `max_bytes`.
pub fn read_head(
    stream: &mut TcpStream,
    max_bytes: usize,
    idle: Duration,
    deadline: Duration,
) -> HeadOutcome {
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    let mut deadline_at: Option<Instant> = None;
    loop {
        let remaining = match deadline_at {
            None => idle,
            Some(at) => match at.checked_duration_since(Instant::now()) {
                Some(rem) if rem > Duration::ZERO => rem,
                _ => return HeadOutcome::Partial,
            },
        };
        if !arm_timeout(stream, remaining) {
            return HeadOutcome::Disconnect;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    HeadOutcome::Idle
                } else {
                    HeadOutcome::Disconnect
                };
            }
            Ok(n) => {
                if deadline_at.is_none() {
                    deadline_at = Some(Instant::now() + deadline);
                }
                buf.extend_from_slice(&chunk[..n]);
                if let Some(end) = head_end(&buf) {
                    let leftover = buf[end..].to_vec();
                    return match RequestHead::parse(&buf[..end - 4]) {
                        Some(head) => HeadOutcome::Request(head, leftover),
                        None => HeadOutcome::Malformed,
                    };
                }
                if buf.len() > max_bytes {
                    return HeadOutcome::TooLarge;
                }
            }
            Err(e) if is_timeout(e.kind()) => {
                return if buf.is_empty() {
                    HeadOutcome::Idle
                } else {
                    HeadOutcome::Partial
                };
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return HeadOutcome::Disconnect,
        }
    }
}

/// Read a `len`-byte body, seeded with the bytes already pulled past the
/// head. `None` means the client stalled past the deadline or vanished.
pub fn read_body(
    stream: &mut TcpStream,
    leftover: Vec<u8>,
    len: usize,
    deadline: Duration,
) -> Option<Vec<u8>> {
    let mut body = leftover;
    if body.len() >= len {
        body.truncate(len);
        return Some(body);
    }
    let deadline_at = Instant::now() + deadline;
    let mut chunk = [0u8; 4096];
    while body.len() < len {
        let remaining = deadline_at.checked_duration_since(Instant::now())?;
        if remaining == Duration::ZERO || !arm_timeout(stream, remaining) {
            return None;
        }
        let want = (len - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return None,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(body)
}

/// Canonical reason phrase for every status the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one fixed-length response. `extra` headers are emitted verbatim
/// (e.g. `Retry-After` on 429).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = String::with_capacity(128);
    head.push_str("HTTP/1.1 ");
    head.push_str(&status.to_string());
    head.push(' ');
    head.push_str(reason(status));
    head.push_str("\r\nContent-Type: ");
    head.push_str(content_type);
    head.push_str("\r\nContent-Length: ");
    head.push_str(&body.len().to_string());
    head.push_str("\r\nConnection: ");
    head.push_str(if keep_alive { "keep-alive" } else { "close" });
    head.push_str("\r\n");
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write per response: a split head/body write stalls on
    // Nagle + delayed ACK (~40 ms per exchange) under keep-alive.
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    stream.write_all(&message)?;
    stream.flush()
}

/// Write the `100 Continue` interim response.
pub fn write_continue(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
}

/// A response as seen by a client (the load generator and the tests).
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The full body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossless for everything this server emits).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Client side: read one complete response (status line, headers,
/// `Content-Length` body) within `deadline`. `None` on timeout, close,
/// or malformed response. Interim `100 Continue` responses are skipped.
pub fn read_response(stream: &mut TcpStream, deadline: Duration) -> Option<ClientResponse> {
    let deadline_at = Instant::now() + deadline;
    loop {
        let resp = read_one_response(stream, deadline_at)?;
        if resp.status != 100 {
            return Some(resp);
        }
    }
}

fn read_one_response(stream: &mut TcpStream, deadline_at: Instant) -> Option<ClientResponse> {
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    let end = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        let remaining = deadline_at.checked_duration_since(Instant::now())?;
        if remaining == Duration::ZERO || !arm_timeout(stream, remaining) {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    };
    let head_text = std::str::from_utf8(&buf[..end - 4]).ok()?;
    let mut lines = head_text.split("\r\n");
    let status_line = lines.next()?;
    let mut parts = status_line.splitn(3, ' ');
    let _version = parts.next()?;
    let status: u16 = parts.next()?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':')?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let len: usize = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = buf[end..].to_vec();
    while body.len() < len {
        let remaining = deadline_at.checked_duration_since(Instant::now())?;
        if remaining == Duration::ZERO || !arm_timeout(stream, remaining) {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    body.truncate(len);
    Some(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Client side: send one request with an optional body. The path is sent
/// verbatim; callers keep the connection for keep-alive reuse.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = String::with_capacity(96);
    head.push_str(method);
    head.push(' ');
    head.push_str(path);
    head.push_str(" HTTP/1.1\r\nHost: dcspan\r\nContent-Length: ");
    head.push_str(&body.len().to_string());
    head.push_str("\r\n\r\n");
    // Single write for the same reason as `write_response`: two small
    // writes per request interact badly with Nagle on the return path.
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    stream.write_all(&message)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_head() {
        let head = RequestHead::parse(
            b"POST /route?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 12\r\nExpect: 100-continue",
        )
        .unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/route");
        assert_eq!(head.content_length(), Some(12));
        assert!(head.expects_continue());
        assert!(!head.is_chunked());
        assert!(!head.wants_close());
    }

    #[test]
    fn rejects_garbage_heads() {
        assert!(RequestHead::parse(b"nonsense").is_none());
        assert!(RequestHead::parse(b"GET /x HTTP/1.1 extra\r\n").is_none());
        assert!(RequestHead::parse(b"GET /x SPDY/3\r\n").is_none());
        assert!(RequestHead::parse(b"GET /x HTTP/1.1\r\nno-colon-line").is_none());
    }

    #[test]
    fn bad_content_length_is_typed() {
        let head = RequestHead::parse(b"POST / HTTP/1.1\r\nContent-Length: banana").unwrap();
        assert_eq!(head.content_length(), None);
    }

    #[test]
    fn head_end_finds_boundary() {
        assert_eq!(head_end(b"a\r\n\r\nbody"), Some(5));
        assert_eq!(head_end(b"a\r\n\r"), None);
    }
}
