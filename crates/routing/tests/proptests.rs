//! Property-based tests for routing invariants.

use dcspan_graph::{Graph, Path};
use dcspan_routing::decompose::{
    substitute_routing_decomposed, substitute_routing_direct, ColoringAlgo,
};
use dcspan_routing::mincongestion::{min_congestion_routing, MinCongestionOptions};
use dcspan_routing::problem::RoutingProblem;
use dcspan_routing::replace::{DetourPolicy, SpannerDetourRouter};
use dcspan_routing::routing::Routing;
use dcspan_routing::schedule::{simulate_schedule, QueuePolicy};
use dcspan_routing::shortest::{random_shortest_path_routing, shortest_path_routing};
use proptest::prelude::*;

/// A connected random graph: a random spanning-ish path + random extra edges.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (4usize..20).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
        extra.prop_map(move |pairs| {
            let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            edges.extend(pairs.into_iter().filter(|(a, b)| a != b));
            Graph::from_edges(n, edges)
        })
    })
}

fn arb_problem(n: usize) -> impl Strategy<Value = RoutingProblem> {
    proptest::collection::vec((0..n as u32, 0..n as u32), 1..12).prop_map(move |pairs| {
        RoutingProblem::from_pairs(
            pairs
                .into_iter()
                .map(|(a, b)| {
                    if a == b {
                        (a, (b + 1) % n as u32)
                    } else {
                        (a, b)
                    }
                })
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn shortest_routing_is_valid_and_minimal((g, seed) in arb_connected_graph().prop_flat_map(|g| {
        let n = g.n();
        (Just(g), Just(n as u64))
    })) {
        let problem = RoutingProblem::random_pairs(g.n(), 6, seed);
        let det = shortest_path_routing(&g, &problem).unwrap();
        let rnd = random_shortest_path_routing(&g, &problem, seed).unwrap();
        prop_assert!(det.is_valid_for(&problem, &g));
        prop_assert!(rnd.is_valid_for(&problem, &g));
        // Randomised tie-breaking never changes lengths.
        for (a, b) in det.paths().iter().zip(rnd.paths()) {
            prop_assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn congestion_profile_sums_match_naive(g in arb_connected_graph()) {
        let problem = RoutingProblem::random_pairs(g.n(), 8, 7);
        let routing = shortest_path_routing(&g, &problem).unwrap();
        let profile = routing.congestion_profile(g.n());
        // Naive recount.
        let mut naive = vec![0u32; g.n()];
        for p in routing.paths() {
            let mut nodes: Vec<u32> = p.nodes().to_vec();
            nodes.sort_unstable();
            nodes.dedup();
            for v in nodes {
                naive[v as usize] += 1;
            }
        }
        prop_assert_eq!(profile, naive);
    }

    #[test]
    fn decomposition_substitute_is_valid_and_bounded(
        (g, problem) in arb_connected_graph().prop_flat_map(|g| {
            let n = g.n();
            (Just(g), arb_problem(n))
        }),
        seed in 0u64..1000,
    ) {
        let base = shortest_path_routing(&g, &problem).unwrap();
        // Spanner: random subgraph with BFS-fallback router (always routable
        // when the spanner is connected; if not, skip the case).
        let h = dcspan_graph::sample::sample_subgraph(&g, 0.7, seed);
        if !dcspan_graph::traversal::is_connected(&h) {
            return Ok(());
        }
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformUpTo3);
        let rep = substitute_routing_decomposed(g.n(), &base, &router, ColoringAlgo::MisraGries, seed)
            .unwrap();
        prop_assert!(rep.routing.is_valid_for(&problem, &h));
        // Lemma 21.
        prop_assert!(rep.lemma21_holds(g.n()));
        // Levels are bounded by the number of paths, degrees non-increasing.
        prop_assert!(rep.num_levels <= problem.len());
        prop_assert!(rep.level_degrees.windows(2).all(|w| w[0] >= w[1]));
        // Matching count ≥ level count, ≤ Lemma 23's O(n³).
        if rep.num_levels > 0 {
            prop_assert!(rep.num_matchings >= rep.num_levels);
        }
        prop_assert!((rep.num_matchings as f64) <= (g.n() as f64).powi(3));
        // The direct substitute is also valid.
        let direct = substitute_routing_direct(&base, &router, seed).unwrap();
        prop_assert!(direct.is_valid_for(&problem, &h));
    }

    #[test]
    fn max_stretch_vs_is_at_least_one_for_spanner_substitutes(g in arb_connected_graph()) {
        let problem = RoutingProblem::random_pairs(g.n(), 5, 3);
        let base = shortest_path_routing(&g, &problem).unwrap();
        let h = dcspan_graph::sample::sample_subgraph(&g, 0.8, 3);
        if !dcspan_graph::traversal::is_connected(&h) {
            return Ok(());
        }
        let sub = shortest_path_routing(&h, &problem).unwrap();
        // Removing edges can only lengthen shortest paths.
        prop_assert!(sub.max_stretch_vs(&base) >= 1.0 || base.paths().iter().all(Path::is_empty));
    }

    #[test]
    fn scheduler_respects_lower_bound_and_delivers(g in arb_connected_graph(), seed in 0u64..100) {
        let problem = RoutingProblem::random_pairs(g.n(), 6, seed);
        let routing = shortest_path_routing(&g, &problem).unwrap();
        for policy in [QueuePolicy::Fifo, QueuePolicy::FarthestToGo] {
            let res = simulate_schedule(g.n(), &routing, policy, 0, seed);
            prop_assert!(res.makespan >= routing.max_length());
            prop_assert!(res.makespan >= res.lower_bound.min(res.makespan));
            prop_assert_eq!(res.delivery.len(), routing.len());
            // Every non-trivial packet is delivered after ≥ its path length.
            for (d, p) in res.delivery.iter().zip(routing.paths()) {
                prop_assert!(*d >= p.len() || p.is_empty());
            }
        }
    }

    #[test]
    fn min_congestion_never_worse_than_shortest(g in arb_connected_graph(), seed in 0u64..100) {
        let problem = RoutingProblem::random_pairs(g.n(), 8, seed);
        let base = shortest_path_routing(&g, &problem).unwrap();
        let opt = min_congestion_routing(&g, &problem, MinCongestionOptions::default(), seed)
            .unwrap();
        prop_assert!(opt.is_valid_for(&problem, &g));
        prop_assert!(opt.congestion(g.n()) <= base.congestion(g.n()));
    }

    #[test]
    fn splice_composition_preserves_endpoints(g in arb_connected_graph()) {
        let problem = RoutingProblem::random_pairs(g.n(), 4, 9);
        let base = shortest_path_routing(&g, &problem).unwrap();
        let spliced: Vec<Path> = base
            .paths()
            .iter()
            .map(|p| p.splice(|a, b| vec![a, b]))
            .collect();
        // Identity splice must reproduce the routing exactly.
        prop_assert_eq!(Routing::new(spliced), base);
    }
}
