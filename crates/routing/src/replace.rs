//! Per-edge replacement-path routers.
//!
//! Both spanner constructions replace a routed edge `(u, v)` of `G` that is
//! missing from the spanner `H` with a short detour in `H` — chosen **at
//! random among the available detours**, which is what keeps the congestion
//! stretch small (Lemma 7 and Section 4's "one of the 3-detours picked at
//! random"). [`SpannerDetourRouter`] implements that choice generically for
//! any spanner; the Theorem 2 construction layers its matching-restricted
//! variant on top (in `dcspan-core`).

use crate::detour::{needs_three_hop, select_from_sets, three_hop_pairs, two_hop_midpoints};
use crate::problem::RoutingProblem;
use crate::routing::Routing;
use dcspan_graph::invariants;
use dcspan_graph::rng::item_rng;
use dcspan_graph::traversal::shortest_path;
use dcspan_graph::{Graph, NodeId, Path};
use rand::rngs::SmallRng;

/// Something that can produce a replacement path in a spanner for a single
/// routed edge of the original graph.
pub trait EdgeRouter: Sync {
    /// A path from `a` to `b` in the spanner standing in for edge `(a, b)`
    /// of `G`. Must start at `a` and end at `b`. `None` if no replacement
    /// exists (spanner disconnected across this edge).
    fn route_edge(&self, a: NodeId, b: NodeId, rng: &mut SmallRng) -> Option<Vec<NodeId>>;
}

/// How [`SpannerDetourRouter`] chooses among available detours.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetourPolicy {
    /// Uniform among the detours of the *smallest* available length
    /// (edge itself ≺ 2-hop ≺ 3-hop).
    UniformShortest,
    /// Uniform among **all** detours of length ≤ 3 (including the edge
    /// itself if present) — maximal spreading.
    UniformUpTo3,
    /// Deterministically the first detour found (ablation baseline: no
    /// randomisation, worst congestion).
    FirstFound,
}

/// Replacement-path router for a spanner `H ⊆ G`: kept edges route as
/// themselves; removed edges get a random 2- or 3-hop detour in `H`, with a
/// BFS shortest-path fallback (longer than 3 hops ⇒ the caller's distance
/// stretch measurement will expose it).
pub struct SpannerDetourRouter<'a> {
    h: &'a Graph,
    policy: DetourPolicy,
    /// Allow a BFS fallback when no ≤3-hop detour exists.
    pub bfs_fallback: bool,
}

impl<'a> SpannerDetourRouter<'a> {
    /// Create a router over spanner `h` with the given selection policy and
    /// BFS fallback enabled.
    pub fn new(h: &'a Graph, policy: DetourPolicy) -> Self {
        invariants::assert_graph_contract(h, "SpannerDetourRouter::new: spanner");
        SpannerDetourRouter {
            h,
            policy,
            bfs_fallback: true,
        }
    }

    /// All 2-hop detours `a → x → b` in `H`. Thin wrapper over
    /// [`crate::detour::two_hop_midpoints`], the shared implementation.
    pub fn two_hop_detours(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        two_hop_midpoints(self.h, a, b)
    }

    /// All 3-hop detours `a → x → z → b` in `H`, as `(x, z)` pairs. Thin
    /// wrapper over [`crate::detour::three_hop_pairs`], the shared
    /// implementation.
    pub fn three_hop_detours(&self, a: NodeId, b: NodeId) -> Vec<(NodeId, NodeId)> {
        three_hop_pairs(self.h, a, b)
    }

    fn pick_detour(&self, a: NodeId, b: NodeId, rng: &mut SmallRng) -> Option<Vec<NodeId>> {
        // Detour answers are orientation-covariant: enumerate and select
        // for the canonical (min, max) orientation, then flip the path for
        // reversed queries. Every router (naive, index-backed, oracle)
        // shares this convention, so a pair gets bit-identical paths no
        // matter which way round it is asked.
        let (ca, cb) = (a.min(b), a.max(b));
        let direct = self.h.has_edge(ca, cb);
        // Enumerate lazily: the 3-hop set is the expensive one, so only
        // build it when the policy can actually reach it.
        let two = if direct && self.policy != DetourPolicy::UniformUpTo3 {
            Vec::new()
        } else {
            self.two_hop_detours(ca, cb)
        };
        let three = if needs_three_hop(self.policy, direct, two.len()) {
            self.three_hop_detours(ca, cb)
        } else {
            Vec::new()
        };
        let mut nodes = select_from_sets(ca, cb, direct, &two, &three, self.policy, rng)?;
        if ca != a {
            nodes.reverse();
        }
        Some(nodes)
    }
}

impl EdgeRouter for SpannerDetourRouter<'_> {
    fn route_edge(&self, a: NodeId, b: NodeId, rng: &mut SmallRng) -> Option<Vec<NodeId>> {
        if let Some(path) = self.pick_detour(a, b, rng) {
            return Some(path);
        }
        if self.bfs_fallback {
            return shortest_path(self.h, a, b);
        }
        None
    }
}

/// Route a matching routing problem pair-by-pair through an [`EdgeRouter`]
/// (per-pair deterministic RNG streams). Returns `None` if any pair has no
/// replacement.
pub fn route_matching<R: EdgeRouter>(
    router: &R,
    problem: &RoutingProblem,
    seed: u64,
) -> Option<Routing> {
    let mut paths = Vec::with_capacity(problem.len());
    for (idx, &(u, v)) in problem.pairs().iter().enumerate() {
        let mut rng = item_rng(seed, idx as u64);
        paths.push(Path::new(router.route_edge(u, v, &mut rng)?));
    }
    // Exit contract: the router honoured every pair's endpoints (edge
    // validity is checked against the spanner by the callers that hold it).
    invariants::assert_routing_endpoints(problem.pairs(), &paths, "route_matching");
    Some(Routing::new(paths))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// G = C5 plus chord (0,2); H drops the chord.
    fn chord_setup() -> (Graph, Graph) {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let h = g.filter_edges(|_, e| !(e.u == 0 && e.v == 2));
        (g, h)
    }

    #[test]
    fn kept_edge_routes_directly() {
        let (_, h) = chord_setup();
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let mut rng = item_rng(0, 0);
        assert_eq!(router.route_edge(0, 1, &mut rng), Some(vec![0, 1]));
    }

    #[test]
    fn removed_edge_gets_two_hop_detour() {
        let (_, h) = chord_setup();
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let mut rng = item_rng(0, 1);
        let p = router.route_edge(0, 2, &mut rng).unwrap();
        assert_eq!(p, vec![0, 1, 2]); // unique common neighbour
    }

    #[test]
    fn three_hop_enumeration() {
        // H = path 0-1-2-3: detours for (0,3): only 0-1-2-3.
        let h = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        assert_eq!(router.three_hop_detours(0, 3), vec![(1, 2)]);
        assert!(router.two_hop_detours(0, 3).is_empty());
        let mut rng = item_rng(0, 2);
        assert_eq!(router.route_edge(0, 3, &mut rng), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn three_hop_excludes_degenerate_midpoints() {
        // Triangle 0-1-2 plus pendant: (0,2) removed? use K4 minus (0,3):
        let h = Graph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        for (x, z) in router.three_hop_detours(0, 3) {
            assert!(x != z && x != 3 && z != 0);
            assert!(h.has_edge(0, x) && h.has_edge(x, z) && h.has_edge(z, 3));
        }
    }

    #[test]
    fn bfs_fallback_kicks_in() {
        // H = path of length 5: no ≤3 detour for (0,5).
        let h = Graph::from_edges(6, (0u32..5).map(|i| (i, i + 1)));
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let mut rng = item_rng(0, 3);
        let p = router.route_edge(0, 5, &mut rng).unwrap();
        assert_eq!(p.len(), 6);
        let strict = SpannerDetourRouter {
            h: &h,
            policy: DetourPolicy::UniformShortest,
            bfs_fallback: false,
        };
        let mut rng = item_rng(0, 4);
        assert!(strict.route_edge(0, 5, &mut rng).is_none());
    }

    #[test]
    fn uniform_up_to_3_spreads_choices() {
        // K5 minus edge (0,1): plenty of 2- and 3-hop detours; over many
        // seeds the router should use more than one.
        let g = Graph::from_edges(5, (0u32..5).flat_map(|i| (i + 1..5).map(move |j| (i, j))));
        let h = g.filter_edges(|_, e| !(e.u == 0 && e.v == 1));
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformUpTo3);
        let mut seen = std::collections::HashSet::new();
        for s in 0..60 {
            let mut rng = item_rng(s, 0);
            seen.insert(router.route_edge(0, 1, &mut rng).unwrap());
        }
        assert!(seen.len() >= 4, "only {} distinct detours used", seen.len());
    }

    #[test]
    fn first_found_is_deterministic() {
        let (_, h) = chord_setup();
        let router = SpannerDetourRouter::new(&h, DetourPolicy::FirstFound);
        let mut a = item_rng(1, 0);
        let mut b = item_rng(2, 0);
        assert_eq!(
            router.route_edge(0, 2, &mut a),
            router.route_edge(0, 2, &mut b)
        );
    }

    #[test]
    fn route_matching_end_to_end() {
        let (g, h) = chord_setup();
        let problem = RoutingProblem::from_pairs(vec![(0, 2), (3, 4)]);
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let r = route_matching(&router, &problem, 5).unwrap();
        assert!(r.is_valid_for(&problem, &h));
        assert!(r.is_valid_for(&problem, &g)); // H ⊆ G so also valid in G
        assert_eq!(r.paths()[1].len(), 1);
    }

    #[test]
    fn route_matching_fails_when_disconnected() {
        let h = Graph::from_edges(4, vec![(0, 1)]);
        let problem = RoutingProblem::from_pairs(vec![(2, 3)]);
        let mut router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        router.bfs_fallback = false;
        assert!(route_matching(&router, &problem, 0).is_none());
    }
}
