//! **Algorithm 2 / Theorem 1**: substitute routings via decomposition into
//! matchings.
//!
//! Given a routing `P` in `G` and a way to route any *matching* on the
//! spanner `H` (an [`EdgeRouter`]), build a substitute routing `P'` in `H`:
//!
//! 1. **Levels** (lines 1–10): repeatedly peel one `(path, edge)` pair per
//!    edge per round. The level of `(p, e)` equals `p`'s rank among the
//!    paths using `e`; the level-`k` subgraph `G_k` contains the edges used
//!    by more than `k` paths, so `Y_{k+1} ⊆ Y_k`.
//! 2. **Colouring** (line 14): properly edge-colour each `G_k` with
//!    `m_k ≤ d_k + 1` colours (Misra–Gries) — each colour class is a
//!    matching, routed independently on `H`.
//! 3. **Assembly** (lines 19–27): splice each hop of each original path
//!    with the replacement path of its `(level, edge)`.
//!
//! The report exposes the quantities of Lemmas 21–23 so experiments can
//! check `Σ_k (d_k + 1) ≤ 12·C(P)·log₂ n` and the `O(n³)` matching count.

use crate::replace::EdgeRouter;
use crate::routing::Routing;
use dcspan_graph::coloring::{greedy_edge_coloring, misra_gries_edge_coloring, EdgeColoring};
use dcspan_graph::invariants;
use dcspan_graph::rng::{derive_seed, item_rng};
use dcspan_graph::{Edge, FxHashMap, Graph, NodeId};

/// Which proper edge-colouring backs step 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColoringAlgo {
    /// Misra–Gries: `m_k ≤ d_k + 1` (the paper's bound).
    MisraGries,
    /// Greedy: `m_k ≤ 2·d_k − 1` (ablation; doubles the Lemma 22 constant).
    Greedy,
}

/// Instrumented result of the decomposition.
#[derive(Clone, Debug)]
pub struct DecompositionReport {
    /// The substitute routing `P'` in the spanner.
    pub routing: Routing,
    /// Number of levels `r`.
    pub num_levels: usize,
    /// Max degree `d_k` of each level subgraph `G_k`.
    pub level_degrees: Vec<usize>,
    /// Colours used per level (`m_k`).
    pub level_colors: Vec<usize>,
    /// Total number of matchings `Σ_k m_k` (Lemma 23's quantity).
    pub num_matchings: usize,
    /// `Σ_k (d_k + 1)` — the Lemma 21 quantity.
    pub sum_dk_plus_one: usize,
    /// Node congestion of the base routing `C(P)`.
    pub base_congestion: u32,
}

impl DecompositionReport {
    /// Lemma 21's bound `12·C(P)·log₂ n` for a graph on `n` nodes.
    pub fn lemma21_bound(&self, n: usize) -> f64 {
        12.0 * self.base_congestion as f64 * (n.max(2) as f64).log2()
    }

    /// True if the measured `Σ(d_k + 1)` respects Lemma 21.
    pub fn lemma21_holds(&self, n: usize) -> bool {
        (self.sum_dk_plus_one as f64) <= self.lemma21_bound(n) + 1e-9
    }
}

#[inline]
fn edge_key(e: Edge) -> u64 {
    ((e.u as u64) << 32) | e.v as u64
}

/// Run Algorithm 2: decompose `base` (a routing in `G` on `n` nodes) into
/// matchings, route each matching on the spanner via `router`, and
/// reassemble. Returns `None` if the router fails on some matching edge.
pub fn substitute_routing_decomposed<R: EdgeRouter>(
    n: usize,
    base: &Routing,
    router: &R,
    coloring: ColoringAlgo,
    seed: u64,
) -> Option<DecompositionReport> {
    // --- Step 1: levels. The level of (p, e) is p's rank among users of e.
    // users: edge → number of paths seen so far; per (path, edge) level.
    let mut users: FxHashMap<u64, u32> = FxHashMap::default();
    // level_of[path_index] : hop edge key → level.
    let mut level_of: Vec<FxHashMap<u64, u32>> = Vec::with_capacity(base.len());
    let mut max_level = 0u32;
    for p in base.paths() {
        let mut mine: FxHashMap<u64, u32> = FxHashMap::default();
        for (a, b) in p.hops() {
            let k = edge_key(Edge::new(a, b));
            // A_p is a set: a path using the same edge twice registers once.
            if mine.contains_key(&k) {
                continue;
            }
            let count = users.entry(k).or_insert(0);
            mine.insert(k, *count);
            max_level = max_level.max(*count);
            *count += 1;
        }
        level_of.push(mine);
    }
    let num_levels = if users.is_empty() {
        0
    } else {
        max_level as usize + 1
    };

    // Level k edge set Y_k = edges with multiplicity > k.
    let mut level_edges: Vec<Vec<Edge>> = vec![Vec::new(); num_levels];
    for (&k, &count) in &users {
        let e = Edge::new((k >> 32) as NodeId, (k & 0xffff_ffff) as NodeId);
        for level in level_edges.iter_mut().take(count as usize) {
            level.push(e);
        }
    }

    // --- Step 2: colour each level and route each colour class.
    // replacement[(level, edge key)] = path nodes (oriented u → v).
    let mut replacement: FxHashMap<(u32, u64), Vec<NodeId>> = FxHashMap::default();
    let mut level_degrees = Vec::with_capacity(num_levels);
    let mut level_colors = Vec::with_capacity(num_levels);
    for (lvl, edges) in level_edges.iter().enumerate() {
        let gk = Graph::from_edges(n, edges.iter().map(|e| (e.u, e.v)));
        let col: EdgeColoring = match coloring {
            ColoringAlgo::MisraGries => misra_gries_edge_coloring(&gk),
            ColoringAlgo::Greedy => greedy_edge_coloring(&gk),
        };
        level_degrees.push(gk.max_degree());
        level_colors.push(col.num_colors as usize);
        if invariants::enabled() {
            // Contract: every colour class of the proper edge colouring is a
            // node-disjoint matching — what Algorithm 2 routes per round.
            let mut classes: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); col.num_colors as usize];
            for (edge_id, e) in gk.edges().iter().enumerate() {
                classes[col.color[edge_id] as usize].push((e.u, e.v));
            }
            for class in &classes {
                invariants::assert_matching_disjoint(
                    n,
                    class,
                    "substitute_routing_decomposed: colour class",
                );
            }
        }
        let level_seed = derive_seed(seed, lvl as u64);
        for (edge_id, e) in gk.edges().iter().enumerate() {
            // Colour class membership only matters for the *accounting*;
            // each edge is routed independently with a deterministic stream.
            let _ = col.color[edge_id];
            let mut rng = item_rng(level_seed, edge_key(*e));
            let path = router.route_edge(e.u, e.v, &mut rng)?;
            debug_assert!(path.first() == Some(&e.u) && path.last() == Some(&e.v));
            replacement.insert((lvl as u32, edge_key(*e)), path);
        }
    }

    // --- Step 3: assemble P'.
    let mut new_paths = Vec::with_capacity(base.len());
    for (pi, p) in base.paths().iter().enumerate() {
        let spliced = p.splice(|a, b| {
            let e = Edge::new(a, b);
            let key = edge_key(e);
            let lvl = level_of[pi][&key];
            let q = &replacement[&(lvl, key)];
            if q.first() == Some(&a) {
                q.clone()
            } else {
                let mut rev = q.clone();
                rev.reverse();
                rev
            }
        });
        new_paths.push(spliced);
    }

    let routing = Routing::new(new_paths);
    if invariants::enabled() {
        // Exit contract: splicing preserved every pair's endpoints, and the
        // parallel congestion accounting agrees with a serial recount.
        let pairs: Vec<(NodeId, NodeId)> = base
            .paths()
            .iter()
            .map(|p| (p.source(), p.destination()))
            .collect();
        invariants::assert_routing_endpoints(
            &pairs,
            routing.paths(),
            "substitute_routing_decomposed: endpoints",
        );
        invariants::assert_congestion_profile(
            n,
            routing.paths(),
            &routing.congestion_profile_par(n),
            "substitute_routing_decomposed: congestion accounting",
        );
    }

    let base_congestion = base.congestion(n);
    let sum_dk_plus_one = level_degrees.iter().map(|d| d + 1).sum();
    let num_matchings = level_colors.iter().sum();
    Some(DecompositionReport {
        routing,
        num_levels,
        level_degrees,
        level_colors,
        num_matchings,
        sum_dk_plus_one,
        base_congestion,
    })
}

/// Ablation baseline: splice every hop of every path independently (no
/// decomposition, fresh RNG stream per (path, hop)). Same path distribution
/// when the router ignores matching context, but no Lemma 21 accounting.
pub fn substitute_routing_direct<R: EdgeRouter>(
    base: &Routing,
    router: &R,
    seed: u64,
) -> Option<Routing> {
    let mut new_paths = Vec::with_capacity(base.len());
    for (pi, p) in base.paths().iter().enumerate() {
        let path_seed = derive_seed(seed, pi as u64);
        let mut failed = false;
        let spliced = p.splice(|a, b| {
            let mut rng = item_rng(path_seed, edge_key(Edge::new(a, b)));
            match router.route_edge(a, b, &mut rng) {
                Some(q) if q.first() == Some(&a) => q,
                Some(mut q) => {
                    q.reverse();
                    q
                }
                None => {
                    failed = true;
                    vec![a, b] // placeholder; discarded below
                }
            }
        });
        if failed {
            return None;
        }
        new_paths.push(spliced);
    }
    Some(Routing::new(new_paths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replace::{DetourPolicy, SpannerDetourRouter};
    use dcspan_graph::Path;

    /// G = C6 with chords (0,2), (3,5); H removes the chords.
    fn setup() -> (Graph, Graph) {
        let mut edges: Vec<(u32, u32)> = (0u32..6).map(|i| (i, (i + 1) % 6)).collect();
        edges.push((0, 2));
        edges.push((3, 5));
        let g = Graph::from_edges(6, edges);
        let h = g.filter_edges(|_, e| !((e.u == 0 && e.v == 2) || (e.u == 3 && e.v == 5)));
        (g, h)
    }

    #[test]
    fn single_path_decomposition() {
        let (g, h) = setup();
        let base = Routing::new(vec![Path::new(vec![0, 2, 3, 5])]);
        assert!(base.is_valid_for(
            &crate::problem::RoutingProblem::from_pairs(vec![(0, 5)]),
            &g
        ));
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let rep =
            substitute_routing_decomposed(6, &base, &router, ColoringAlgo::MisraGries, 1).unwrap();
        assert_eq!(rep.num_levels, 1);
        assert_eq!(rep.base_congestion, 1);
        let p = &rep.routing.paths()[0];
        assert_eq!(p.source(), 0);
        assert_eq!(p.destination(), 5);
        assert!(p.is_valid_in(&h));
        // Chord hops became 2-hop detours: total length 2 + 1 + 2 = 5.
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn levels_reflect_edge_sharing() {
        let (_, h) = setup();
        // Three paths all crossing edge (1,2).
        let base = Routing::new(vec![
            Path::new(vec![1, 2]),
            Path::new(vec![0, 1, 2]),
            Path::new(vec![1, 2, 3]),
        ]);
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let rep =
            substitute_routing_decomposed(6, &base, &router, ColoringAlgo::MisraGries, 2).unwrap();
        assert_eq!(rep.num_levels, 3); // edge (1,2) used by 3 paths
        assert_eq!(rep.level_degrees.len(), 3);
        // Y_{k+1} ⊆ Y_k ⇒ degrees non-increasing.
        assert!(rep.level_degrees.windows(2).all(|w| w[0] >= w[1]));
        assert!(rep.lemma21_holds(6));
    }

    #[test]
    fn substitute_valid_in_spanner_and_matches_endpoints() {
        let (g, h) = setup();
        let problem = crate::problem::RoutingProblem::from_pairs(vec![(0, 3), (2, 5), (1, 4)]);
        let base = crate::shortest::shortest_path_routing(&g, &problem).unwrap();
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformUpTo3);
        let rep =
            substitute_routing_decomposed(6, &base, &router, ColoringAlgo::MisraGries, 3).unwrap();
        assert!(rep.routing.is_valid_for(&problem, &h));
        // Distance stretch ≤ 3 (every hop replaced by ≤3-hop detour).
        assert!(rep.routing.max_stretch_vs(&base) <= 3.0);
    }

    #[test]
    fn greedy_coloring_variant_works() {
        let (g, h) = setup();
        let problem = crate::problem::RoutingProblem::from_pairs(vec![(0, 3), (1, 4)]);
        let base = crate::shortest::shortest_path_routing(&g, &problem).unwrap();
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let a = substitute_routing_decomposed(6, &base, &router, ColoringAlgo::Greedy, 4).unwrap();
        assert!(a.routing.is_valid_for(&problem, &h));
        assert!(a.num_matchings >= a.num_levels); // at least one colour per level
    }

    #[test]
    fn direct_substitution_agrees_on_validity() {
        let (g, h) = setup();
        let problem = crate::problem::RoutingProblem::from_pairs(vec![(0, 3), (2, 5)]);
        let base = crate::shortest::shortest_path_routing(&g, &problem).unwrap();
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let direct = substitute_routing_direct(&base, &router, 5).unwrap();
        assert!(direct.is_valid_for(&problem, &h));
    }

    #[test]
    fn router_failure_propagates() {
        // Spanner with an isolated piece: router (no fallback) fails.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        let h = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let base = Routing::new(vec![Path::new(vec![0, 3])]);
        let mut router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        router.bfs_fallback = false;
        assert!(
            substitute_routing_decomposed(4, &base, &router, ColoringAlgo::MisraGries, 6).is_none()
        );
        assert!(substitute_routing_direct(&base, &router, 6).is_none());
        let _ = g;
    }

    #[test]
    fn empty_routing_decomposes_trivially() {
        let (_, h) = setup();
        let base = Routing::new(vec![]);
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let rep =
            substitute_routing_decomposed(6, &base, &router, ColoringAlgo::MisraGries, 7).unwrap();
        assert_eq!(rep.num_levels, 0);
        assert_eq!(rep.num_matchings, 0);
        assert!(rep.routing.is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (g, h) = setup();
        let problem = crate::problem::RoutingProblem::from_pairs(vec![(0, 3), (2, 5), (1, 4)]);
        let base = crate::shortest::shortest_path_routing(&g, &problem).unwrap();
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformUpTo3);
        let a =
            substitute_routing_decomposed(6, &base, &router, ColoringAlgo::MisraGries, 9).unwrap();
        let b =
            substitute_routing_decomposed(6, &base, &router, ColoringAlgo::MisraGries, 9).unwrap();
        assert_eq!(a.routing, b.routing);
    }
}
