//! Valiant-style two-phase routing.
//!
//! On an expander, routing each pair `(s, t)` via a uniformly random
//! intermediate node `w` (shortest path `s → w`, then `w → t`, each with
//! random tie-breaking) yields `O(log n)`-length paths with low node
//! congestion — the workhorse behind the permutation-routing bounds the
//! paper imports from Scheideler \[25\] to fill Table 1's rows \[5\] and \[16\].

use crate::problem::RoutingProblem;
use crate::routing::Routing;
use dcspan_graph::rng::item_rng;
use dcspan_graph::traversal::{bfs_distances, UNREACHABLE};
use dcspan_graph::{Graph, NodeId, Path};
use rand::seq::SliceRandom;
use rand::Rng;

/// Sample a uniformly random shortest path `u → v` with the supplied RNG.
fn random_sp(
    g: &Graph,
    u: NodeId,
    v: NodeId,
    rng: &mut rand::rngs::SmallRng,
) -> Option<Vec<NodeId>> {
    let dist = bfs_distances(g, u);
    if dist[v as usize] == UNREACHABLE {
        return None;
    }
    let mut rev = vec![v];
    let mut cur = v;
    while cur != u {
        let d = dist[cur as usize];
        let mut preds: Vec<NodeId> = g
            .neighbors(cur)
            .iter()
            .copied()
            .filter(|&w| dist[w as usize] + 1 == d)
            .collect();
        preds.shuffle(rng);
        cur = preds[0];
        rev.push(cur);
    }
    rev.reverse();
    Some(rev)
}

/// Two-phase Valiant routing: each pair goes through an independent random
/// intermediate node. Returns `None` if the graph is disconnected for some
/// pair.
pub fn valiant_routing(g: &Graph, problem: &RoutingProblem, seed: u64) -> Option<Routing> {
    let n = g.n();
    assert!(n > 0);
    let mut paths = Vec::with_capacity(problem.len());
    for (idx, &(s, t)) in problem.pairs().iter().enumerate() {
        let mut rng = item_rng(seed, idx as u64);
        let w = rng.gen_range(0..n as NodeId);
        let first = random_sp(g, s, w, &mut rng)?;
        let second = random_sp(g, w, t, &mut rng)?;
        // Concatenate (drop w's duplicate), then strip immediate
        // backtracks (w may equal s or t, or the legs may share the first
        // hop) so `Path`'s no-stutter invariant holds.
        let mut nodes = first;
        nodes.extend_from_slice(&second[1..]);
        let mut cleaned: Vec<NodeId> = Vec::with_capacity(nodes.len());
        for x in nodes {
            if cleaned.last() == Some(&x) {
                continue;
            }
            cleaned.push(x);
        }
        paths.push(Path::new(cleaned));
    }
    Some(Routing::new(paths))
}

/// [`EdgeRouter`](crate::replace::EdgeRouter) adapter: replace a routed
/// edge by a Valiant two-phase path in the spanner `h`. This is how
/// matchings are routed on the sparsified expanders of Table 1's rows \[5\]
/// and \[16\], where 3-hop detours need not exist but `O(log n)`-hop
/// low-congestion paths do.
pub struct ValiantEdgeRouter<'a> {
    h: &'a Graph,
}

impl<'a> ValiantEdgeRouter<'a> {
    /// Route through spanner `h`.
    pub fn new(h: &'a Graph) -> Self {
        ValiantEdgeRouter { h }
    }
}

impl crate::replace::EdgeRouter for ValiantEdgeRouter<'_> {
    fn route_edge(
        &self,
        a: NodeId,
        b: NodeId,
        rng: &mut rand::rngs::SmallRng,
    ) -> Option<Vec<NodeId>> {
        if self.h.has_edge(a, b) {
            return Some(vec![a, b]);
        }
        let w = rng.gen_range(0..self.h.n() as NodeId);
        let first = random_sp(self.h, a, w, rng)?;
        let second = random_sp(self.h, w, b, rng)?;
        let mut nodes = first;
        nodes.extend_from_slice(&second[1..]);
        let mut cleaned: Vec<NodeId> = Vec::with_capacity(nodes.len());
        for x in nodes {
            if cleaned.last() == Some(&x) {
                continue;
            }
            cleaned.push(x);
        }
        Some(cleaned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replace::{route_matching, EdgeRouter};

    fn expanderish() -> Graph {
        // Wheel + chords: small graph with many routes.
        let mut edges: Vec<(u32, u32)> = (0u32..8).map(|i| (i, (i + 1) % 8)).collect();
        edges.extend((0u32..8).map(|i| (i, (i + 3) % 8)));
        Graph::from_edges(8, edges)
    }

    #[test]
    fn valid_routing_produced() {
        let g = expanderish();
        let problem = RoutingProblem::random_permutation(8, 4);
        let r = valiant_routing(&g, &problem, 9).unwrap();
        assert!(r.is_valid_for(&problem, &g));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = expanderish();
        let problem = RoutingProblem::from_pairs(vec![(0, 4), (1, 5), (2, 6)]);
        assert_eq!(
            valiant_routing(&g, &problem, 3),
            valiant_routing(&g, &problem, 3)
        );
    }

    #[test]
    fn intermediate_equal_to_endpoint_is_fine() {
        // With only 2 nodes every intermediate is an endpoint; paths must
        // still be valid (and not stutter).
        let g = Graph::from_edges(2, vec![(0, 1)]);
        let problem = RoutingProblem::from_pairs(vec![(0, 1)]);
        for seed in 0..10 {
            let r = valiant_routing(&g, &problem, seed).unwrap();
            assert!(r.is_valid_for(&problem, &g));
        }
    }

    #[test]
    fn disconnected_returns_none() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let problem = RoutingProblem::from_pairs(vec![(0, 2)]);
        assert!(valiant_routing(&g, &problem, 1).is_none());
    }

    #[test]
    fn edge_router_adapter_routes_matchings() {
        let g = expanderish();
        let h = dcspan_graph::sample::sample_subgraph(&g, 0.7, 3);
        let router = ValiantEdgeRouter::new(&h);
        // Route a matching problem over edges of g; if h is connected this
        // must succeed and be valid in h.
        if dcspan_graph::traversal::is_connected(&h) {
            let problem = RoutingProblem::from_pairs(vec![(0, 1), (2, 3), (4, 5)]);
            let r = route_matching(&router, &problem, 5).unwrap();
            assert!(r.is_valid_for(&problem, &h));
        }
        // Direct edges route directly.
        if let Some(e) = h.edges().first() {
            let mut rng = dcspan_graph::rng::item_rng(0, 0);
            assert_eq!(router.route_edge(e.u, e.v, &mut rng), Some(vec![e.u, e.v]));
        }
    }

    #[test]
    fn spreads_congestion_on_expander() {
        // A permutation routed by Valiant on a good small expander should
        // have congestion well below the trivial bound k (every path through
        // one node).
        let g = expanderish();
        let problem = RoutingProblem::random_permutation(8, 7);
        let r = valiant_routing(&g, &problem, 13).unwrap();
        assert!(r.congestion(8) <= problem.len() as u32);
        assert!(r.congestion(8) >= 1);
    }
}
