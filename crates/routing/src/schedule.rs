//! Store-and-forward packet scheduling under **node capacity 1** — the
//! wireless-network model the paper cites as motivation (Section 1.1:
//! "typically at most one packet can be received and forwarded by a node
//! at a time"). Routing paths with smaller node congestion yield lower
//! packet latency; this simulator makes that connection measurable.
//!
//! Each packet follows its fixed routing path. In every synchronous round,
//! every node forwards **at most one** queued packet one hop. The makespan
//! of a schedule is therefore lower-bounded by `max(D, C_peak)` where `D`
//! is the longest path and `C_peak` the maximum number of paths through a
//! node, and a simple greedy (optionally with Leighton–Maggs–Rao-style
//! random initial delays) gets within `O(C·D)` always and close to `C + D`
//! in practice.

use crate::routing::Routing;
use dcspan_graph::rng::item_rng;
use dcspan_graph::NodeId;
use rand::Rng;
use std::collections::VecDeque;

/// How the per-node queue picks the packet to forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueuePolicy {
    /// First-in-first-out.
    Fifo,
    /// Farthest-remaining-distance first (a standard greedy that helps
    /// long paths finish).
    FarthestToGo,
}

/// Result of simulating one routing.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// Rounds until the last packet arrived.
    pub makespan: usize,
    /// Per-packet delivery round.
    pub delivery: Vec<usize>,
    /// The trivial lower bound `max(D, C(P))` for node-capacity-1
    /// scheduling of these paths.
    pub lower_bound: usize,
    /// Sum over packets of (delivery − path length − initial delay):
    /// total queueing delay experienced.
    pub total_queueing: usize,
}

/// Simulate the routing under node-capacity-1 store-and-forward.
///
/// `initial_delay_bound`: each packet independently waits a uniform random
/// delay in `[0, bound)` before injection (0 disables the LMR trick).
///
/// # Panics
/// Panics if the simulation exceeds a generous safety cap (which would
/// indicate a livelock bug — the greedy scheduler always makes progress).
pub fn simulate_schedule(
    n: usize,
    routing: &Routing,
    policy: QueuePolicy,
    initial_delay_bound: usize,
    seed: u64,
) -> ScheduleResult {
    let k = routing.len();
    let paths: Vec<&[NodeId]> = routing
        .paths()
        .iter()
        .map(dcspan_graph::Path::nodes)
        .collect();
    let mut delay = vec![0usize; k];
    if initial_delay_bound > 0 {
        for (i, d) in delay.iter_mut().enumerate() {
            let mut rng = item_rng(seed, i as u64);
            *d = rng.gen_range(0..initial_delay_bound);
        }
    }
    // position[i] = index into paths[i] of the node currently holding i.
    let mut position = vec![0usize; k];
    let mut delivery = vec![0usize; k];
    let mut remaining = 0usize;
    // queue[v] = packets waiting at v to be forwarded by v.
    let mut queue: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
    let mut pending: Vec<(usize, usize)> = Vec::new(); // (inject_round, packet)
    for i in 0..k {
        if paths[i].len() <= 1 {
            delivery[i] = 0; // already at destination
        } else {
            pending.push((delay[i], i));
            remaining += 1;
        }
    }
    pending.sort_unstable();
    let mut pending = pending.into_iter().peekable();

    let congestion = routing.congestion(n) as usize;
    let dmax = routing.max_length();
    let lower_bound = congestion.max(dmax);
    let cap = (congestion + 1) * (dmax + 1) * 2 + initial_delay_bound + 16;

    let mut round = 0usize;
    while remaining > 0 {
        round += 1;
        assert!(
            round <= cap,
            "scheduler exceeded safety cap {cap} — livelock?"
        );
        // Inject packets whose delay expired (they become forwardable this
        // round from their source).
        while let Some(&(r, i)) = pending.peek() {
            if r < round {
                queue[paths[i][0] as usize].push_back(i);
                pending.next();
            } else {
                break;
            }
        }
        // Each node forwards one packet; collect arrivals, apply after.
        let mut arrivals: Vec<(usize, usize)> = Vec::new(); // (node, packet)
        #[allow(clippy::needless_range_loop)] // queue is mutated by index below
        for v in 0..n {
            if queue[v].is_empty() {
                continue;
            }
            let idx = match policy {
                QueuePolicy::Fifo => 0,
                QueuePolicy::FarthestToGo => {
                    let mut best = 0usize;
                    let mut best_left = 0usize;
                    for (qi, &pk) in queue[v].iter().enumerate() {
                        let left = paths[pk].len() - 1 - position[pk];
                        if left > best_left {
                            best_left = left;
                            best = qi;
                        }
                    }
                    best
                }
            };
            let pk = queue[v].remove(idx).unwrap(); // xtask: allow(no_panic) — idx chosen from queue[v] above
            position[pk] += 1;
            let here = paths[pk][position[pk]];
            if position[pk] + 1 == paths[pk].len() {
                delivery[pk] = round;
                remaining -= 1;
            } else {
                arrivals.push((here as usize, pk));
            }
        }
        for (v, pk) in arrivals {
            queue[v].push_back(pk);
        }
    }

    let total_queueing = (0..k)
        .map(|i| {
            delivery[i]
                .saturating_sub(paths[i].len() - 1 + delay[i])
                .min(delivery[i])
        })
        .sum();
    ScheduleResult {
        makespan: round,
        delivery,
        lower_bound,
        total_queueing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::Path;

    #[test]
    fn single_packet_takes_path_length_rounds() {
        let r = Routing::new(vec![Path::new(vec![0, 1, 2, 3])]);
        let res = simulate_schedule(4, &r, QueuePolicy::Fifo, 0, 1);
        assert_eq!(res.makespan, 3);
        assert_eq!(res.delivery, vec![3]);
        assert_eq!(res.lower_bound, 3);
        assert_eq!(res.total_queueing, 0);
    }

    #[test]
    fn shared_source_serialises() {
        // Three packets all starting at node 0: node 0 forwards one per
        // round → makespan ≥ 3.
        let r = Routing::new(vec![
            Path::new(vec![0, 1]),
            Path::new(vec![0, 2]),
            Path::new(vec![0, 3]),
        ]);
        let res = simulate_schedule(4, &r, QueuePolicy::Fifo, 0, 2);
        assert_eq!(res.makespan, 3);
        assert!(res.total_queueing > 0);
    }

    #[test]
    fn disjoint_paths_run_in_parallel() {
        let r = Routing::new(vec![Path::new(vec![0, 1, 2]), Path::new(vec![3, 4, 5])]);
        let res = simulate_schedule(6, &r, QueuePolicy::Fifo, 0, 3);
        assert_eq!(res.makespan, 2);
    }

    #[test]
    fn makespan_at_least_lower_bound() {
        // Funnel: many packets crossing one middle node.
        let paths: Vec<Path> = (0..5u32).map(|i| Path::new(vec![i, 5, 6 + i])).collect();
        let r = Routing::new(paths);
        let res = simulate_schedule(11, &r, QueuePolicy::Fifo, 0, 4);
        assert!(res.makespan >= res.lower_bound);
        // Node 5 has congestion 5; everything must funnel through it.
        assert!(res.makespan >= 5, "makespan {}", res.makespan);
        // But not catastrophically more.
        assert!(res.makespan <= 8, "makespan {}", res.makespan);
    }

    #[test]
    fn trivial_paths_deliver_instantly() {
        let r = Routing::new(vec![Path::trivial(2), Path::new(vec![0, 1])]);
        let res = simulate_schedule(3, &r, QueuePolicy::Fifo, 0, 5);
        assert_eq!(res.delivery[0], 0);
        assert_eq!(res.delivery[1], 1);
    }

    #[test]
    fn empty_routing() {
        let r = Routing::new(vec![]);
        let res = simulate_schedule(3, &r, QueuePolicy::Fifo, 0, 6);
        assert_eq!(res.makespan, 0);
        assert_eq!(res.lower_bound, 0);
    }

    #[test]
    fn farthest_to_go_prioritises_long_paths() {
        // One long path and several short ones sharing the first hop's node.
        let mut paths = vec![Path::new(vec![0, 1, 2, 3, 4, 5])];
        for i in 0..3u32 {
            paths.push(Path::new(vec![0, 6 + i]));
        }
        let r = Routing::new(paths);
        let fifo = simulate_schedule(9, &r, QueuePolicy::Fifo, 0, 7);
        let ftg = simulate_schedule(9, &r, QueuePolicy::FarthestToGo, 0, 7);
        // FarthestToGo lets the long path leave first: makespan no worse.
        assert!(ftg.makespan <= fifo.makespan);
        assert!(ftg.delivery[0] <= fifo.delivery[0]);
    }

    #[test]
    fn random_delays_do_not_break_correctness() {
        let paths: Vec<Path> = (0..6u32).map(|i| Path::new(vec![i, 6, 7 + i])).collect();
        let r = Routing::new(paths);
        let res = simulate_schedule(13, &r, QueuePolicy::Fifo, 4, 8);
        assert!(res.makespan >= res.lower_bound);
        assert_eq!(res.delivery.len(), 6);
        assert!(res.delivery.iter().all(|&d| d > 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let paths: Vec<Path> = (0..4u32).map(|i| Path::new(vec![i, 4, 5 + i])).collect();
        let r = Routing::new(paths);
        let a = simulate_schedule(9, &r, QueuePolicy::Fifo, 3, 9);
        let b = simulate_schedule(9, &r, QueuePolicy::Fifo, 3, 9);
        assert_eq!(a.delivery, b.delivery);
    }
}
