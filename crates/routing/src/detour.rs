//! The single audited implementation of ≤3-hop detour enumeration and
//! policy-driven detour selection.
//!
//! Both the naive per-query router ([`crate::replace::SpannerDetourRouter`])
//! and the precomputed serving index (`dcspan-oracle`'s `DetourIndex`) draw
//! their detour sets from the two enumeration helpers here and choose among
//! them with [`select_from_sets`]. Keeping enumeration *and* selection in
//! one place guarantees that an index-backed router and the naive router
//! see the same candidate sets **in the same order**, so for a fixed RNG
//! stream they return identical paths — the property the serving layer's
//! cross-thread determinism tests pin down.

use crate::replace::DetourPolicy;
use dcspan_graph::intersect::IntersectKernel;
use dcspan_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

/// All 2-hop detour midpoints `x` with `a → x → b` in `h`, in ascending
/// node order (the order `Graph::common_neighbors` produces).
#[inline]
pub fn two_hop_midpoints(h: &Graph, a: NodeId, b: NodeId) -> Vec<NodeId> {
    h.common_neighbors(a, b)
}

/// [`two_hop_midpoints`] over a caller-held triangle kernel, collecting
/// into `out` (cleared first). Same ascending midpoint order — the kernel
/// strategies are exact and order-preserving — so selection RNG streams
/// are unaffected.
#[inline]
pub fn two_hop_midpoints_with(
    kernel: &IntersectKernel<'_>,
    a: NodeId,
    b: NodeId,
    out: &mut Vec<NodeId>,
) {
    kernel.common_into(a, b, out);
}

/// All 3-hop detours `a → x → z → b` in `h` as `(x, z)` pairs, excluding
/// degenerate midpoints (`x = b`, `z = a`, `x = z`). Enumeration order is
/// deterministic: outer loop over `N_h(a)` ascending, inner loop over
/// `N_h(x) ∩ N_h(b)` ascending.
pub fn three_hop_pairs(h: &Graph, a: NodeId, b: NodeId) -> Vec<(NodeId, NodeId)> {
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    three_hop_pairs_into(h, a, b, &mut scratch, &mut out);
    out
}

/// [`three_hop_pairs`] collecting into `out` (cleared first) with a
/// caller-held intersection scratch buffer — no allocation per inner
/// intersection. Identical enumeration order.
pub fn three_hop_pairs_into(
    h: &Graph,
    a: NodeId,
    b: NodeId,
    scratch: &mut Vec<NodeId>,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    out.clear();
    for &x in h.neighbors(a) {
        if x == b {
            continue;
        }
        // z ∈ N_h(x) ∩ N_h(b), z ∉ {a, b}.
        h.common_neighbors_into(x, b, scratch);
        for &z in scratch.iter() {
            if z != a && z != b && x != z {
                out.push((x, z));
            }
        }
    }
}

/// [`three_hop_pairs`] over a caller-held triangle kernel and scratch
/// buffer, for batch builders (the oracle `DetourIndex`) that enumerate
/// detours for many missing edges: the kernel's pinned bit-rows turn each
/// inner `N(x) ∩ N(b)` into a membership scan. Identical `(x, z)` order
/// to [`three_hop_pairs`] — the kernel collects intersections ascending.
pub fn three_hop_pairs_with(
    kernel: &IntersectKernel<'_>,
    a: NodeId,
    b: NodeId,
    scratch: &mut Vec<NodeId>,
) -> Vec<(NodeId, NodeId)> {
    let h = kernel.graph();
    let mut out = Vec::new();
    for &x in h.neighbors(a) {
        if x == b {
            continue;
        }
        kernel.common_into(x, b, scratch);
        for &z in scratch.iter() {
            if z != a && z != b && x != z {
                out.push((x, z));
            }
        }
    }
    out
}

/// Choose a replacement path for `(a, b)` from already-enumerated detour
/// sets under `policy`. `direct` says whether `{a, b}` is itself an edge of
/// the spanner. Returns `None` when the policy finds no candidate.
///
/// Callers that enumerate lazily may pass an empty `three` slice whenever
/// the policy cannot reach it (`UniformShortest`/`FirstFound` with `direct`
/// or a non-empty `two`); `UniformUpTo3` always needs both sets.
pub fn select_from_sets(
    a: NodeId,
    b: NodeId,
    direct: bool,
    two: &[NodeId],
    three: &[(NodeId, NodeId)],
    policy: DetourPolicy,
    rng: &mut SmallRng,
) -> Option<Vec<NodeId>> {
    match policy {
        DetourPolicy::UniformShortest => {
            if direct {
                return Some(vec![a, b]);
            }
            if !two.is_empty() {
                let x = two[rng.gen_range(0..two.len())];
                return Some(vec![a, x, b]);
            }
            if !three.is_empty() {
                let (x, z) = three[rng.gen_range(0..three.len())];
                return Some(vec![a, x, z, b]);
            }
            None
        }
        DetourPolicy::UniformUpTo3 => {
            // Uniform over: {direct} ∪ 2-hop ∪ 3-hop.
            let total = usize::from(direct) + two.len() + three.len();
            if total == 0 {
                return None;
            }
            let mut k = rng.gen_range(0..total);
            if direct {
                if k == 0 {
                    return Some(vec![a, b]);
                }
                k -= 1;
            }
            if k < two.len() {
                return Some(vec![a, two[k], b]);
            }
            let (x, z) = three[k - two.len()];
            Some(vec![a, x, z, b])
        }
        DetourPolicy::FirstFound => {
            if direct {
                return Some(vec![a, b]);
            }
            if let Some(&x) = two.first() {
                return Some(vec![a, x, b]);
            }
            three.first().map(|&(x, z)| vec![a, x, z, b])
        }
    }
}

/// True when `policy` can need the 3-hop set given `direct` and the 2-hop
/// set size — lets lazy callers skip the (much more expensive) 3-hop
/// enumeration on the fast path.
#[inline]
pub fn needs_three_hop(policy: DetourPolicy, direct: bool, two_len: usize) -> bool {
    match policy {
        DetourPolicy::UniformUpTo3 => true,
        DetourPolicy::UniformShortest | DetourPolicy::FirstFound => !direct && two_len == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::rng::item_rng;

    fn k4_minus(a: NodeId, b: NodeId) -> Graph {
        let g = Graph::from_edges(4, (0u32..4).flat_map(|i| (i + 1..4).map(move |j| (i, j))));
        g.filter_edges(|_, e| !(e.u == a.min(b) && e.v == a.max(b)))
    }

    #[test]
    fn enumeration_is_sorted_and_degenerate_free() {
        let h = k4_minus(0, 1);
        let two = two_hop_midpoints(&h, 0, 1);
        assert_eq!(two, vec![2, 3]);
        let three = three_hop_pairs(&h, 0, 1);
        for &(x, z) in &three {
            assert!(x != z && x != 1 && z != 0);
            assert!(h.has_edge(0, x) && h.has_edge(x, z) && h.has_edge(z, 1));
        }
        // Outer loop ascending in x.
        assert!(three.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn kernel_variants_preserve_enumeration_order() {
        // Dense-enough graph that the full kernel pins bit-rows, plus the
        // lean kernel: both must reproduce the naive enumeration exactly.
        let g = Graph::from_edges(
            40,
            (0u32..40).flat_map(|i| (i + 1..40).map(move |j| (i, j))),
        );
        let h = g.filter_edges(|id, _| id % 3 != 0);
        for kernel in [IntersectKernel::new(&h), IntersectKernel::lean(&h)] {
            let mut two = Vec::new();
            let mut scratch = Vec::new();
            let mut three_buf = Vec::new();
            for a in 0..6u32 {
                for b in 0..6u32 {
                    if a == b {
                        continue;
                    }
                    two_hop_midpoints_with(&kernel, a, b, &mut two);
                    assert_eq!(two, two_hop_midpoints(&h, a, b), "two ({a},{b})");
                    let reference = three_hop_pairs(&h, a, b);
                    assert_eq!(
                        three_hop_pairs_with(&kernel, a, b, &mut scratch),
                        reference,
                        "three ({a},{b})"
                    );
                    three_hop_pairs_into(&h, a, b, &mut scratch, &mut three_buf);
                    assert_eq!(three_buf, reference, "three_into ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn select_respects_policy_ordering() {
        let mut rng = item_rng(0, 0);
        // Direct edge wins under UniformShortest and FirstFound.
        let p = select_from_sets(
            0,
            1,
            true,
            &[2],
            &[],
            DetourPolicy::UniformShortest,
            &mut rng,
        );
        assert_eq!(p, Some(vec![0, 1]));
        let p = select_from_sets(0, 1, true, &[2], &[], DetourPolicy::FirstFound, &mut rng);
        assert_eq!(p, Some(vec![0, 1]));
        // No candidates at all.
        let p = select_from_sets(0, 1, false, &[], &[], DetourPolicy::UniformUpTo3, &mut rng);
        assert_eq!(p, None);
    }

    #[test]
    fn needs_three_hop_matrix() {
        assert!(needs_three_hop(DetourPolicy::UniformUpTo3, true, 5));
        assert!(!needs_three_hop(DetourPolicy::UniformShortest, true, 0));
        assert!(!needs_three_hop(DetourPolicy::UniformShortest, false, 3));
        assert!(needs_three_hop(DetourPolicy::UniformShortest, false, 0));
        assert!(needs_three_hop(DetourPolicy::FirstFound, false, 0));
        assert!(!needs_three_hop(DetourPolicy::FirstFound, false, 1));
    }
}
