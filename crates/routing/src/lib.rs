//! # dcspan-routing
//!
//! Routing problems, routings, and node congestion — the second axis of the
//! paper's DC-spanner definition — plus the machinery of **Theorem 1 /
//! Algorithm 2**: decomposing an arbitrary routing into matchings, routing
//! each matching on the spanner, and reassembling a substitute routing with
//! congestion overhead `O(C(P) · log n)`.
//!
//! * [`problem`] — routing problems `R = {(u_i, v_i)}`, with the matching
//!   special case the constructions reduce to,
//! * [`routing`] — routings `P` (sets of paths) and node-congestion
//!   accounting `C(P)` (Definition 2's measured quantity),
//! * [`shortest`] — BFS shortest-path routings with deterministic or
//!   randomised tie-breaking,
//! * [`valiant`] — two-phase random-intermediate routing used to route
//!   matchings on sparsified expanders (Table 1 rows \[5\] and \[16\]),
//! * [`replace`] — per-edge replacement-path routers (3-detours in a
//!   spanner, with fallbacks), the `(α', β')`-substitute building block,
//! * [`detour`] — the shared ≤3-hop detour enumeration and policy
//!   selection both the naive router and the serving index build on,
//! * [`decompose`] — Algorithm 2 end to end, instrumented so experiments
//!   can report the Lemma 21–23 quantities (level degrees, matching
//!   counts, congestion overhead),
//! * [`schedule`] — a node-capacity-1 store-and-forward packet scheduler
//!   that turns node congestion into measured delivery latency (the
//!   paper's Section 1.1 motivation),
//! * [`mincongestion`] — an approximate minimum-congestion router
//!   (multiplicative-weights rerouting), the measured stand-in for
//!   Definition 2's optimal `C(R)`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod decompose;
pub mod detour;
pub mod mincongestion;
pub mod problem;
pub mod replace;
pub mod routing;
pub mod schedule;
pub mod shortest;
pub mod valiant;

pub use decompose::{substitute_routing_decomposed, DecompositionReport};
pub use problem::RoutingProblem;
pub use replace::{EdgeRouter, SpannerDetourRouter};
pub use routing::Routing;
