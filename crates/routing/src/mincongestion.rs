//! Approximate **minimum-congestion routing** — Definition 2's `C(R)`.
//!
//! The paper's congestion stretch compares against `C_G(R)`, the *smallest*
//! congestion achievable by any routing of `R` in `G`. Computing it exactly
//! is NP-hard, but the classic multiplicative-weights / best-response
//! scheme (Raghavan–Thompson rounding heuristics, selfish-rerouting
//! convergence) gets close in practice: repeatedly re-route each pair along
//! a node-weighted shortest path where a node's cost grows exponentially
//! with its current load.
//!
//! Experiments use this to sanity-check the fixed-routing baselines: for
//! matchings over edges the optimum is 1 (the edges themselves), and for
//! permutation workloads on expanders the optimiser certifies that the
//! base routings we compare against are near-optimal.

use crate::problem::RoutingProblem;
use crate::routing::Routing;
use dcspan_graph::rng::item_rng;
use dcspan_graph::{Graph, NodeId, Path};
use rand::seq::SliceRandom;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Options for the congestion minimiser.
#[derive(Clone, Copy, Debug)]
pub struct MinCongestionOptions {
    /// Full re-routing sweeps over all pairs.
    pub sweeps: usize,
    /// Exponential penalty base: node cost = `base^load` (≥ 1.1).
    pub penalty_base: f64,
}

impl Default for MinCongestionOptions {
    fn default() -> Self {
        MinCongestionOptions {
            sweeps: 8,
            penalty_base: 2.0,
        }
    }
}

/// Node-weighted shortest path: minimises the sum of `cost[v]` over interior
/// and endpoint nodes of the path (Dijkstra over nodes). Ties broken by hop
/// count, keeping paths short.
fn weighted_path(g: &Graph, s: NodeId, t: NodeId, cost: &[f64]) -> Option<Vec<NodeId>> {
    const INF: f64 = f64::INFINITY;
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut hops = vec![u32::MAX; n];
    let mut parent: Vec<NodeId> = vec![u32::MAX; n];
    // BinaryHeap over (cost, hops) as ordered floats via bit tricks.
    #[derive(PartialEq)]
    struct Key(f64, u32, NodeId);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .total_cmp(&other.0)
                .then(self.1.cmp(&other.1))
                .then(self.2.cmp(&other.2))
        }
    }
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    dist[s as usize] = cost[s as usize];
    hops[s as usize] = 0;
    heap.push(Reverse(Key(dist[s as usize], 0, s)));
    while let Some(Reverse(Key(d, h, u))) = heap.pop() {
        if d > dist[u as usize] || (d == dist[u as usize] && h > hops[u as usize]) {
            continue;
        }
        if u == t {
            break;
        }
        for &w in g.neighbors(u) {
            let nd = d + cost[w as usize];
            let nh = h + 1;
            if nd < dist[w as usize] || (nd == dist[w as usize] && nh < hops[w as usize]) {
                dist[w as usize] = nd;
                hops[w as usize] = nh;
                parent[w as usize] = u;
                heap.push(Reverse(Key(nd, nh, w)));
            }
        }
    }
    if dist[t as usize].is_infinite() {
        return None;
    }
    let mut path = vec![t];
    let mut cur = t;
    while cur != s {
        cur = parent[cur as usize];
        debug_assert_ne!(cur, u32::MAX);
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Approximate minimum-node-congestion routing of `problem` in `g`.
///
/// Returns `None` if some pair is disconnected. Deterministic per seed.
pub fn min_congestion_routing(
    g: &Graph,
    problem: &RoutingProblem,
    opts: MinCongestionOptions,
    seed: u64,
) -> Option<Routing> {
    assert!(
        opts.penalty_base >= 1.1,
        "penalty base too small to differentiate loads"
    );
    let n = g.n();
    let k = problem.len();
    // Initial routing: plain shortest paths.
    let mut paths: Vec<Vec<NodeId>> = Vec::with_capacity(k);
    for &(u, v) in problem.pairs() {
        paths.push(dcspan_graph::traversal::shortest_path(g, u, v)?);
    }
    let mut load = vec![0u32; n];
    let add = |load: &mut [u32], p: &[NodeId], delta: i64| {
        let mut distinct = p.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        for v in distinct {
            load[v as usize] = (load[v as usize] as i64 + delta) as u32;
        }
    };
    for p in &paths {
        add(&mut load, p, 1);
    }

    // Quality of a load vector: lexicographic (max congestion, Σ load²).
    // The potential term lets sweeps that spread load without yet lowering
    // the peak (e.g. shared endpoints pin the max) still count as progress.
    let quality = |load: &[u32]| -> (u32, u64) {
        let max = *load.iter().max().unwrap_or(&0);
        let potential = load.iter().map(|&l| (l as u64) * (l as u64)).sum();
        (max, potential)
    };
    let mut order: Vec<usize> = (0..k).collect();
    let mut best_paths = paths.clone();
    let mut best_q = quality(&load);
    for sweep in 0..opts.sweeps {
        let mut rng = item_rng(seed, sweep as u64);
        order.shuffle(&mut rng);
        for &i in &order {
            // Remove i's contribution, re-route on the penalised costs.
            add(&mut load, &paths[i], -1);
            // Cap exponent to avoid overflow; loads beyond 60 are equivalent.
            let cost: Vec<f64> = load
                .iter()
                .map(|&l| opts.penalty_base.powi(l.min(60) as i32))
                .collect();
            let (u, v) = problem.pairs()[i];
            if let Some(p) = weighted_path(g, u, v, &cost) {
                paths[i] = p;
            }
            add(&mut load, &paths[i], 1);
        }
        let q = quality(&load);
        if q < best_q {
            best_q = q;
            best_paths = paths.clone();
        }
    }
    Some(Routing::new(
        best_paths.into_iter().map(Path::new).collect(),
    ))
}

/// Approximate `C_G(R)`: the congestion of the optimised routing.
pub fn approx_optimal_congestion(
    g: &Graph,
    problem: &RoutingProblem,
    opts: MinCongestionOptions,
    seed: u64,
) -> Option<u32> {
    Some(min_congestion_routing(g, problem, opts, seed)?.congestion(g.n()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::Graph;

    /// Two parallel corridors between s-side and t-side.
    fn two_corridors() -> Graph {
        // 0 → {1, 2} → 3 and a longer corridor 0 → 4 → 5 → 3.
        Graph::from_edges(
            6,
            vec![(0, 1), (1, 3), (0, 2), (2, 3), (0, 4), (4, 5), (5, 3)],
        )
    }

    #[test]
    fn weighted_path_prefers_cheap_nodes() {
        let g = two_corridors();
        let mut cost = vec![1.0; 6];
        cost[1] = 100.0;
        let p = weighted_path(&g, 0, 3, &cost).unwrap();
        assert!(
            !p.contains(&1),
            "path {p:?} should avoid the expensive node"
        );
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
    }

    #[test]
    fn weighted_path_breaks_ties_by_hops() {
        let g = two_corridors();
        let cost = vec![1.0; 6];
        let p = weighted_path(&g, 0, 3, &cost).unwrap();
        assert_eq!(p.len(), 3, "uniform costs should give a 2-hop path");
    }

    #[test]
    fn disconnected_is_none() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let problem = RoutingProblem::from_pairs(vec![(0, 3)]);
        assert!(min_congestion_routing(&g, &problem, Default::default(), 1).is_none());
    }

    #[test]
    fn spreads_two_pairs_across_corridors() {
        // Two pairs 0→3: plain shortest paths may collide on one 2-hop
        // corridor; the optimiser must use both.
        let g = two_corridors();
        let problem = RoutingProblem::from_pairs(vec![(0, 3), (0, 3)]);
        let r = min_congestion_routing(&g, &problem, Default::default(), 2).unwrap();
        assert!(r.is_valid_for(&problem, &g));
        // Optimal interior congestion: endpoints 0 and 3 carry both paths
        // (unavoidable), but the corridors are split: C = 2 only at
        // endpoints, and the two paths differ.
        assert_ne!(r.paths()[0], r.paths()[1]);
    }

    #[test]
    fn matching_over_edges_achieves_congestion_one() {
        let g = Graph::from_edges(6, vec![(0, 1), (2, 3), (4, 5), (1, 2), (3, 4)]);
        let problem = RoutingProblem::from_pairs(vec![(0, 1), (2, 3), (4, 5)]);
        let c = approx_optimal_congestion(&g, &problem, Default::default(), 3).unwrap();
        assert_eq!(c, 1);
    }

    #[test]
    fn never_worse_than_plain_shortest_paths() {
        let g = dcspan_graph::Graph::from_edges(
            8,
            (0u32..8)
                .flat_map(|i| (i + 1..8).map(move |j| (i, j)))
                .filter(|&(i, j)| (i + j) % 3 != 0),
        );
        let problem = RoutingProblem::random_pairs(8, 12, 5);
        let base = crate::shortest::shortest_path_routing(&g, &problem).unwrap();
        let opt = min_congestion_routing(&g, &problem, Default::default(), 5).unwrap();
        assert!(opt.congestion(8) <= base.congestion(8));
        assert!(opt.is_valid_for(&problem, &g));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = two_corridors();
        let problem = RoutingProblem::from_pairs(vec![(0, 3), (0, 3), (0, 3)]);
        let a = min_congestion_routing(&g, &problem, Default::default(), 9).unwrap();
        let b = min_congestion_routing(&g, &problem, Default::default(), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn funnel_lower_bound_respected() {
        // Star through a single cut vertex: congestion must stay k at the hub.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            edges.push((i, 4));
            edges.push((4, 5 + i));
        }
        let g = Graph::from_edges(9, edges);
        let problem = RoutingProblem::from_pairs((0..4u32).map(|i| (i, 5 + i)).collect());
        let c = approx_optimal_congestion(&g, &problem, Default::default(), 7).unwrap();
        assert_eq!(c, 4, "the hub is unavoidable");
    }
}
