//! Routing problems (Definition: a set of source–destination pairs).

use dcspan_graph::rng::item_rng;
use dcspan_graph::{Edge, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A routing problem `R = {(u_1, v_1), …, (u_k, v_k)}` with `u_i ≠ v_i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingProblem {
    pairs: Vec<(NodeId, NodeId)>,
}

impl RoutingProblem {
    /// Build from explicit pairs.
    ///
    /// # Panics
    /// Panics if any pair has equal endpoints.
    pub fn from_pairs(pairs: Vec<(NodeId, NodeId)>) -> Self {
        assert!(
            pairs.iter().all(|(u, v)| u != v),
            "source must differ from destination"
        );
        RoutingProblem { pairs }
    }

    /// The routing problem over a set of edges (each edge becomes a pair,
    /// oriented `u → v` canonically). Used by Lemma 1's "all edges" problem
    /// and the matching routing problems `R_M`.
    pub fn from_edges<I: IntoIterator<Item = Edge>>(edges: I) -> Self {
        RoutingProblem {
            pairs: edges.into_iter().map(|e| (e.u, e.v)).collect(),
        }
    }

    /// The "route every edge of G" problem from Lemma 1's proof.
    pub fn all_edges(g: &Graph) -> Self {
        Self::from_edges(g.edges().iter().copied())
    }

    /// A uniformly random permutation routing problem: node `i` sends to
    /// `π(i)` for a random permutation π with no fixed points kept (fixed
    /// points are dropped, matching the `u_i ≠ v_i` requirement).
    ///
    /// ```
    /// use dcspan_routing::problem::RoutingProblem;
    /// let r = RoutingProblem::random_permutation(100, 1);
    /// assert!(r.len() >= 90); // only fixed points are dropped
    /// assert!(r.pairs().iter().all(|(u, v)| u != v));
    /// ```
    pub fn random_permutation(n: usize, seed: u64) -> Self {
        let mut rng = item_rng(seed, 0);
        let mut targets: Vec<NodeId> = (0..n as NodeId).collect();
        targets.shuffle(&mut rng);
        let pairs = (0..n as NodeId)
            .zip(targets)
            .filter(|(u, v)| u != v)
            .collect();
        RoutingProblem { pairs }
    }

    /// `k` uniformly random (source ≠ destination) pairs.
    pub fn random_pairs(n: usize, k: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let mut rng = item_rng(seed, 1);
        let pairs = (0..k)
            .map(|_| loop {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if u != v {
                    break (u, v);
                }
            })
            .collect();
        RoutingProblem { pairs }
    }

    /// A random matching routing problem: pair up a random subset of nodes
    /// (each node appears at most once overall).
    pub fn random_matching(n: usize, pairs: usize, seed: u64) -> Self {
        assert!(
            2 * pairs <= n,
            "not enough nodes for {pairs} disjoint pairs"
        );
        let mut rng = item_rng(seed, 2);
        let mut nodes: Vec<NodeId> = (0..n as NodeId).collect();
        nodes.shuffle(&mut rng);
        let pairs = nodes[..2 * pairs]
            .chunks_exact(2)
            .map(|c| (c[0], c[1]))
            .collect();
        RoutingProblem { pairs }
    }

    /// The pairs.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True if the problem is a *matching* routing problem: every node
    /// occurs at most once across all sources and destinations (the special
    /// case Theorems 2 and 3 reduce to).
    pub fn is_matching(&self) -> bool {
        let mut seen = dcspan_graph::FxHashSet::default();
        self.pairs
            .iter()
            .all(|&(u, v)| seen.insert(u) && seen.insert(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::Graph;

    #[test]
    fn from_pairs_and_accessors() {
        let r = RoutingProblem::from_pairs(vec![(0, 1), (2, 3)]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.is_matching());
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn rejects_self_pairs() {
        let _ = RoutingProblem::from_pairs(vec![(1, 1)]);
    }

    #[test]
    fn matching_detection() {
        assert!(RoutingProblem::from_pairs(vec![(0, 1), (2, 3)]).is_matching());
        assert!(!RoutingProblem::from_pairs(vec![(0, 1), (1, 2)]).is_matching());
        assert!(!RoutingProblem::from_pairs(vec![(0, 1), (2, 0)]).is_matching());
        assert!(RoutingProblem::from_pairs(vec![]).is_matching());
    }

    #[test]
    fn all_edges_problem() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let r = RoutingProblem::all_edges(&g);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pairs()[0], (0, 1));
    }

    #[test]
    fn random_permutation_is_valid() {
        let r = RoutingProblem::random_permutation(50, 3);
        assert!(r.pairs().iter().all(|(u, v)| u != v));
        // Each node appears at most once as source and once as destination.
        let sources: std::collections::HashSet<_> = r.pairs().iter().map(|p| p.0).collect();
        let dests: std::collections::HashSet<_> = r.pairs().iter().map(|p| p.1).collect();
        assert_eq!(sources.len(), r.len());
        assert_eq!(dests.len(), r.len());
        // Most nodes survive fixed-point dropping.
        assert!(r.len() >= 45);
        assert_eq!(r, RoutingProblem::random_permutation(50, 3));
    }

    #[test]
    fn random_matching_is_matching() {
        let r = RoutingProblem::random_matching(20, 8, 5);
        assert_eq!(r.len(), 8);
        assert!(r.is_matching());
    }

    #[test]
    #[should_panic(expected = "not enough nodes")]
    fn random_matching_requires_enough_nodes() {
        let _ = RoutingProblem::random_matching(5, 3, 1);
    }

    #[test]
    fn random_pairs_deterministic() {
        let a = RoutingProblem::random_pairs(30, 10, 7);
        let b = RoutingProblem::random_pairs(30, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }
}
