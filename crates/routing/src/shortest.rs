//! Shortest-path routings.
//!
//! The baseline routings `P` that experiments feed into the DC-spanner
//! pipeline. Two tie-breaking policies:
//!
//! * deterministic (BFS parent order) — reproducible canonical routing,
//! * randomised — each pair independently samples a uniformly random
//!   *shortest* path (by walking backwards from the destination choosing a
//!   random predecessor on a shortest path), which spreads congestion the
//!   way the paper's random replacement choices do.

use crate::problem::RoutingProblem;
use crate::routing::Routing;
use dcspan_graph::rng::item_rng;
use dcspan_graph::traversal::{bfs_distances, shortest_path, UNREACHABLE};
use dcspan_graph::{Graph, NodeId, Path};
use rand::seq::SliceRandom;

/// Route every pair along a deterministic shortest path.
///
/// Returns `None` if some pair is disconnected.
pub fn shortest_path_routing(g: &Graph, problem: &RoutingProblem) -> Option<Routing> {
    let mut paths = Vec::with_capacity(problem.len());
    for &(u, v) in problem.pairs() {
        paths.push(Path::new(shortest_path(g, u, v)?));
    }
    Some(Routing::new(paths))
}

/// Route every pair along an independently sampled uniformly-random
/// shortest path.
///
/// Returns `None` if some pair is disconnected.
pub fn random_shortest_path_routing(
    g: &Graph,
    problem: &RoutingProblem,
    seed: u64,
) -> Option<Routing> {
    let mut paths = Vec::with_capacity(problem.len());
    for (idx, &(u, v)) in problem.pairs().iter().enumerate() {
        let mut rng = item_rng(seed, idx as u64);
        let dist = bfs_distances(g, u);
        if dist[v as usize] == UNREACHABLE {
            return None;
        }
        // Walk backwards from v, picking a random predecessor at distance
        // exactly one less each step.
        let mut rev = vec![v];
        let mut cur = v;
        while cur != u {
            let d = dist[cur as usize];
            let mut preds: Vec<NodeId> = g
                .neighbors(cur)
                .iter()
                .copied()
                .filter(|&w| dist[w as usize] + 1 == d)
                .collect();
            debug_assert!(!preds.is_empty(), "BFS invariant violated");
            preds.shuffle(&mut rng);
            cur = preds[0];
            rev.push(cur);
        }
        rev.reverse();
        paths.push(Path::new(rev));
    }
    Some(Routing::new(paths))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c6() -> Graph {
        Graph::from_edges(6, (0u32..6).map(|i| (i, (i + 1) % 6)))
    }

    #[test]
    fn deterministic_routing_is_valid_and_shortest() {
        let g = c6();
        let problem = RoutingProblem::from_pairs(vec![(0, 3), (1, 5)]);
        let r = shortest_path_routing(&g, &problem).unwrap();
        assert!(r.is_valid_for(&problem, &g));
        assert_eq!(r.paths()[0].len(), 3);
        assert_eq!(r.paths()[1].len(), 2);
    }

    #[test]
    fn disconnected_returns_none() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let problem = RoutingProblem::from_pairs(vec![(0, 3)]);
        assert!(shortest_path_routing(&g, &problem).is_none());
        assert!(random_shortest_path_routing(&g, &problem, 1).is_none());
    }

    #[test]
    fn random_routing_is_shortest_and_deterministic_per_seed() {
        let g = c6();
        let problem = RoutingProblem::from_pairs(vec![(0, 3), (2, 5)]);
        let a = random_shortest_path_routing(&g, &problem, 11).unwrap();
        let b = random_shortest_path_routing(&g, &problem, 11).unwrap();
        assert_eq!(a, b);
        assert!(a.is_valid_for(&problem, &g));
        for p in a.paths() {
            assert_eq!(p.len(), 3); // both pairs are antipodal on C6
        }
    }

    #[test]
    fn random_routing_uses_both_shortest_paths() {
        // On C6 the pair (0, 3) has exactly two shortest paths; across many
        // seeds both must appear.
        let g = c6();
        let problem = RoutingProblem::from_pairs(vec![(0, 3)]);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..40 {
            let r = random_shortest_path_routing(&g, &problem, seed).unwrap();
            seen.insert(r.paths()[0].nodes().to_vec());
        }
        assert_eq!(seen.len(), 2, "both shortest paths should be sampled");
    }

    #[test]
    fn empty_problem_routes_trivially() {
        let g = c6();
        let problem = RoutingProblem::from_pairs(vec![]);
        let r = shortest_path_routing(&g, &problem).unwrap();
        assert!(r.is_empty());
    }
}
