//! Routings and node-congestion accounting.
//!
//! A routing `P` for a problem `R` is one path per pair. The paper's
//! congestion measure is **node** congestion: `C(P, v)` counts the paths
//! whose node set contains `v` (a path contributes at most once per node
//! even if, as a spliced substitute walk, it visits the node twice), and
//! `C(P) = max_v C(P, v)`.

use crate::problem::RoutingProblem;
use dcspan_graph::{Graph, NodeId, Path};
use rayon::prelude::*;

/// A routing: one path per routing-problem pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Routing {
    paths: Vec<Path>,
}

impl Routing {
    /// Wrap a set of paths as a routing.
    pub fn new(paths: Vec<Path>) -> Self {
        Routing { paths }
    }

    /// The paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if there are no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Per-node congestion profile `C(P, ·)` for a graph with `n` nodes.
    pub fn congestion_profile(&self, n: usize) -> Vec<u32> {
        let mut profile = vec![0u32; n];
        for p in &self.paths {
            for v in p.distinct_nodes() {
                profile[v as usize] += 1;
            }
        }
        profile
    }

    /// Node congestion `C(P) = max_v C(P, v)`; 0 for an empty routing.
    pub fn congestion(&self, n: usize) -> u32 {
        self.congestion_profile(n).into_iter().max().unwrap_or(0)
    }

    /// Parallel congestion profile: partial profiles are accumulated per
    /// rayon worker and merged — identical output to
    /// [`Routing::congestion_profile`], used for the large routings in the
    /// experiment sweeps.
    pub fn congestion_profile_par(&self, n: usize) -> Vec<u32> {
        self.paths
            .par_iter()
            .fold(
                || vec![0u32; n],
                |mut acc, p| {
                    for v in p.distinct_nodes() {
                        acc[v as usize] += 1;
                    }
                    acc
                },
            )
            .reduce(
                || vec![0u32; n],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            )
    }

    /// The node attaining the maximum congestion (first such node).
    pub fn max_congestion_node(&self, n: usize) -> Option<NodeId> {
        let profile = self.congestion_profile(n);
        let max = *profile.iter().max()?;
        if max == 0 {
            return None;
        }
        profile.iter().position(|&c| c == max).map(|i| i as NodeId)
    }

    /// Maximum path length `max_i l(p_i)` (0 for empty routing).
    pub fn max_length(&self) -> usize {
        self.paths.iter().map(Path::len).max().unwrap_or(0)
    }

    /// Total edge traversals across all paths.
    pub fn total_length(&self) -> usize {
        self.paths.iter().map(Path::len).sum()
    }

    /// Validate this routing against a problem and a host graph: one path
    /// per pair, correct endpoints, every hop an edge of `g`.
    pub fn is_valid_for(&self, problem: &RoutingProblem, g: &Graph) -> bool {
        self.paths.len() == problem.len()
            && self
                .paths
                .iter()
                .zip(problem.pairs())
                .all(|(p, &(u, v))| p.source() == u && p.destination() == v && p.is_valid_in(g))
    }

    /// Per-**edge** congestion: how many paths traverse each edge of `g`
    /// (each path counts once per edge even if it traverses it twice).
    /// Indexed by `g`'s edge ids; hops that are not edges of `g` are
    /// ignored (callers validate separately).
    ///
    /// Edge congestion is the measure used by the permutation-routing
    /// results the paper imports from Scheideler \[25\]; node congestion
    /// upper-bounds it on bounded-degree graphs.
    pub fn edge_congestion_profile(&self, g: &Graph) -> Vec<u32> {
        let mut profile = vec![0u32; g.m()];
        let mut seen: Vec<usize> = Vec::new();
        for p in &self.paths {
            seen.clear();
            for (a, b) in p.hops() {
                if let Some(id) = g.edge_id(a, b) {
                    seen.push(id);
                }
            }
            seen.sort_unstable();
            seen.dedup();
            for &id in &seen {
                profile[id] += 1;
            }
        }
        profile
    }

    /// Maximum edge congestion over the edges of `g`.
    pub fn edge_congestion(&self, g: &Graph) -> u32 {
        self.edge_congestion_profile(g)
            .into_iter()
            .max()
            .unwrap_or(0)
    }

    /// Per-path stretch against a baseline routing (`self[i].len() /
    /// base[i].len()`); pairs routed with zero-length base paths are
    /// skipped. Returns the maximum ratio (the paper's distance-stretch α
    /// for this routing pair).
    pub fn max_stretch_vs(&self, base: &Routing) -> f64 {
        assert_eq!(
            self.len(),
            base.len(),
            "routings must cover the same problem"
        );
        self.paths
            .iter()
            .zip(&base.paths)
            .filter(|(_, b)| !b.is_empty())
            .map(|(p, b)| p.len() as f64 / b.len() as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c5() -> Graph {
        Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn congestion_counts_distinct_nodes_once() {
        // Walk 0-1-0-4 visits 0 twice but contributes 1 to node 0.
        let r = Routing::new(vec![Path::new(vec![0, 1, 0, 4])]);
        let profile = r.congestion_profile(5);
        assert_eq!(profile, vec![1, 1, 0, 0, 1]);
        assert_eq!(r.congestion(5), 1);
    }

    #[test]
    fn congestion_max_over_paths() {
        let r = Routing::new(vec![
            Path::new(vec![0, 1, 2]),
            Path::new(vec![4, 0, 1]),
            Path::new(vec![2, 1]),
        ]);
        let profile = r.congestion_profile(5);
        assert_eq!(profile[1], 3);
        assert_eq!(r.congestion(5), 3);
        assert_eq!(r.max_congestion_node(5), Some(1));
    }

    #[test]
    fn parallel_profile_matches_sequential() {
        let paths: Vec<Path> = (0..40u32)
            .map(|i| Path::new(vec![i % 5, (i % 5 + 1) % 5, (i % 5 + 2) % 5]))
            .collect();
        let r = Routing::new(paths);
        assert_eq!(r.congestion_profile(5), r.congestion_profile_par(5));
    }

    #[test]
    fn empty_routing() {
        let r = Routing::new(vec![]);
        assert_eq!(r.congestion(4), 0);
        assert_eq!(r.max_congestion_node(4), None);
        assert_eq!(r.max_length(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn validation() {
        let g = c5();
        let problem = RoutingProblem::from_pairs(vec![(0, 2), (3, 4)]);
        let good = Routing::new(vec![Path::new(vec![0, 1, 2]), Path::new(vec![3, 4])]);
        assert!(good.is_valid_for(&problem, &g));
        // Wrong destination.
        let bad = Routing::new(vec![Path::new(vec![0, 1]), Path::new(vec![3, 4])]);
        assert!(!bad.is_valid_for(&problem, &g));
        // Hop not an edge.
        let bad2 = Routing::new(vec![Path::new(vec![0, 2]), Path::new(vec![3, 4])]);
        assert!(!bad2.is_valid_for(&problem, &g));
        // Wrong path count.
        let bad3 = Routing::new(vec![Path::new(vec![0, 1, 2])]);
        assert!(!bad3.is_valid_for(&problem, &g));
    }

    #[test]
    fn edge_congestion_counts_traversals() {
        let g = c5();
        let r = Routing::new(vec![
            Path::new(vec![0, 1, 2]),
            Path::new(vec![2, 1]),
            Path::new(vec![3, 4]),
        ]);
        let profile = r.edge_congestion_profile(&g);
        assert_eq!(profile[g.edge_id(1, 2).unwrap()], 2);
        assert_eq!(profile[g.edge_id(0, 1).unwrap()], 1);
        assert_eq!(profile[g.edge_id(3, 4).unwrap()], 1);
        assert_eq!(profile[g.edge_id(2, 3).unwrap()], 0);
        assert_eq!(r.edge_congestion(&g), 2);
    }

    #[test]
    fn edge_congestion_dedups_within_a_walk() {
        let g = c5();
        // Walk 0-1-0-1-2 uses edge (0,1) twice but counts once.
        let r = Routing::new(vec![Path::new(vec![0, 1, 0, 1, 2])]);
        let profile = r.edge_congestion_profile(&g);
        assert_eq!(profile[g.edge_id(0, 1).unwrap()], 1);
    }

    #[test]
    fn node_congestion_dominates_edge_congestion() {
        let g = c5();
        let r = Routing::new(vec![Path::new(vec![0, 1, 2, 3]), Path::new(vec![4, 0, 1])]);
        assert!(r.congestion(5) >= r.edge_congestion(&g));
    }

    #[test]
    fn stretch_vs_baseline() {
        let base = Routing::new(vec![Path::new(vec![0, 1]), Path::new(vec![2, 3])]);
        let sub = Routing::new(vec![Path::new(vec![0, 4, 3, 1]), Path::new(vec![2, 3])]);
        assert!((sub.max_stretch_vs(&base) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn total_and_max_length() {
        let r = Routing::new(vec![Path::new(vec![0, 1, 2]), Path::new(vec![3, 4])]);
        assert_eq!(r.total_length(), 3);
        assert_eq!(r.max_length(), 2);
    }
}
