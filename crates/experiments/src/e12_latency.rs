//! **E12 — packet latency** (Section 1.1 motivation): congestion stretch
//! translates directly into store-and-forward delivery time.
//!
//! We route the same matching workload (i) in `G`, (ii) on the DC-spanner
//! of Algorithm 1, and (iii) on the Figure-1-style VFT spanner of the
//! two-cliques graph, then run the node-capacity-1 packet scheduler on
//! each. The paper's argument: smaller node congestion ⇒ lower latency and
//! queue sizes. The DC-spanner's makespan should track `G`'s, while the
//! congestion-oblivious spanner's makespan blows up with its congestion.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_core::vft::{paper_kept_count, vft_style_spanner};
use dcspan_gen::two_clique::TwoCliqueGraph;
use dcspan_routing::problem::RoutingProblem;
use dcspan_routing::replace::{route_matching, DetourPolicy, SpannerDetourRouter};
use dcspan_routing::schedule::{simulate_schedule, QueuePolicy};

/// One measured row: a workload routed on one host.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E12Row {
    /// Host description.
    pub host: String,
    /// Nodes.
    pub n: usize,
    /// Packets (pairs).
    pub packets: usize,
    /// Node congestion of the routing.
    pub congestion: u32,
    /// Longest path.
    pub dilation: usize,
    /// Scheduler makespan (FIFO, no delays).
    pub makespan: usize,
    /// Scheduler lower bound max(C, D).
    pub lower_bound: usize,
    /// Total queueing delay.
    pub queueing: usize,
}

fn schedule_row(
    host: String,
    n: usize,
    routing: &dcspan_routing::routing::Routing,
    seed: u64,
) -> E12Row {
    let res = simulate_schedule(n, routing, QueuePolicy::Fifo, 0, seed);
    E12Row {
        host,
        n,
        packets: routing.len(),
        congestion: routing.congestion(n),
        dilation: routing.max_length(),
        makespan: res.makespan,
        lower_bound: res.lower_bound,
        queueing: res.total_queueing,
    }
}

/// Run the latency comparison.
pub fn run(n_regular: usize, half_clique: usize, seed: u64) -> (Vec<E12Row>, String) {
    let mut rows = Vec::new();

    // --- Regular-graph workload: matching of removed edges on Algorithm 1.
    let delta = workloads::theorem3_degree(n_regular);
    let g = workloads::regime_expander(n_regular, delta, seed);
    let params = RegularSpannerParams::calibrated(n_regular, delta);
    let sp = build_regular_spanner(&g, params, seed ^ 1);
    let matching = workloads::removed_edge_matching(&g, &sp.h);
    // In G the matching routes over its own edges: congestion 1, makespan 1.
    let base = dcspan_core::eval::edge_routing(&matching);
    rows.push(schedule_row(
        format!("G (n={n_regular})"),
        n_regular,
        &base,
        seed ^ 2,
    ));
    let router = SpannerDetourRouter::new(&sp.h, DetourPolicy::UniformUpTo3);
    let dc = route_matching(&router, &matching, seed ^ 3).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
    rows.push(schedule_row(
        format!("Algorithm 1 H (n={n_regular})"),
        n_regular,
        &dc,
        seed ^ 4,
    ));

    // --- Two-cliques workload: perfect matching, VFT vs congestion-aware.
    let t = TwoCliqueGraph::new(half_clique);
    let n2 = t.graph.n();
    let pm = RoutingProblem::from_pairs(t.matching_routing_pairs());
    let base2 = dcspan_core::eval::edge_routing(&pm);
    rows.push(schedule_row(
        format!("two-clique G (n={n2})"),
        n2,
        &base2,
        seed ^ 5,
    ));
    let kept = paper_kept_count(&t);
    let vft = vft_style_spanner(&t, kept, false, seed ^ 6);
    let vft_router = SpannerDetourRouter::new(&vft.h, DetourPolicy::UniformShortest);
    let vft_routing = route_matching(&vft_router, &pm, seed ^ 7).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
    rows.push(schedule_row(
        format!("VFT spanner (n={n2})"),
        n2,
        &vft_routing,
        seed ^ 8,
    ));

    let mut table = Table::new([
        "host", "n", "packets", "C(P)", "D", "makespan", "max(C,D)", "queueing",
    ]);
    for r in &rows {
        table.add_row([
            r.host.clone(),
            r.n.to_string(),
            r.packets.to_string(),
            r.congestion.to_string(),
            r.dilation.to_string(),
            r.makespan.to_string(),
            r.lower_bound.to_string(),
            r.queueing.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nLow node congestion ⇒ low makespan under node-capacity-1 forwarding \
         (paper §1.1). The DC-spanner's latency tracks G's; the VFT spanner's latency \
         scales with its Ω(n^2/3) congestion.\n",
        crate::banner("E12", "packet latency under node-capacity-1 forwarding"),
        table.render()
    );
    let _ = f2(0.0);
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_spanner_latency_tracks_g_vft_does_not() {
        let (rows, text) = run(96, 48, 5);
        assert_eq!(rows.len(), 4);
        let g_row = &rows[0];
        let dc_row = &rows[1];
        let base2 = &rows[2];
        let vft = &rows[3];
        // In G a matching delivers in 1 round.
        assert_eq!(g_row.makespan, 1);
        assert_eq!(base2.makespan, 1);
        // DC-spanner latency within a small factor of the lower bound.
        assert!(dc_row.makespan <= 3 * dc_row.lower_bound.max(3));
        // VFT latency is clearly worse (Ω(n^{2/3}) congestion); at this
        // test scale the separation factor is ≥ 2 and grows with n.
        assert!(
            vft.makespan >= 2 * dc_row.makespan,
            "vft {} vs dc {}",
            vft.makespan,
            dc_row.makespan
        );
        // Makespans always respect the lower bound.
        for r in &rows {
            assert!(r.makespan >= r.lower_bound.min(r.makespan)); // sanity
            assert!(r.makespan >= r.dilation);
            assert!(r.makespan as u32 >= r.congestion);
        }
        assert!(text.contains("E12"));
    }
}
