//! Multi-seed variance sweeps: the headline Theorem 2 / Theorem 3 metrics
//! across independent random graphs and samples, reported as mean ± std —
//! the "is the single-seed table representative?" check.

use crate::summary::{mean_std, MeanStd};
use crate::table::Table;
use crate::workloads;
use dcspan_core::eval::{distance_stretch_edges, general_substitute_congestion};
use dcspan_core::expander::{
    build_expander_spanner, ExpanderMatchingRouter, ExpanderSpannerParams,
};
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_routing::replace::{route_matching, DetourPolicy, SpannerDetourRouter};

/// Aggregated metric across seeds.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Metric name.
    pub metric: &'static str,
    /// Aggregate over seeds.
    pub stats: MeanStd,
}

fn render(rows: &[SweepRow], id: &str, what: &str, n: usize, seeds: usize) -> String {
    let mut t = Table::new(["metric", "mean ± std", "min", "max"]);
    for r in rows {
        t.add_row([
            r.metric.to_string(),
            r.stats.pm(),
            format!("{:.2}", r.stats.min),
            format!("{:.2}", r.stats.max),
        ]);
    }
    format!(
        "{}n = {n}, {seeds} independent seeds\n\n{}",
        crate::banner(id, what),
        t.render()
    )
}

/// Sweep the Theorem 2 metrics over `seeds` independent graphs/samples.
pub fn sweep_theorem2(n: usize, epsilon: f64, seeds: usize, seed0: u64) -> (Vec<SweepRow>, String) {
    let delta = workloads::theorem2_degree(n, epsilon);
    let mut edges = Vec::new();
    let mut alphas = Vec::new();
    let mut match_c = Vec::new();
    let mut betas = Vec::new();
    for s in 0..seeds as u64 {
        let seed = seed0.wrapping_add(s * 101);
        let g = workloads::regime_expander(n, delta, seed);
        let sp = build_expander_spanner(&g, ExpanderSpannerParams::paper(n, delta), seed ^ 1);
        let router = ExpanderMatchingRouter::new(&g, &sp.h);
        edges.push(sp.h.m() as f64 / (n as f64).powf(5.0 / 3.0));
        let dist = distance_stretch_edges(&g, &sp.h, 6);
        alphas.push(if dist.overflow_pairs > 0 {
            9.0
        } else {
            dist.max_stretch
        });
        let matching = workloads::removed_edge_matching(&g, &sp.h);
        let routing = route_matching(&router, &matching, seed ^ 2).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        match_c.push(routing.congestion(n) as f64);
        let (_, base) = workloads::permutation_base_routing(&g, seed ^ 3);
        let gen = general_substitute_congestion(n, &base, &router, seed ^ 4).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        betas.push(gen.beta());
    }
    let rows = vec![
        SweepRow {
            metric: "|E(H)| / n^5/3",
            stats: mean_std(&edges),
        },
        SweepRow {
            metric: "α (max, edges)",
            stats: mean_std(&alphas),
        },
        SweepRow {
            metric: "C matching",
            stats: mean_std(&match_c),
        },
        SweepRow {
            metric: "β general",
            stats: mean_std(&betas),
        },
    ];
    let text = render(
        &rows,
        "SWEEP-T2",
        "Theorem 2 variance across seeds",
        n,
        seeds,
    );
    (rows, text)
}

/// Sweep the Theorem 3 metrics over `seeds` independent graphs/samples.
pub fn sweep_theorem3(n: usize, seeds: usize, seed0: u64) -> (Vec<SweepRow>, String) {
    let delta = workloads::theorem3_degree(n);
    let params = RegularSpannerParams::calibrated(n, delta);
    let mut edges = Vec::new();
    let mut alphas = Vec::new();
    let mut match_c = Vec::new();
    let mut betas = Vec::new();
    for s in 0..seeds as u64 {
        let seed = seed0.wrapping_add(s * 103);
        let g = workloads::regime_expander(n, delta, seed);
        let sp = build_regular_spanner(&g, params, seed ^ 1);
        let router = SpannerDetourRouter::new(&sp.h, DetourPolicy::UniformUpTo3);
        edges.push(sp.h.m() as f64 / (n as f64).powf(5.0 / 3.0));
        let dist = distance_stretch_edges(&g, &sp.h, 6);
        alphas.push(if dist.overflow_pairs > 0 {
            9.0
        } else {
            dist.max_stretch
        });
        let matching = workloads::removed_edge_matching(&g, &sp.h);
        let routing = route_matching(&router, &matching, seed ^ 2).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        match_c.push(routing.congestion(n) as f64);
        let (_, base) = workloads::permutation_base_routing(&g, seed ^ 3);
        let gen = general_substitute_congestion(n, &base, &router, seed ^ 4).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        betas.push(gen.beta());
    }
    let rows = vec![
        SweepRow {
            metric: "|E(H)| / n^5/3",
            stats: mean_std(&edges),
        },
        SweepRow {
            metric: "α (max, edges)",
            stats: mean_std(&alphas),
        },
        SweepRow {
            metric: "C matching",
            stats: mean_std(&match_c),
        },
        SweepRow {
            metric: "β general",
            stats: mean_std(&betas),
        },
    ];
    let text = render(
        &rows,
        "SWEEP-T3",
        "Theorem 3 variance across seeds",
        n,
        seeds,
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_metrics_are_stable_across_seeds() {
        let (rows, text) = sweep_theorem2(96, 0.18, 4, 11);
        let alpha = rows.iter().find(|r| r.metric.starts_with("α")).unwrap();
        assert!(alpha.stats.max <= 3.0, "α exceeded 3: {:?}", alpha.stats);
        let edges = &rows[0];
        // Relative std of the size ratio should be tiny (independent
        // Bernoulli sampling concentrates).
        assert!(edges.stats.std / edges.stats.mean < 0.1);
        assert!(text.contains("SWEEP-T2"));
    }

    #[test]
    fn theorem3_metrics_are_stable_across_seeds() {
        let (rows, text) = sweep_theorem3(96, 4, 13);
        let alpha = rows.iter().find(|r| r.metric.starts_with("α")).unwrap();
        assert!(alpha.stats.max <= 3.0);
        let c = rows.iter().find(|r| r.metric.starts_with("C ")).unwrap();
        let delta = crate::workloads::theorem3_degree(96) as f64;
        assert!(c.stats.max <= 1.0 + 2.0 * delta.sqrt());
        assert!(text.contains("SWEEP-T3"));
    }
}
