//! **E1 — Table 1, row "Theorem 2"**: 3-distance DC-spanner on dense
//! regular expanders.
//!
//! Paper claims (for `Δ = n^{2/3+ε}`-regular expanders): `O(n^{5/3})`
//! edges, distance stretch 3, matching-routing congestion `O(log n)` whp
//! (expected `1 + o(1)`), general congestion `O(log² n)`.

use crate::table::{f2, f3, Table};
use crate::workloads;
use dcspan_core::eval::{distance_stretch_edges, general_substitute_congestion};
use dcspan_core::expander::{
    build_expander_spanner, ExpanderMatchingRouter, ExpanderSpannerParams,
};
use dcspan_routing::replace::route_matching;
use dcspan_spectral::expansion::spectral_expansion;

/// One measured row of the Theorem 2 experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E1Row {
    /// Nodes.
    pub n: usize,
    /// Degree Δ (regime `n^{2/3+ε}`).
    pub delta: usize,
    /// Measured spectral expansion λ.
    pub lambda: f64,
    /// `|E(G)|`.
    pub edges_g: usize,
    /// `|E(H)|`.
    pub edges_h: usize,
    /// `|E(H)| / n^{5/3}` — should be ≈ constant (paper: `O(n^{5/3})`).
    pub edges_vs_n53: f64,
    /// Max distance stretch over edges (paper: 3).
    pub alpha: f64,
    /// Matching-routing congestion `C(P')` (base = 1; paper: `O(log n)`).
    pub matching_congestion: u32,
    /// General (permutation) congestion stretch β (paper: `O(log² n)`).
    pub general_beta: f64,
    /// `log₂² n` for the β comparison.
    pub log2_sq: f64,
}

/// Run the experiment over the given sizes.
pub fn run(sizes: &[usize], epsilon: f64, seed: u64) -> (Vec<E1Row>, String) {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 1000);
        let delta = workloads::theorem2_degree(n, epsilon);
        let g = workloads::regime_expander(n, delta, seed);
        let lambda = spectral_expansion(&g, seed).lambda;
        let params = ExpanderSpannerParams::paper(n, delta);
        let sp = build_expander_spanner(&g, params, seed ^ 1);
        let router = ExpanderMatchingRouter::new(&g, &sp.h);

        let dist = distance_stretch_edges(&g, &sp.h, 8);
        let matching = workloads::removed_edge_matching(&g, &sp.h);
        let routing = route_matching(&router, &matching, seed ^ 2).expect("matching routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let matching_congestion = routing.congestion(n);

        let (_, base) = workloads::permutation_base_routing(&g, seed ^ 3);
        let general = general_substitute_congestion(n, &base, &router, seed ^ 4)
            .expect("general routing substitutable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable

        rows.push(E1Row {
            n,
            delta,
            lambda,
            edges_g: g.m(),
            edges_h: sp.h.m(),
            edges_vs_n53: sp.h.m() as f64 / (n as f64).powf(5.0 / 3.0),
            alpha: dist
                .max_stretch
                .max(if dist.overflow_pairs > 0 { 9.0 } else { 0.0 }),
            matching_congestion,
            general_beta: general.beta(),
            log2_sq: workloads::log2n(n).powi(2),
        });
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "λ",
        "|E(G)|",
        "|E(H)|",
        "E(H)/n^5/3",
        "α(max)",
        "C_match",
        "β_general",
        "log²n",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            f2(r.lambda),
            r.edges_g.to_string(),
            r.edges_h.to_string(),
            f3(r.edges_vs_n53),
            f2(r.alpha),
            r.matching_congestion.to_string(),
            f2(r.general_beta),
            f2(r.log2_sq),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: |E(H)| = O(n^5/3), α = 3, matching congestion O(log n) \
         (expected 1+o(1)), general β = O(log² n).\n",
        crate::banner("E1", "Table 1 row 'Theorem 2' (expander DC-spanner)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_matches_paper_shape() {
        let (rows, text) = run(&[64, 128], 0.18, 42);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Distance stretch 3 (whp; tolerate the measured max).
            assert!(r.alpha <= 3.0, "n={}: α = {}", r.n, r.alpha);
            // Spanner genuinely sparsifies.
            assert!(r.edges_h < r.edges_g, "n={}", r.n);
            // Matching congestion within the O(log n) band.
            assert!(
                (r.matching_congestion as f64) <= 3.0 * workloads::log2n(r.n),
                "n={}: C = {}",
                r.n,
                r.matching_congestion
            );
            // β within the O(log² n) band (constant ≤ 4 empirically).
            assert!(
                r.general_beta <= 4.0 * r.log2_sq,
                "n={}: β = {}",
                r.n,
                r.general_beta
            );
        }
        assert!(text.contains("E1"));
        assert!(text.contains("α(max)"));
    }

    #[test]
    fn edge_count_ratio_stays_bounded_across_sizes() {
        let (rows, _) = run(&[64, 128, 192], 0.18, 7);
        let ratios: Vec<f64> = rows.iter().map(|r| r.edges_vs_n53).collect();
        // The n^{5/3} normalisation should keep ratios within a small band.
        let max = ratios.iter().copied().fold(0.0, f64::max);
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 3.0, "ratios diverge: {ratios:?}");
    }
}
