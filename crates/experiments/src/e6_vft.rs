//! **E6 — Figure 1**: vertex-fault-tolerant spanners do not control
//! congestion.
//!
//! On the two-cliques graph, an f-VFT-style spanner keeping `f + 1 =
//! ⌈n^{1/3}⌉ + 1` matching edges forces congestion `Ω(n^{2/3})` on the
//! perfect-matching routing problem, while a DC-spanner of comparable size
//! (keep all matching edges, sparsify the cliques) routes it with O(1)
//! congestion.

use crate::table::{f2, Table};
use dcspan_core::baswana_sen::baswana_sen_spanner_checked;
use dcspan_core::vft::{paper_kept_count, vft_style_spanner};
use dcspan_gen::two_clique::TwoCliqueGraph;
use dcspan_graph::Graph;
use dcspan_routing::problem::RoutingProblem;
use dcspan_routing::replace::{route_matching, DetourPolicy, SpannerDetourRouter};

/// One measured row of the Figure 1 experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E6Row {
    /// Total nodes `n = 2·half`.
    pub n: usize,
    /// Matching edges kept by the VFT spanner (`f + 1`).
    pub kept: usize,
    /// `|E|` of the VFT spanner.
    pub edges_vft: usize,
    /// Perfect-matching congestion on the VFT spanner.
    pub congestion_vft: u32,
    /// Pigeonhole lower bound `(half − kept)/kept`.
    pub pigeonhole: f64,
    /// `n^{2/3}` reference (the paper's Ω bound).
    pub n23: f64,
    /// `|E|` of the congestion-aware alternative (all matching edges kept,
    /// cliques sparsified).
    pub edges_alt: usize,
    /// Perfect-matching congestion on the alternative.
    pub congestion_alt: u32,
}

/// The congestion-aware alternative: keep the whole perfect matching,
/// sparsify each clique with a checked 3-spanner.
fn congestion_aware_alternative(t: &TwoCliqueGraph, seed: u64) -> Graph {
    let (h, _) = baswana_sen_spanner_checked(&t.graph, 2, seed, 20)
        .expect("3-spanner of the two-clique graph"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
                                                      // Re-add every matching edge (Baswana–Sen may have dropped some).
    h.with_extra_edges((0..t.half).map(|i| dcspan_graph::Edge::new(t.a(i), t.b(i))))
}

/// Run over clique half-sizes.
pub fn run(halves: &[usize], seed: u64) -> (Vec<E6Row>, String) {
    let mut rows = Vec::new();
    for (i, &half) in halves.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 17);
        let t = TwoCliqueGraph::new(half);
        let n = t.graph.n();
        let kept = paper_kept_count(&t);
        let vft = vft_style_spanner(&t, kept, false, seed);
        let problem = RoutingProblem::from_pairs(t.matching_routing_pairs());

        // UniformShortest: a kept edge routes as itself; removed matching
        // edges have no 2-hop detours in this graph, so the choice is
        // uniform over the 3-hop detours through the kept matching edges.
        let router = SpannerDetourRouter::new(&vft.h, DetourPolicy::UniformShortest);
        let routing = route_matching(&router, &problem, seed ^ 1).expect("matching routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let congestion_vft = routing.congestion(n);

        let alt = congestion_aware_alternative(&t, seed ^ 2);
        let alt_router = SpannerDetourRouter::new(&alt, DetourPolicy::UniformShortest);
        let alt_routing =
            route_matching(&alt_router, &problem, seed ^ 3).expect("matching routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let congestion_alt = alt_routing.congestion(n);

        rows.push(E6Row {
            n,
            kept,
            edges_vft: vft.h.m(),
            congestion_vft,
            pigeonhole: (half - kept) as f64 / kept as f64,
            n23: (n as f64).powf(2.0 / 3.0),
            edges_alt: alt.m(),
            congestion_alt,
        });
    }
    let mut t = Table::new([
        "n",
        "kept(f+1)",
        "|E_vft|",
        "C_vft",
        "pigeonhole",
        "n^2/3",
        "|E_alt|",
        "C_alt",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.kept.to_string(),
            r.edges_vft.to_string(),
            r.congestion_vft.to_string(),
            f2(r.pigeonhole),
            f2(r.n23),
            r.edges_alt.to_string(),
            r.congestion_alt.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: the VFT spanner suffers Ω(n^2/3) congestion on the perfect-matching \
         problem; keeping the matching (congestion-aware) routes it with congestion 1.\n",
        crate::banner("E6", "Figure 1 (VFT spanners vs congestion)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vft_congestion_blows_up_alternative_does_not() {
        let (rows, text) = run(&[24, 48], 3);
        for r in &rows {
            assert!(
                (r.congestion_vft as f64) >= r.pigeonhole,
                "n={}: C = {} below pigeonhole {}",
                r.n,
                r.congestion_vft,
                r.pigeonhole
            );
            assert!(
                r.congestion_alt <= 2,
                "n={}: alternative C = {}",
                r.n,
                r.congestion_alt
            );
            assert!(
                r.congestion_vft > 2 * r.congestion_alt,
                "n={}: no separation",
                r.n
            );
        }
        // Congestion grows with n for VFT (Ω(n^{2/3})) but not for alt.
        assert!(rows[1].congestion_vft > rows[0].congestion_vft);
        assert!(text.contains("Figure 1"));
    }
}
