//! Shared workload construction for the experiment runners.

use dcspan_gen::regular::random_regular;
use dcspan_graph::{Graph, NodeId};
use dcspan_routing::problem::RoutingProblem;
use dcspan_routing::routing::Routing;
use dcspan_routing::shortest::random_shortest_path_routing;

/// Round `x` down to the nearest even number ≥ 2.
pub fn even(x: usize) -> usize {
    (x & !1).max(2)
}

/// The Theorem 3 degree regime: `Δ = ⌈n^{2/3}⌉` (evened so `n·Δ` is even).
pub fn theorem3_degree(n: usize) -> usize {
    even((n as f64).powf(2.0 / 3.0).ceil() as usize)
}

/// The Theorem 2 degree regime: `Δ = ⌈n^{2/3 + ε}⌉` with the given ε.
pub fn theorem2_degree(n: usize, epsilon: f64) -> usize {
    even((n as f64).powf(2.0 / 3.0 + epsilon).ceil() as usize).min(n - 2)
}

/// A random Δ-regular (near-Ramanujan) expander for the given regime.
pub fn regime_expander(n: usize, delta: usize, seed: u64) -> Graph {
    random_regular(n, delta, seed)
}

/// The matching routing problem consisting of a maximal matching among the
/// edges of `g` that are **missing** from `h` — the adversarial workload
/// for a spanner (base congestion exactly 1 in `g`).
pub fn removed_edge_matching(g: &Graph, h: &Graph) -> RoutingProblem {
    let mut used = vec![false; g.n()];
    let mut pairs = Vec::new();
    for e in g.edges() {
        if h.has_edge(e.u, e.v) {
            continue;
        }
        if !used[e.u as usize] && !used[e.v as usize] {
            used[e.u as usize] = true;
            used[e.v as usize] = true;
            pairs.push((e.u, e.v));
        }
    }
    RoutingProblem::from_pairs(pairs)
}

/// A general (non-matching) base routing: a random permutation problem
/// routed by independent random shortest paths in `g`.
pub fn permutation_base_routing(g: &Graph, seed: u64) -> (RoutingProblem, Routing) {
    let problem = RoutingProblem::random_permutation(g.n(), seed);
    let routing = random_shortest_path_routing(g, &problem, seed ^ 0xbead)
        .expect("workload graphs are connected"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
    (problem, routing)
}

/// `k` random-pairs base routing.
pub fn pairs_base_routing(g: &Graph, k: usize, seed: u64) -> (RoutingProblem, Routing) {
    let problem = RoutingProblem::random_pairs(g.n(), k, seed);
    let routing = random_shortest_path_routing(g, &problem, seed ^ 0xfeed)
        .expect("workload graphs are connected"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
    (problem, routing)
}

/// Log-base-2 of n as f64 (≥ 1 for n ≥ 2).
pub fn log2n(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// Natural log of n (≥ 1 clamp for tiny n).
pub fn lnn(n: usize) -> f64 {
    (n.max(3) as f64).ln()
}

/// Greedily pick a maximal matching of pairs from an arbitrary routing
/// problem (utility for turning permutations into matchings).
pub fn matching_subproblem(problem: &RoutingProblem, n: usize) -> RoutingProblem {
    let mut used = vec![false; n];
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for &(u, v) in problem.pairs() {
        if !used[u as usize] && !used[v as usize] {
            used[u as usize] = true;
            used[v as usize] = true;
            pairs.push((u, v));
        }
    }
    RoutingProblem::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes() {
        assert_eq!(even(7), 6);
        assert_eq!(even(0), 2);
        assert!(theorem3_degree(1000) >= 100);
        assert!(theorem2_degree(1000, 0.1) > theorem3_degree(1000));
        assert!(theorem2_degree(64, 0.5) <= 62);
    }

    #[test]
    fn removed_matching_is_matching_of_removed_edges() {
        let g = regime_expander(32, 8, 1);
        let h = dcspan_graph::sample::sample_subgraph(&g, 0.5, 2);
        let m = removed_edge_matching(&g, &h);
        assert!(m.is_matching());
        for &(u, v) in m.pairs() {
            assert!(g.has_edge(u, v));
            assert!(!h.has_edge(u, v));
        }
    }

    #[test]
    fn base_routings_valid() {
        let g = regime_expander(24, 6, 3);
        let (problem, routing) = permutation_base_routing(&g, 4);
        assert!(routing.is_valid_for(&problem, &g));
        let (p2, r2) = pairs_base_routing(&g, 10, 5);
        assert!(r2.is_valid_for(&p2, &g));
        assert_eq!(p2.len(), 10);
    }

    #[test]
    fn matching_subproblem_is_matching() {
        let p = RoutingProblem::from_pairs(vec![(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)]);
        let m = matching_subproblem(&p, 8);
        assert!(m.is_matching());
        assert_eq!(m.len(), 3); // (0,1), (3,4), (6,7)
    }
}
