//! **E22 — sharded chaos serving**: replica and whole-shard outages
//! against the replicated [`ShardedOracle`] fleet.
//!
//! E18 degrades the *spanner* under one oracle; E22 degrades the
//! *fleet* that serves it (DESIGN.md §14). Four phases drive threaded
//! load through the consistent-hash router and its robustness ladder
//! (deadline → retry → failover → hedge → breaker → supervisor):
//!
//! 1. **healthy** — baseline availability and latency percentiles.
//! 2. **replica-down** — one replica of the victim shard is killed
//!    mid-load; the sibling absorbs its keys through fast failover.
//!    Contract: availability ≥ 99.9 % and p99 within 3× the healthy
//!    baseline (floored at [`P99_FLOOR_US`] to keep the ratio
//!    meaningful at in-process microsecond scale).
//! 3. **shard-down** — every replica of the victim shard is killed and
//!    one panic is armed on a healthy shard. Contract: the fleet never
//!    hangs or panics; pairs owned by the dead shard fail with the
//!    typed [`RouteError::Unavailable`], every other pair is served
//!    with a valid path, and a batched [`ShardedOracle::substitute_routing`]
//!    call reports a partial result whose error sections name exactly
//!    the victim shard.
//! 4. **heal** — the injector clears, `supervise` respawns the
//!    panicked replica from its artifact slice, and the healthy-phase
//!    queries are replayed. Contract: availability back to 100 % and
//!    every answer (path, rung) identical to the healthy baseline.

use std::time::Instant;

use crate::table::{f2, Table};
use dcspan_core::serve::SpannerAlgo;
use dcspan_gen::regular::random_regular;
use dcspan_graph::Graph;
use dcspan_oracle::{
    Oracle, OracleConfig, RouteError, RouteResponse, ShardConfig, ShardLayerStats, ShardedOracle,
};
use dcspan_routing::problem::RoutingProblem;

/// Latency floor (µs) for the replica-down p99 contract: below this the
/// 3× ratio measures scheduler noise, not the robustness ladder.
pub const P99_FLOOR_US: f64 = 200.0;

/// Fleet and load shape for one run.
#[derive(Clone, Copy, Debug)]
pub struct ShardChaosConfig {
    /// Shards in the fleet (K).
    pub shards: usize,
    /// Replicas per shard (R).
    pub replicas: usize,
    /// Loader threads per phase.
    pub threads: usize,
    /// Queries per phase.
    pub queries_per_phase: usize,
    /// Workload seed (graph, artifact, and pair streams derive from it).
    pub seed: u64,
}

impl ShardChaosConfig {
    /// CI-sized run: small fleet, hundreds of queries.
    pub fn smoke() -> ShardChaosConfig {
        ShardChaosConfig {
            shards: 4,
            replicas: 2,
            threads: 4,
            queries_per_phase: 400,
            seed: 22,
        }
    }

    /// The acceptance-scale run (`n = 2000`, `K = 4 × R = 2`).
    pub fn full() -> ShardChaosConfig {
        ShardChaosConfig {
            threads: 8,
            queries_per_phase: 4000,
            ..ShardChaosConfig::smoke()
        }
    }
}

/// One serialisable row: a phase's merged observations.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ShardRow {
    /// Phase label (`healthy`, `replica-down`, `shard-down`, `heal`).
    pub phase: String,
    /// Queries issued.
    pub queries: u64,
    /// Queries answered with a path.
    pub ok: u64,
    /// Typed whole-shard outages observed by callers.
    pub unavailable: u64,
    /// Typed deadline expiries observed by callers.
    pub deadline_exceeded: u64,
    /// Deterministic typed rejections (e.g. a genuinely partitioned
    /// pair). These are a property of the workload, not the fleet: a
    /// passing run reproduces them bit-identically in every phase.
    pub other_rejected: u64,
    /// Fraction of queries that received a *definitive* answer — a path
    /// or a deterministic typed rejection. Only shard faults
    /// (`unavailable`, `deadline_exceeded`) count against it.
    pub availability: f64,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
    /// Slowest query, microseconds.
    pub max_us: f64,
    /// Shard-layer retries during the phase.
    pub retries: u64,
    /// Shard-layer failovers during the phase.
    pub failovers: u64,
    /// Hedged requests during the phase.
    pub hedges: u64,
    /// Breaker trips during the phase.
    pub breaker_opens: u64,
    /// Panics contained by the supervisor during the phase.
    pub panics: u64,
    /// Replicas respawned from their artifact slice during the phase.
    pub respawns: u64,
}

/// Everything a caller needs from one run (the E22 artifact payload).
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Per-phase serialisable rows.
    pub rows: Vec<ShardRow>,
    /// Rendered text report.
    pub text: String,
    /// Recorded violations (empty on a passing run).
    pub violations: Vec<String>,
    /// True when the run observed no violations.
    pub passed: bool,
}

/// SplitMix64 — the dependency-free pair stream (deterministic across
/// thread interleavings because pairs are keyed by query index alone).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `id`-th query pair of a salted stream: two distinct nodes.
fn pair_for(n: usize, salt: u64, id: u64) -> (u32, u32) {
    let a = splitmix(salt ^ id.wrapping_mul(0x0123_4567_89AB_CDEF)) % n as u64;
    let mut b = splitmix(salt ^ id.wrapping_mul(0xFEDC_BA98_7654_3210) ^ 0x22) % (n as u64 - 1);
    if b >= a {
        b += 1;
    }
    (a as u32, b as u32)
}

/// Outcomes of one driven phase, in query-index order.
struct PhaseOutcome {
    answers: Vec<Result<RouteResponse, RouteError>>,
    latency_us: Vec<u64>,
}

impl PhaseOutcome {
    fn percentile_us(&self, p: f64) -> f64 {
        if self.latency_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latency_us.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[rank] as f64
    }

    fn max_us(&self) -> f64 {
        self.latency_us.iter().copied().max().unwrap_or(0) as f64
    }
}

/// One loader thread's answers: `(query index, route outcome, latency µs)`.
type ThreadAnswers = Vec<(usize, Result<RouteResponse, RouteError>, u64)>;

/// Drive `queries` route calls from `threads` loader threads. Thread 0
/// fires `mid_action` (the chaos) a quarter of the way through its
/// slice, so the fault always lands mid-load.
fn drive(
    fleet: &ShardedOracle,
    n: usize,
    salt: u64,
    base_id: u64,
    queries: usize,
    threads: usize,
    mid_action: Option<&(dyn Fn() + Sync)>,
) -> PhaseOutcome {
    let threads = threads.max(1);
    let per_thread: Vec<ThreadAnswers> = std::thread::scope(|scope| {
        // The intermediate collect is load-bearing: spawning every
        // handle before the first join is what makes the loaders run
        // concurrently instead of one after another.
        #[allow(clippy::needless_collect)]
        {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let my_items = (t..queries).step_by(threads).count();
                        for (done, i) in (t..queries).step_by(threads).enumerate() {
                            if t == 0 && done == my_items / 4 {
                                if let Some(action) = mid_action {
                                    action();
                                }
                            }
                            let id = base_id + i as u64;
                            let (u, v) = pair_for(n, salt, id);
                            let started = Instant::now();
                            let answer = fleet.route(u, v, id);
                            let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                            out.push((i, answer, us));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loader thread panicked")) // xtask: allow(no_panic) — runner: a panic escaping the fleet is itself the violation
                .collect()
        }
    });
    let mut answers: Vec<Option<Result<RouteResponse, RouteError>>> = vec![None; queries];
    let mut latency_us = vec![0u64; queries];
    for (i, answer, us) in per_thread.into_iter().flatten() {
        latency_us[i] = us;
        answers[i] = Some(answer);
    }
    PhaseOutcome {
        answers: answers
            .into_iter()
            .map(|a| a.unwrap_or(Err(RouteError::Unavailable)))
            .collect(),
        latency_us,
    }
}

/// Check one served path: endpoints match the pair, every edge lies in
/// the spanner, and detour rungs keep α ≤ 3.
fn validate_path(
    h: &Graph,
    u: u32,
    v: u32,
    resp: &RouteResponse,
    phase: &str,
    i: usize,
    violations: &mut Vec<String>,
) {
    let nodes = resp.path.nodes();
    let forward = nodes.first() == Some(&u) && nodes.last() == Some(&v);
    let backward = nodes.first() == Some(&v) && nodes.last() == Some(&u);
    if !(forward || backward) {
        violations.push(format!(
            "{phase}: pair {i} path endpoints {:?}..{:?} do not match ({u}, {v})",
            nodes.first(),
            nodes.last()
        ));
        return;
    }
    for w in nodes.windows(2) {
        if !h.has_edge(w[0], w[1]) {
            violations.push(format!(
                "{phase}: pair {i} uses edge ({}, {}) outside the spanner",
                w[0], w[1]
            ));
            return;
        }
    }
    if resp.kind.is_detour() && resp.path.len() > 3 {
        violations.push(format!(
            "{phase}: pair {i} detour rung {} served {} hops (α ≤ 3 violated)",
            resp.kind.as_str(),
            resp.path.len()
        ));
    }
}

fn delta(before: &ShardLayerStats, after: &ShardLayerStats) -> ShardLayerStats {
    ShardLayerStats {
        retries: after.retries - before.retries,
        failovers: after.failovers - before.failovers,
        hedges: after.hedges - before.hedges,
        deadline_exceeded: after.deadline_exceeded - before.deadline_exceeded,
        unavailable: after.unavailable - before.unavailable,
        injected_errors: after.injected_errors - before.injected_errors,
        breaker_opens: after.breaker_opens - before.breaker_opens,
        panics: after.panics - before.panics,
        respawns: after.respawns - before.respawns,
    }
}

fn row_from(phase: &str, out: &PhaseOutcome, stats: ShardLayerStats) -> ShardRow {
    let queries = out.answers.len() as u64;
    let mut ok = 0u64;
    let mut unavailable = 0u64;
    let mut deadline = 0u64;
    let mut other = 0u64;
    for a in &out.answers {
        match a {
            Ok(_) => ok += 1,
            Err(RouteError::Unavailable) => unavailable += 1,
            Err(RouteError::DeadlineExceeded) => deadline += 1,
            Err(_) => other += 1,
        }
    }
    ShardRow {
        phase: phase.to_string(),
        queries,
        ok,
        unavailable,
        deadline_exceeded: deadline,
        other_rejected: other,
        availability: if queries == 0 {
            0.0
        } else {
            (queries - unavailable - deadline) as f64 / queries as f64
        },
        p50_us: out.percentile_us(0.50),
        p99_us: out.percentile_us(0.99),
        max_us: out.max_us(),
        retries: stats.retries,
        failovers: stats.failovers,
        hedges: stats.hedges,
        breaker_opens: stats.breaker_opens,
        panics: stats.panics,
        respawns: stats.respawns,
    }
}

/// Run the four-phase shard chaos schedule against a fresh `n`-node
/// fleet. An empty violation list is the pass condition.
pub fn run(n: usize, config: &ShardChaosConfig) -> RunOutput {
    let g = random_regular(n, 8, config.seed);
    let artifact = Oracle::build_artifact(&g, SpannerAlgo::Theorem2WithProb(0.5), config.seed);
    let h = artifact.spanner.clone();
    let oracle_config = OracleConfig {
        seed: config.seed,
        ..OracleConfig::default()
    };
    let shard_config = ShardConfig {
        shards: config.shards.max(1),
        replicas: config.replicas.max(1),
        ..ShardConfig::default()
    };
    let fleet = ShardedOracle::from_artifact(artifact, oracle_config, shard_config)
        .expect("freshly built artifact is well-formed"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
    let queries = config.queries_per_phase.max(config.threads.max(1) * 8);
    let victim = 0usize;
    let panic_shard = 1 % config.shards.max(1);
    let mut violations = Vec::new();
    let mut rows = Vec::new();
    let started = Instant::now();

    // Phase 1 — healthy baseline.
    let before = fleet.shard_stats();
    let healthy = drive(&fleet, n, config.seed, 0, queries, config.threads, None);
    for (i, answer) in healthy.answers.iter().enumerate() {
        let (u, v) = pair_for(n, config.seed, i as u64);
        match answer {
            Ok(resp) => validate_path(&h, u, v, resp, "healthy", i, &mut violations),
            // Deterministic rejections (partitioned pairs) are definitive
            // answers; only shard faults indict a fully healthy fleet.
            Err(e) if e.is_shard_fault() => violations.push(format!(
                "healthy: pair {i} failed with {e} on a fully healthy fleet"
            )),
            Err(_) => {}
        }
    }
    rows.push(row_from(
        "healthy",
        &healthy,
        delta(&before, &fleet.shard_stats()),
    ));
    let healthy_p99 = healthy.percentile_us(0.99);

    // Phase 2 — one replica of the victim shard dies mid-load.
    let before = fleet.shard_stats();
    let kill_one = || fleet.injector().kill(victim, 0);
    let replica_down = drive(
        &fleet,
        n,
        config.seed ^ 0x2202,
        1_000_000,
        queries,
        config.threads,
        Some(&kill_one),
    );
    for (i, answer) in replica_down.answers.iter().enumerate() {
        let (u, v) = pair_for(n, config.seed ^ 0x2202, 1_000_000 + i as u64);
        if let Ok(resp) = answer {
            validate_path(&h, u, v, resp, "replica-down", i, &mut violations);
        }
    }
    let row = row_from(
        "replica-down",
        &replica_down,
        delta(&before, &fleet.shard_stats()),
    );
    if row.availability < 0.999 {
        violations.push(format!(
            "replica-down: availability {:.5} < 0.999 with a live sibling",
            row.availability
        ));
    }
    let p99_cap = 3.0 * healthy_p99.max(P99_FLOOR_US);
    if row.p99_us > p99_cap {
        violations.push(format!(
            "replica-down: p99 {:.0}µs exceeds 3× healthy baseline (cap {:.0}µs)",
            row.p99_us, p99_cap
        ));
    }
    rows.push(row);

    // Phase 3 — the whole victim shard dies; a healthy-shard replica
    // panics once and must be contained.
    for r in 0..config.replicas {
        fleet.injector().kill(victim, r);
    }
    if config.shards > 1 {
        fleet.injector().arm_panics(panic_shard, 0, 1);
    }
    let before = fleet.shard_stats();
    // The armed panic is contained by the supervisor; silence the
    // default hook so the contained panic does not spray a backtrace.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let shard_down = drive(
        &fleet,
        n,
        config.seed ^ 0x2203,
        2_000_000,
        queries,
        config.threads,
        None,
    );
    std::panic::set_hook(hook);
    for (i, answer) in shard_down.answers.iter().enumerate() {
        let (u, v) = pair_for(n, config.seed ^ 0x2203, 2_000_000 + i as u64);
        let owner = fleet.owner_shard(u, v);
        match answer {
            Ok(resp) => {
                if owner == victim {
                    violations.push(format!(
                        "shard-down: pair {i} owned by dead shard {victim} was served"
                    ));
                }
                validate_path(&h, u, v, resp, "shard-down", i, &mut violations);
            }
            Err(RouteError::Unavailable) if owner == victim => {}
            Err(e) if owner != victim && !e.is_shard_fault() => {}
            Err(e) => violations.push(format!(
                "shard-down: pair {i} (owner {owner}) failed with {e} instead of serving, \
                 a deterministic rejection, or the typed unavailable"
            )),
        }
    }
    let stats3 = delta(&before, &fleet.shard_stats());
    if config.shards > 1 && stats3.panics == 0 {
        violations.push("shard-down: armed panic was never triggered/contained".into());
    }

    // Batched fan-out against the dead shard: a typed partial result.
    let batch: Vec<(u32, u32)> = (0..64)
        .map(|i| pair_for(n, config.seed ^ 0x2204, i))
        .collect();
    let problem = RoutingProblem::from_pairs(batch);
    let report = fleet.substitute_routing(&problem, 3_000_000);
    let owned_by_victim = problem
        .pairs()
        .iter()
        .filter(|&&(u, v)| fleet.owner_shard(u, v) == victim)
        .count();
    if owned_by_victim > 0 && !report.is_partial() {
        violations.push("shard-down: batch over a dead shard did not report partial".into());
    }
    if report.shard_errors().iter().any(|s| s.shard != victim) {
        violations.push("shard-down: partial sections name a shard other than the victim".into());
    }
    let section_pairs: usize = report.shard_errors().iter().map(|s| s.pairs.len()).sum();
    if section_pairs != owned_by_victim {
        violations.push(format!(
            "shard-down: sections cover {section_pairs} pairs but the dead shard owns \
             {owned_by_victim}"
        ));
    }
    for (i, outcome) in report.responses().iter().enumerate() {
        let (u, v) = problem.pairs()[i];
        match outcome {
            Ok(resp) => validate_path(&h, u, v, resp, "shard-down-batch", i, &mut violations),
            Err(e) if fleet.owner_shard(u, v) == victim && *e == RouteError::Unavailable => {}
            Err(e) if fleet.owner_shard(u, v) != victim && !e.is_shard_fault() => {}
            Err(e) => violations.push(format!("shard-down-batch: pair {i} failed with {e}")),
        }
    }
    rows.push(row_from("shard-down", &shard_down, stats3));

    // Phase 4 — heal: restart kills, respawn the panicked replica,
    // replay the healthy workload; answers must match bit-for-bit.
    let before = fleet.shard_stats();
    fleet.injector().clear_all();
    let respawned = fleet.supervise();
    if config.shards > 1 && respawned == 0 {
        violations.push("heal: supervise respawned nothing after a contained panic".into());
    }
    fleet.reset_load();
    let heal = drive(&fleet, n, config.seed, 0, queries, config.threads, None);
    for (i, (was, now)) in healthy.answers.iter().zip(heal.answers.iter()).enumerate() {
        match (was, now) {
            (Ok(a), Ok(b)) => {
                if a.path.nodes() != b.path.nodes() || a.kind != b.kind {
                    violations.push(format!(
                        "heal: pair {i} answer diverged from the healthy baseline \
                         ({} vs {})",
                        a.kind.as_str(),
                        b.kind.as_str()
                    ));
                }
            }
            // A deterministic rejection must reproduce exactly.
            (Err(a), Err(b)) if a == b => {}
            (_, Err(e)) => violations.push(format!(
                "heal: pair {i} rejected with {e} where the baseline answered differently"
            )),
            (Err(e), Ok(_)) => violations.push(format!(
                "heal: pair {i} served where the baseline rejected with {e}"
            )),
        }
    }
    let row = row_from("heal", &heal, delta(&before, &fleet.shard_stats()));
    if row.availability < 1.0 {
        violations.push(format!(
            "heal: availability {:.5} < 1.0 after full recovery",
            row.availability
        ));
    }
    rows.push(row);

    let alive = fleet.health().iter().filter(|r| r.alive).count();
    let expected_alive = config.shards * config.replicas;
    if alive != expected_alive {
        violations.push(format!(
            "heal: {alive}/{expected_alive} replicas alive after recovery"
        ));
    }

    let mut t = Table::new([
        "phase", "queries", "ok", "unavail", "deadline", "avail%", "p50 µs", "p99 µs", "max µs",
        "retries", "failover", "panics", "respawn",
    ]);
    for r in &rows {
        t.add_row([
            r.phase.clone(),
            r.queries.to_string(),
            r.ok.to_string(),
            r.unavailable.to_string(),
            r.deadline_exceeded.to_string(),
            format!("{:.3}", 100.0 * r.availability),
            f2(r.p50_us),
            f2(r.p99_us),
            f2(r.max_us),
            r.retries.to_string(),
            r.failovers.to_string(),
            r.panics.to_string(),
            r.respawns.to_string(),
        ]);
    }
    let passed = violations.is_empty();
    let text = format!(
        "{}{}\nn = {n}, K = {} shards × R = {} replicas, {} queries/phase, {} ms — {}\n\
         Contract: a dead replica costs < 0.1% availability and ≤ 3× p99; a dead shard \
         degrades to typed partial results naming the victim; heal-then-route is \
         bit-identical to the healthy baseline.\n",
        crate::banner(
            "E22",
            "sharded serving robustness: replica/shard outages and partial results"
        ),
        t.render(),
        config.shards,
        config.replicas,
        queries,
        started.elapsed().as_millis(),
        if passed { "PASS" } else { "FAIL" },
    );
    RunOutput {
        rows,
        text,
        violations,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shard_chaos_run_passes() {
        let cfg = ShardChaosConfig {
            shards: 2,
            replicas: 2,
            threads: 2,
            queries_per_phase: 120,
            seed: 22,
        };
        let out = run(160, &cfg);
        assert!(out.passed, "violations: {:#?}", out.violations);
        assert_eq!(out.rows.len(), 4);
        assert!(out.text.contains("E22"));
        assert!(out.text.contains("PASS"));
        assert_eq!(out.rows[0].phase, "healthy");
        assert_eq!(out.rows[0].availability, 1.0);
        // The replica kill forces failovers, not failures.
        assert!(out.rows[1].availability >= 0.999);
        assert!(out.rows[1].failovers > 0);
        // The dead shard's keys are typed unavailable, the rest served.
        assert!(out.rows[2].unavailable > 0);
        assert!(out.rows[2].ok > 0);
        assert_eq!(out.rows[2].panics, 1);
        // Recovery is total.
        assert_eq!(out.rows[3].availability, 1.0);
        assert!(out.rows[3].respawns >= 1);
    }
}
