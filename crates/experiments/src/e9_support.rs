//! **E9 — Figures 3–4**: the supportedness structure behind Algorithm 1.
//!
//! Measures, on Δ-regular graphs in the Theorem 3 regime:
//!
//! * the distribution of extension support (common-neighbour counts) —
//!   Figure 3's a-supported extensions,
//! * the fraction of edges that are `(a, b)`-supported as `a` scales —
//!   Figure 4's supported vs unsupported edges,
//! * the number of 3-detours surviving sampling at rate `1/√Δ` — the
//!   quantity Lemma 15 bounds.

use crate::summary::mean_std;
use crate::table::{f2, f3, Table};
use crate::workloads;
use dcspan_core::support::{
    extension_support_profile, supported_edge_mask, surviving_three_detours,
};
use dcspan_graph::sample::sample_subgraph;

/// One measured row (one graph, one support-strength level `a`).
#[derive(Clone, Debug, serde::Serialize)]
pub struct E9Row {
    /// Nodes.
    pub n: usize,
    /// Degree.
    pub delta: usize,
    /// Support strength `a` tested.
    pub a: usize,
    /// Support breadth `b` tested (`Δ/4` as in calibrated Algorithm 1).
    pub b: usize,
    /// Fraction of edges `(a, b)`-supported.
    pub supported_fraction: f64,
    /// Mean extension support (common-neighbour count) across sampled edges.
    pub mean_extension_support: f64,
    /// Mean 3-detours surviving sampling at `ρ = 1/√Δ`.
    pub surviving_detours_mean: f64,
    /// Min 3-detours surviving (0 ⇒ a reinsertion would be forced).
    pub surviving_detours_min: f64,
}

/// Run over sizes; for each size, sweep `a ∈ {1, ln n, 2 ln n}`.
pub fn run(sizes: &[usize], seed: u64) -> (Vec<E9Row>, String) {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 211);
        let delta = workloads::theorem3_degree(n);
        let g = workloads::regime_expander(n, delta, seed);
        let b = (delta / 4).max(1);
        let rho = 1.0 / (delta as f64).sqrt();
        let g_prime = sample_subgraph(&g, rho, seed ^ 1);

        let lnn = workloads::lnn(n);
        for a in [1usize, lnn.ceil() as usize, (2.0 * lnn).ceil() as usize] {
            let mask = supported_edge_mask(&g, a, b);
            let supported_fraction = mask.iter().filter(|&&s| s).count() as f64 / mask.len() as f64;

            let step = (g.m() / 32).max(1);
            let mut ext_means = Vec::new();
            let mut survivors = Vec::new();
            for e in g.edges().iter().step_by(step).take(32) {
                let profile = extension_support_profile(&g, e.u, e.v);
                if !profile.is_empty() {
                    ext_means.push(profile.iter().sum::<usize>() as f64 / profile.len() as f64);
                }
                survivors.push(
                    (surviving_three_detours(&g, &g_prime, e.u, e.v)
                        + surviving_three_detours(&g, &g_prime, e.v, e.u))
                        as f64,
                );
            }
            let sd = mean_std(&survivors);
            rows.push(E9Row {
                n,
                delta,
                a,
                b,
                supported_fraction,
                mean_extension_support: mean_std(&ext_means).mean,
                surviving_detours_mean: sd.mean,
                surviving_detours_min: sd.min,
            });
        }
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "a",
        "b",
        "frac supported",
        "mean ext-support",
        "3-detours surv (mean)",
        "3-detours surv (min)",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.a.to_string(),
            r.b.to_string(),
            f3(r.supported_fraction),
            f2(r.mean_extension_support),
            f2(r.surviving_detours_mean),
            f2(r.surviving_detours_min),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: supported edges own a·b candidate 3-detours (Fig. 3–4); after \
         sampling at 1/√Δ enough survive whp (Lemma 15) so reinsertion stays rare.\n",
        crate::banner("E9", "Figures 3–4 (supportedness structure)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_fraction_monotone_in_a() {
        let (rows, text) = run(&[96], 5);
        // Rows for the same n sweep a upward: fractions must not increase.
        assert_eq!(rows.len(), 3);
        assert!(rows[0].supported_fraction >= rows[1].supported_fraction);
        assert!(rows[1].supported_fraction >= rows[2].supported_fraction);
        // At a = 1 a dense regular expander should be mostly supported.
        assert!(
            rows[0].supported_fraction > 0.9,
            "frac = {}",
            rows[0].supported_fraction
        );
        assert!(text.contains("E9"));
    }

    #[test]
    fn detours_survive_sampling() {
        let (rows, _) = run(&[128], 7);
        // In the Theorem 3 regime (Δ = n^{2/3} = 26 at n = 128) the mean
        // number of surviving 3-detours should be comfortably positive.
        assert!(
            rows[0].surviving_detours_mean >= 1.0,
            "mean = {}",
            rows[0].surviving_detours_mean
        );
    }
}
