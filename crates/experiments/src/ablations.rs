//! **A1–A3 — design-choice ablations** for the constructions' moving
//! parts (see DESIGN.md's experiment index).
//!
//! * **A1** — Algorithm 1 without edge reinsertion: how often does the
//!   3-distance property break, and what does reinsertion cost in edges?
//! * **A2** — replacement-path selection policy: uniform-over-all vs
//!   uniform-shortest vs deterministic-first; effect on matching
//!   congestion (the paper's randomisation is what keeps β small).
//! * **A3** — Misra–Gries (`d_k+1` colours) vs greedy (`2d_k−1`) edge
//!   colouring inside Algorithm 2: effect on the matching count and the
//!   measured congestion.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::eval::distance_stretch_edges;
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_routing::decompose::{substitute_routing_decomposed, ColoringAlgo};
use dcspan_routing::replace::{route_matching, DetourPolicy, SpannerDetourRouter};

/// A1: reinsertion on/off.
#[derive(Clone, Debug, serde::Serialize)]
pub struct A1Row {
    /// Variant name.
    pub variant: &'static str,
    /// Spanner edges.
    pub edges: usize,
    /// Max edge stretch (9.0 flag = some edge unreachable within radius).
    pub alpha: f64,
    /// Edges of G with no ≤3-hop substitute in H.
    pub broken_edges: usize,
}

/// Run A1 on one graph.
pub fn run_a1(n: usize, seed: u64) -> (Vec<A1Row>, String) {
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, seed);
    let params = RegularSpannerParams::calibrated(n, delta);
    let mut rows = Vec::new();

    // Full Algorithm 1.
    let full = build_regular_spanner(&g, params, seed ^ 1);
    // No reinsertion: E' only.
    let sampled_only = full.sampled.clone();
    // No safe mode.
    let mut p2 = params;
    p2.safe_reinsert = false;
    let no_safe = build_regular_spanner(&g, p2, seed ^ 1);

    for (variant, h) in [
        ("full (E' ∪ E'' ∪ safe)", &full.h),
        ("no safe mode (E' ∪ E'')", &no_safe.h),
        ("sample only (E')", &sampled_only),
    ] {
        let rep = distance_stretch_edges(&g, h, 3);
        rows.push(A1Row {
            variant,
            edges: h.m(),
            alpha: rep.max_stretch,
            broken_edges: rep.overflow_pairs,
        });
    }
    let mut t = Table::new([
        "variant",
        "|E(H)|",
        "α(≤3 measured)",
        "edges w/o ≤3-hop substitute",
    ]);
    for r in &rows {
        t.add_row([
            r.variant.to_string(),
            r.edges.to_string(),
            f2(r.alpha),
            r.broken_edges.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nReinsertion is what repairs the sampled graph's broken edges; safe mode \
         covers the (rare) supported edges whose detours all failed to survive.\n",
        crate::banner("A1", "ablation: Algorithm 1 reinsertion"),
        t.render()
    );
    (rows, text)
}

/// A2: detour selection policy.
#[derive(Clone, Debug, serde::Serialize)]
pub struct A2Row {
    /// Policy name.
    pub policy: &'static str,
    /// Matching congestion under this policy.
    pub congestion: u32,
    /// Max substitute path length.
    pub max_len: usize,
}

/// Run A2 on one graph.
pub fn run_a2(n: usize, seed: u64) -> (Vec<A2Row>, String) {
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, seed);
    let h = dcspan_graph::sample::sample_subgraph(&g, 1.0 / (delta as f64).sqrt(), seed ^ 1);
    let matching = workloads::removed_edge_matching(&g, &h);
    let mut rows = Vec::new();
    for (name, policy) in [
        ("uniform over ≤3-hop", DetourPolicy::UniformUpTo3),
        ("uniform shortest", DetourPolicy::UniformShortest),
        ("first found (no randomness)", DetourPolicy::FirstFound),
    ] {
        let router = SpannerDetourRouter::new(&h, policy);
        let routing = route_matching(&router, &matching, seed ^ 2).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        rows.push(A2Row {
            policy: name,
            congestion: routing.congestion(n),
            max_len: routing.max_length(),
        });
    }
    let mut t = Table::new(["policy", "matching congestion", "max path len"]);
    for r in &rows {
        t.add_row([
            r.policy.to_string(),
            r.congestion.to_string(),
            r.max_len.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nThe paper's uniform random choice among detours is the congestion-control \
         mechanism; deterministic selection concentrates load.\n",
        crate::banner("A2", "ablation: replacement-path selection"),
        t.render()
    );
    (rows, text)
}

/// A3: colouring algorithm inside Algorithm 2.
#[derive(Clone, Debug, serde::Serialize)]
pub struct A3Row {
    /// Colouring name.
    pub coloring: &'static str,
    /// Total matchings produced.
    pub matchings: usize,
    /// Substitute congestion.
    pub congestion: u32,
    /// Σ(d_k+1) instrumentation.
    pub sum_dk1: usize,
}

/// Run A3 on one graph.
pub fn run_a3(n: usize, pairs: usize, seed: u64) -> (Vec<A3Row>, String) {
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, seed);
    let h = dcspan_graph::sample::sample_subgraph(&g, 0.6, seed ^ 1);
    let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformUpTo3);
    let (_, base) = workloads::pairs_base_routing(&g, pairs, seed ^ 2);
    let mut rows = Vec::new();
    for (name, algo) in [
        ("Misra–Gries (d+1)", ColoringAlgo::MisraGries),
        ("greedy (2d−1)", ColoringAlgo::Greedy),
    ] {
        let rep =
            substitute_routing_decomposed(n, &base, &router, algo, seed ^ 3).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        rows.push(A3Row {
            coloring: name,
            matchings: rep.num_matchings,
            congestion: rep.routing.congestion(n),
            sum_dk1: rep.sum_dk_plus_one,
        });
    }
    let mut t = Table::new(["colouring", "matchings", "C(P')", "Σ(d_k+1)"]);
    for r in &rows {
        t.add_row([
            r.coloring.to_string(),
            r.matchings.to_string(),
            r.congestion.to_string(),
            r.sum_dk1.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nMisra–Gries realises the m_k ≤ d_k+1 bound Lemma 22's constant relies on; \
         greedy at most doubles the matching count.\n",
        crate::banner("A3", "ablation: edge colouring in Algorithm 2"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_reinsertion_repairs_brokenness() {
        let (rows, _) = run_a1(80, 3);
        let full = &rows[0];
        let sample_only = &rows[2];
        assert_eq!(full.broken_edges, 0, "full Algorithm 1 must be a 3-spanner");
        assert!(full.edges >= sample_only.edges);
        // Pure sampling at 1/√Δ typically breaks at least one edge at this
        // scale; if not, the assertion on ordering above still holds.
    }

    #[test]
    fn a2_randomisation_helps_or_ties() {
        let (rows, _) = run_a2(96, 5);
        let uniform = rows[0].congestion;
        let first = rows[2].congestion;
        assert!(
            uniform <= first,
            "uniform {uniform} worse than deterministic {first}"
        );
        for r in &rows {
            assert!(
                r.max_len <= 3 || r.max_len <= 8,
                "policy {} len {}",
                r.policy,
                r.max_len
            );
        }
    }

    #[test]
    fn a3_colorings_respect_their_matching_bounds() {
        let (rows, _) = run_a3(64, 50, 7);
        // Misra–Gries guarantees m_k ≤ d_k + 1 per level (Lemma 22's
        // constant); greedy guarantees m_k ≤ 2d_k − 1. Greedy can still
        // beat d_k + 1 on sparse levels, so the two totals are not
        // ordered — each is only held to its own bound.
        let mg = &rows[0];
        let greedy = &rows[1];
        assert!(
            mg.matchings <= mg.sum_dk1,
            "MG {} > Σ(d_k+1) {}",
            mg.matchings,
            mg.sum_dk1
        );
        assert!(greedy.matchings <= 2 * greedy.sum_dk1);
        assert_eq!(mg.sum_dk1, greedy.sum_dk1); // instrumentation identical
    }
}
