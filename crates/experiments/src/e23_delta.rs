//! **E23 — incremental maintenance**: the delta path
//! (`apply_delta_to_artifact`) against a from-scratch rebuild.
//!
//! The build-once/update-forever contract: applying an edge-mutation
//! batch to a persisted artifact recomputes only the batch's blast
//! radius, yet the result is **bit-identical** to building the mutated
//! graph from scratch — same support mask, same detour rows, same
//! encoded bytes. This experiment measures the differential for batches
//! at ≤1% of the edge set: wall-time speedup, how much of the support
//! mask was spliced instead of recomputed, and the row splice ratio —
//! and verifies the v2 `DELTA` round trip (save base + log, replay at
//! open, compact back to the direct build's bytes) plus exact reversal
//! (re-inserting the removed edges restores the base artifact).

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::serve::SpannerAlgo;
use dcspan_graph::delta::{apply_mutations, EdgeMutation};
use dcspan_graph::Graph;
use dcspan_oracle::{apply_delta_to_artifact, Oracle, OracleConfig};
use dcspan_routing::RoutingProblem;
use dcspan_store::{SpannerArtifact, StoreError};
use std::time::Instant;

/// One measured row: delta-vs-rebuild for a single `(n, batch)` cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct DeltaBenchRow {
    /// Nodes.
    pub n: usize,
    /// Degree Δ (Theorem 3 regime, `n^{2/3}`).
    pub delta: usize,
    /// Edges of `G`.
    pub m: usize,
    /// Mutations in the batch (edge removals).
    pub batch: usize,
    /// Batch size as a percentage of `m`.
    pub batch_pct: f64,
    /// Wall time to apply the batch incrementally, ms.
    pub delta_ms: f64,
    /// Wall time for the from-scratch rebuild it replaces, ms.
    pub rebuild_ms: f64,
    /// `rebuild_ms / delta_ms` — the incremental-maintenance speedup.
    pub speedup: f64,
    /// Support-mask entries recomputed (inside the blast radius).
    pub mask_recomputed: usize,
    /// Support-mask entries spliced from the old artifact bit-for-bit.
    pub mask_spliced: usize,
    /// Detour rows rebuilt (inside the blast radius).
    pub rows_rebuilt: usize,
    /// Detour rows copied verbatim from the old artifact.
    pub rows_copied: usize,
    /// Whether the patched artifact encodes byte-identically to a direct
    /// build of the mutated graph.
    pub artifact_identical: bool,
    /// Whether a query stream replays answer-for-answer identically
    /// through the patched and the rebuilt oracle.
    pub served_identical: bool,
    /// Whether the v2 `DELTA` round trip holds: saving base + log and
    /// reopening replays to the patched state, and compacting it yields
    /// the direct build's bytes.
    pub roundtrip_ok: bool,
    /// Whether re-inserting the removed batch restores the base artifact
    /// byte-for-byte (delta application is exactly reversible).
    pub revert_identical: bool,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// A batch of `k` spread-out edge removals that provably preserves the
/// graph's maximum degree: edges incident to a small reserved node set
/// are never touched, so those nodes keep full degree Δ while removals
/// only lower degrees elsewhere.
fn removal_batch(g: &Graph, k: usize, reserved: u32) -> Vec<EdgeMutation> {
    let edges = g.edges();
    let eligible: Vec<_> = edges
        .iter()
        .filter(|e| e.u >= reserved && e.v >= reserved)
        .collect();
    let k = k.min(eligible.len());
    let step = (eligible.len() / k.max(1)).max(1);
    eligible
        .iter()
        .step_by(step)
        .take(k)
        .map(|e| EdgeMutation::Remove(e.u, e.v))
        .collect()
}

/// Replay `problem` sequentially through both oracles with identical
/// query ids and compare every outcome exactly.
fn replay_identical(a: &Oracle, b: &Oracle, problem: &RoutingProblem) -> bool {
    problem
        .pairs()
        .iter()
        .enumerate()
        .all(|(q, &(u, v))| a.route(u, v, q as u64) == b.route(u, v, q as u64))
}

/// Run the incremental-maintenance sweep: for each `n` (Theorem 3
/// regime) build a base artifact, then for each batch fraction apply a
/// degree-preserving removal batch both incrementally and from scratch,
/// compare the artifacts byte-for-byte, replay `queries` random-pair
/// queries through both serving paths, and round-trip the base + log
/// representation through a scratch v2 file.
///
/// Uses one scratch file under the system temp dir per cell; the file is
/// removed before returning. Fails with the first [`StoreError`] the
/// round trip hits.
pub fn run(
    sizes: &[usize],
    fracs: &[f64],
    queries: usize,
    seed: u64,
) -> Result<(Vec<DeltaBenchRow>, String), StoreError> {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 1000);
        let delta = workloads::theorem3_degree(n);
        let g = workloads::regime_expander(n, delta, seed);
        let config = OracleConfig {
            seed,
            ..OracleConfig::default()
        };
        let base = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, seed);
        let base_bytes = base.encode_v2()?;
        let problem = RoutingProblem::random_pairs(g.n(), queries, seed ^ 0xE23);

        // At smoke scale several fractions of m round to the same batch
        // size; duplicate cells measure nothing new, so keep one each.
        let mut ks: Vec<usize> = fracs
            .iter()
            .map(|&frac| ((g.m() as f64 * frac).round() as usize).max(1))
            .collect();
        ks.dedup();
        for k in ks {
            let batch = removal_batch(&g, k, 16.min(n as u32 / 4));
            let store_err = |e: dcspan_oracle::DeltaError| StoreError::Malformed(e.to_string());

            let t0 = Instant::now();
            let (patched, report) = apply_delta_to_artifact(&base, &batch).map_err(store_err)?;
            let delta_ms = ms(t0);

            let (g_new, _) =
                apply_mutations(&g, &batch).map_err(|e| StoreError::Malformed(e.to_string()))?;
            let t0 = Instant::now();
            let direct = Oracle::build_artifact(&g_new, SpannerAlgo::Theorem3, seed);
            let rebuild_ms = ms(t0);

            let direct_bytes = direct.encode_v2()?;
            let patched_bytes = patched.encode_v2()?;
            let artifact_identical = patched_bytes == direct_bytes;

            let served = Oracle::from_artifact(patched.clone(), config)?;
            let rebuilt = Oracle::from_artifact(direct, config)?;
            let served_identical = replay_identical(&rebuilt, &served, &problem);

            // Round trip the base + increments representation: reopening
            // must replay to the patched state, and folding the log must
            // reproduce the direct build's bytes exactly.
            let path = std::env::temp_dir().join(format!(
                "dcspan-e23-{}-{n}-{}-{seed}.bin",
                std::process::id(),
                batch.len(),
            ));
            let roundtrip = (|| -> Result<bool, StoreError> {
                dcspan_store::save_v2_delta(&base, &patched, &batch, &path)?;
                let replayed = SpannerArtifact::load(&path)?;
                Ok(replayed == patched && replayed.encode_v2()? == direct_bytes)
            })();
            let _ = std::fs::remove_file(&path);
            let roundtrip_ok = roundtrip?;

            // Exact reversal: re-inserting the removed edges must land
            // back on the base artifact byte-for-byte.
            let revert: Vec<EdgeMutation> = batch
                .iter()
                .map(|m| {
                    let (u, v) = m.endpoints();
                    EdgeMutation::Insert(u, v)
                })
                .collect();
            let (reverted, _) = apply_delta_to_artifact(&patched, &revert).map_err(store_err)?;
            let revert_identical = reverted.encode_v2()? == base_bytes;

            rows.push(DeltaBenchRow {
                n,
                delta,
                m: g.m(),
                batch: batch.len(),
                batch_pct: batch.len() as f64 * 100.0 / g.m() as f64,
                delta_ms,
                rebuild_ms,
                speedup: rebuild_ms / delta_ms.max(1e-9),
                mask_recomputed: report.mask_recomputed,
                mask_spliced: report.mask_spliced,
                rows_rebuilt: report.rows_rebuilt,
                rows_copied: report.rows_copied,
                artifact_identical,
                served_identical,
                roundtrip_ok,
                revert_identical,
            });
        }
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "m",
        "batch",
        "%m",
        "delta ms",
        "rebuild ms",
        "speedup",
        "mask splice",
        "rows copied",
        "identical",
        "roundtrip",
        "reverts",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.m.to_string(),
            r.batch.to_string(),
            f2(r.batch_pct),
            f2(r.delta_ms),
            f2(r.rebuild_ms),
            f2(r.speedup),
            format!("{}/{}", r.mask_spliced, r.mask_spliced + r.mask_recomputed),
            format!("{}/{}", r.rows_copied, r.rows_copied + r.rows_rebuilt),
            (r.artifact_identical && r.served_identical).to_string(),
            r.roundtrip_ok.to_string(),
            r.revert_identical.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nDelta contract: an incremental apply is byte-identical to a \
         from-scratch rebuild of the mutated graph (same support mask, \
         detour rows, and encoded artifact), the v2 DELTA section replays \
         to the same state and compacts to the direct build's bytes, and \
         re-inserting the batch restores the base artifact exactly. The \
         speedup column is the incremental-maintenance win for small \
         batches.\n",
        crate::banner("E23", "incremental maintenance: delta apply vs rebuild"),
        t.render(),
    );
    Ok((rows, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_bit_identical_and_reversible() {
        let (rows, text) = run(&[64, 96], &[0.01], 200, 9).expect("delta sweep");
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.batch >= 1);
            assert!(
                r.artifact_identical,
                "n={}: delta diverged from rebuild",
                r.n
            );
            assert!(r.served_identical, "n={}: delta serving diverged", r.n);
            assert!(r.roundtrip_ok, "n={}: DELTA round trip failed", r.n);
            assert!(r.revert_identical, "n={}: revert did not restore base", r.n);
            assert!(r.speedup > 0.0);
            assert!(r.rows_copied + r.rows_rebuilt > 0 || r.mask_spliced > 0);
        }
        assert!(text.contains("E23"));
        assert!(text.contains("speedup"));
    }
}
