//! **E15 — the Related-Work trade-off**: general f-VFT spanners vs the
//! DC-spanner.
//!
//! Section 1.1 of the paper argues: an f-VFT 3-spanner of size matching
//! the DC-spanner's `O(n^{5/3})` needs `f ≤ n^{1/3}` (by \[22\]'s
//! `Õ(f^{1−1/k} n^{1+1/k})` optimal size), *and* fault tolerance still
//! says nothing about congestion. This experiment builds union f-VFT
//! 3-spanners for growing `f`, verifies them by fault injection, tracks
//! their size against `n^{5/3}`, and measures their matching congestion
//! next to the Theorem 2 DC-spanner's.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::expander::{
    build_expander_spanner, ExpanderMatchingRouter, ExpanderSpannerParams,
};
use dcspan_core::fault::{verify_vft, vft_union_spanner, VftParams};
use dcspan_routing::replace::{route_matching, DetourPolicy, SpannerDetourRouter};

/// One measured row: one fault budget.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E15Row {
    /// Nodes.
    pub n: usize,
    /// Fault budget f (`None` row label "DC" uses usize::MAX sentinel 0
    /// avoided — DC row carries f = 0 with `is_dc = true`).
    pub f: usize,
    /// Whether this row is the DC-spanner reference.
    pub is_dc: bool,
    /// Spanner edges.
    pub edges: usize,
    /// `edges / n^{5/3}` — the size comparison the paper makes.
    pub edges_vs_n53: f64,
    /// Fault-injection violations (0 = passed; DC row is not fault-checked).
    pub fault_violations: usize,
    /// Matching-routing congestion on the intact spanner.
    pub matching_congestion: u32,
}

/// Run for one graph size and a sweep of fault budgets.
pub fn run(n: usize, fs: &[usize], seed: u64) -> (Vec<E15Row>, String) {
    let delta = workloads::theorem2_degree(n, 0.15);
    let g = workloads::regime_expander(n, delta, seed);
    let n53 = (n as f64).powf(5.0 / 3.0);
    let mut rows = Vec::new();

    // Reference: the Theorem 2 DC-spanner.
    let dc = build_expander_spanner(&g, ExpanderSpannerParams::paper(n, delta), seed ^ 1);
    let dc_router = ExpanderMatchingRouter::new(&g, &dc.h);
    let matching = workloads::removed_edge_matching(&g, &dc.h);
    let dc_routing = route_matching(&dc_router, &matching, seed ^ 2).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
    rows.push(E15Row {
        n,
        f: 0,
        is_dc: true,
        edges: dc.h.m(),
        edges_vs_n53: dc.h.m() as f64 / n53,
        fault_violations: 0,
        matching_congestion: dc_routing.congestion(n),
    });

    for (i, &f) in fs.iter().enumerate() {
        let params = VftParams::standard(n, f, 2);
        let h = vft_union_spanner(&g, params, seed.wrapping_add(i as u64 + 3));
        let report = verify_vft(&g, &h, f, 2, 8, 8, seed ^ 4);
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformShortest);
        let m2 = workloads::removed_edge_matching(&g, &h);
        let routing = route_matching(&router, &m2, seed ^ 5).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        rows.push(E15Row {
            n,
            f,
            is_dc: false,
            edges: h.m(),
            edges_vs_n53: h.m() as f64 / n53,
            fault_violations: report.violations,
            matching_congestion: routing.congestion(n),
        });
    }

    let mut t = Table::new([
        "spanner",
        "f",
        "|E(H)|",
        "E(H)/n^5/3",
        "fault viol.",
        "C_match",
    ]);
    for r in &rows {
        t.add_row([
            if r.is_dc {
                "Theorem 2 DC".to_string()
            } else {
                "f-VFT union".to_string()
            },
            r.f.to_string(),
            r.edges.to_string(),
            f2(r.edges_vs_n53),
            r.fault_violations.to_string(),
            r.matching_congestion.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nPaper §1.1: matching the DC-spanner's O(n^5/3) size bounds the tolerable \
         f at ≈ n^1/3 — and fault tolerance alone does not keep the congestion small.\n",
        crate::banner("E15", "Related Work trade-off: f-VFT spanners vs DC"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vft_size_grows_and_passes_fault_checks() {
        let (rows, text) = run(96, &[1, 2], 11);
        assert_eq!(rows.len(), 3);
        let dc = &rows[0];
        assert!(dc.is_dc);
        // VFT spanners pass their own fault-injection verification.
        for r in &rows[1..] {
            assert_eq!(r.fault_violations, 0, "f={}", r.f);
        }
        // Size grows with f.
        assert!(rows[2].edges >= rows[1].edges);
        assert!(text.contains("E15"));
    }
}
