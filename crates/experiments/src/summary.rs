//! Multi-seed aggregation helpers.

/// Mean and population standard deviation of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

/// Aggregate a sample; panics on an empty slice.
pub fn mean_std(values: &[f64]) -> MeanStd {
    assert!(!values.is_empty(), "cannot summarise an empty sample");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    MeanStd {
        mean,
        std: var.sqrt(),
        min,
        max,
    }
}

impl MeanStd {
    /// Render as `mean ± std`.
    pub fn pm(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = mean_std(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn single_value() {
        let s = mean_std(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert!(s.pm().starts_with("5.00"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = mean_std(&[]);
    }
}
