//! **E16 — empirical scaling exponents**: least-squares fits of
//! `log |E(H)|` against `log n` for the constructions with polynomial size
//! laws. The paper predicts exponent `5/3 ≈ 1.667` for Theorems 2 and 3
//! (up to polylog) and `7/6 ≈ 1.167` for the Theorem 4 optimal spanner.

use crate::table::{f3, Table};
use crate::workloads;
use dcspan_core::expander::{build_expander_spanner, ExpanderSpannerParams};
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_gen::lower_bound::LowerBoundGraph;

/// Ordinary least squares slope and intercept of `y` on `x`.
pub fn ols(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "need at least two points to fit");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// One fitted scaling law.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E16Row {
    /// Construction name.
    pub construction: &'static str,
    /// Fitted exponent (slope of log–log).
    pub exponent: f64,
    /// Paper's predicted exponent.
    pub predicted: f64,
    /// Sizes used in the fit.
    pub sizes: Vec<usize>,
}

/// Run the exponent fits.
pub fn run(sizes: &[usize], seed: u64) -> (Vec<E16Row>, String) {
    assert!(sizes.len() >= 2);
    let mut rows = Vec::new();
    let logs: Vec<f64> = sizes.iter().map(|&n| (n as f64).ln()).collect();

    // Theorem 2.
    let ys: Vec<f64> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let delta = workloads::theorem2_degree(n, 0.15);
            let g = workloads::regime_expander(n, delta, seed.wrapping_add(i as u64));
            let sp = build_expander_spanner(&g, ExpanderSpannerParams::paper(n, delta), seed ^ 1);
            (sp.h.m() as f64).ln()
        })
        .collect();
    let (slope, _) = ols(&logs, &ys);
    rows.push(E16Row {
        construction: "Theorem 2 |E(H)|",
        exponent: slope,
        predicted: 5.0 / 3.0,
        sizes: sizes.to_vec(),
    });

    // Theorem 3 (Algorithm 1, calibrated).
    let ys: Vec<f64> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let delta = workloads::theorem3_degree(n);
            let g = workloads::regime_expander(n, delta, seed.wrapping_add(100 + i as u64));
            let sp =
                build_regular_spanner(&g, RegularSpannerParams::calibrated(n, delta), seed ^ 2);
            (sp.h.m() as f64).ln()
        })
        .collect();
    let (slope, _) = ols(&logs, &ys);
    rows.push(E16Row {
        construction: "Theorem 3 |E(H)|",
        exponent: slope,
        predicted: 5.0 / 3.0,
        sizes: sizes.to_vec(),
    });

    // Theorem 4 optimal spanner. The paper couples the fan height to the
    // node count (`2k+1 = q = Θ(n^{1/6})`), which at the graph level means
    // `blocks = Θ(q⁴)` (then `n = 2·blocks·q² = Θ(q⁶)` and
    // `|E(H)| = blocks·q³ = Θ(n^{7/6})`). Sweeping q alone at fixed blocks
    // would instead give exponent 3/2 — the coupling is the claim.
    let qs: &[usize] = &[3, 5, 7];
    let mut lx = Vec::new();
    let mut ly = Vec::new();
    for &q in qs {
        let blocks = 2 * q * q * q * q; // c·q⁴ with c = 2
        let lb = LowerBoundGraph::new(q, blocks);
        let h = lb.optimal_spanner();
        lx.push((lb.graph.n() as f64).ln());
        ly.push((h.m() as f64).ln());
    }
    let (slope, _) = ols(&lx, &ly);
    rows.push(E16Row {
        construction: "Theorem 4 optimal |E(H)| (coupled q-sweep)",
        exponent: slope,
        predicted: 7.0 / 6.0,
        sizes: qs.to_vec(),
    });

    let mut t = Table::new(["construction", "fitted exponent", "paper"]);
    for r in &rows {
        t.add_row([r.construction.to_string(), f3(r.exponent), f3(r.predicted)]);
    }
    let text = format!(
        "{}{}\nLog–log least-squares fits of spanner size vs n. Paper: Θ(n^5/3·polylog) \
         for Theorems 2–3, Θ(n^7/6) for the Theorem 4 optimal spanner.\n",
        crate::banner("E16", "empirical scaling exponents"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_recovers_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let (m, b) = ols(&x, &y);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponents_match_paper_predictions() {
        let (rows, text) = run(&[96, 128, 192, 256], 5);
        for r in &rows {
            assert!(
                (r.exponent - r.predicted).abs() < 0.25,
                "{}: fitted {} vs predicted {}",
                r.construction,
                r.exponent,
                r.predicted
            );
        }
        assert!(text.contains("E16"));
    }
}
