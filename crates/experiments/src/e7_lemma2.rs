//! **E7 — Lemma 2**: distance stretch + congestion stretch do **not**
//! compose into the DC-spanner property.
//!
//! On the Lemma 2 gadget, the spanner `H` (all matching edges removed
//! except `(a_1, b_1)`) is simultaneously a 3-distance spanner and a
//! 2-congestion spanner — yet for the matching routing problem
//! `R = {(a_i, b_i)}` (congestion 1 in `G`), every short substitute
//! routing in `H` funnels through the surviving matching edge, giving
//! congestion `Θ(n)`.

use crate::table::{f2, Table};
use dcspan_gen::lemma2::Lemma2Graph;
use dcspan_routing::problem::RoutingProblem;
use dcspan_routing::replace::{route_matching, DetourPolicy, SpannerDetourRouter};
use dcspan_routing::routing::Routing;

/// One measured row of the Lemma 2 experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E7Row {
    /// Matched pairs n.
    pub pairs: usize,
    /// Total nodes |V(G)|.
    pub nodes: usize,
    /// Max distance stretch of H over edges of G (claim: ≤ 3).
    pub alpha: f64,
    /// Adversarial matching congestion in H via ≤3-hop substitute routing
    /// (claim: Θ(n); base congestion is 1).
    pub beta_adversarial: u32,
    /// The same pairs routed by shortest paths in H (allowed to take the
    /// long detours): congestion stays O(1) but paths are long.
    pub congestion_long_detours: u32,
    /// Max length of those long-detour paths.
    pub long_detour_len: usize,
    /// The paper's threshold `|V(G)| / (2(α−1))` that β must exceed.
    pub threshold: f64,
}

/// Run over pair counts (α fixed to 3 as in the paper's 3-distance case).
pub fn run(pair_counts: &[usize]) -> (Vec<E7Row>, String) {
    let alpha_param = 3usize;
    let mut rows = Vec::new();
    for &pairs in pair_counts {
        let gadget = Lemma2Graph::new(pairs, alpha_param);
        let h = gadget.spanner_h();
        let problem = RoutingProblem::from_pairs(gadget.matching_routing_pairs());

        let dist = dcspan_core::eval::distance_stretch_edges(&gadget.graph, &h, 4);
        let alpha = dist
            .max_stretch
            .max(if dist.overflow_pairs > 0 { 9.0 } else { 0.0 });

        // Substitute with ≤3-hop detours (the DC-spanner's obligation when
        // α = 3): everything must cross (a_1, b_1).
        let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformUpTo3);
        let sub = route_matching(&router, &problem, 1).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let beta_adversarial = sub.congestion(gadget.graph.n());

        // If paths may be long (use the private (α+1)-length detours),
        // congestion is fine — showing the tension is specifically between
        // *simultaneous* α and β. Pair 0 keeps its direct edge.
        let mut detour_paths = vec![dcspan_graph::Path::new(vec![gadget.a(0), gadget.b(0)])];
        for i in 1..pairs {
            detour_paths.push(dcspan_graph::Path::new(gadget.detour_nodes(i)));
        }
        let long = Routing::new(detour_paths);
        assert!(long.is_valid_for(&problem, &h));
        let congestion_long_detours = long.congestion(gadget.graph.n());
        let long_detour_len = long.max_length();

        rows.push(E7Row {
            pairs,
            nodes: gadget.graph.n(),
            alpha,
            beta_adversarial,
            congestion_long_detours,
            long_detour_len,
            threshold: gadget.graph.n() as f64 / (2.0 * (alpha_param as f64 - 1.0)),
        });
    }
    let mut t = Table::new([
        "pairs",
        "|V|",
        "α(max)",
        "β_adv(≤3-hop)",
        "C(long detours)",
        "len(long)",
        "|V|/2(α−1)",
    ]);
    for r in &rows {
        t.add_row([
            r.pairs.to_string(),
            r.nodes.to_string(),
            f2(r.alpha),
            r.beta_adversarial.to_string(),
            r.congestion_long_detours.to_string(),
            r.long_detour_len.to_string(),
            f2(r.threshold),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: H is a 3-distance AND 2-congestion spanner, yet any (3, β)-substitute \
         of the matching routing needs β ≥ n — α and β cannot be satisfied simultaneously.\n",
        crate::banner("E7", "Lemma 2 (DC ≠ distance + congestion separately)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_holds() {
        let (rows, text) = run(&[8, 16]);
        for r in &rows {
            assert!(r.alpha <= 3.0, "pairs={}: α = {}", r.pairs, r.alpha);
            // Short substitutes funnel through (a_1, b_1): congestion ≈ n.
            assert!(
                (r.beta_adversarial as usize) >= r.pairs,
                "pairs={}: β = {}",
                r.pairs,
                r.beta_adversarial
            );
            // Long-detour routing avoids the funnel entirely…
            assert!(r.congestion_long_detours <= 3);
            // …but pays with path length α+… ≥ 3 (the detour path length).
            assert!(r.long_detour_len >= 3);
        }
        // β grows linearly in n: the DC property fails asymptotically.
        assert!(rows[1].beta_adversarial >= 2 * rows[0].beta_adversarial - 2);
        assert!(text.contains("Lemma 2"));
    }
}
