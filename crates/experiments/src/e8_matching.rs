//! **E8 — Figure 2 / Lemmas 4–5**: neighbourhood matchings.
//!
//! For every edge `{u, v}` of a Δ-regular expander, Lemma 4 guarantees a
//! matching of size `Δ(1 − λn/Δ²)` between `N(u)` and `N(v)`; Lemma 5 says
//! its surviving part after sampling is `≥ n^{2/3}(1 − o(1))` whp. We
//! measure both across a sample of edges.

use crate::summary::mean_std;
use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::expander::{
    build_expander_spanner, neighborhood_matching_stats, ExpanderSpannerParams,
};
use dcspan_spectral::expansion::spectral_expansion;
use dcspan_spectral::mixing::lemma4_matching_bound;

/// One measured row of the neighbourhood-matching experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E8Row {
    /// Nodes.
    pub n: usize,
    /// Degree.
    pub delta: usize,
    /// Measured λ.
    pub lambda: f64,
    /// Lemma 4's bound `Δ(1 − λn/Δ²)` (clamped at 0).
    pub lemma4_bound: f64,
    /// Min measured matching size `|M_{u,v}|` over sampled edges.
    pub matching_min: f64,
    /// Mean measured matching size.
    pub matching_mean: f64,
    /// Mean surviving matched middles `|M^S|` after sampling.
    pub surviving_mean: f64,
    /// Mean usable full 3-hop paths.
    pub usable_mean: f64,
    /// Sampling survival probability used.
    pub sample_prob: f64,
}

/// Run over sizes in the dense Theorem 2 regime.
pub fn run(sizes: &[usize], epsilon: f64, edges_sampled: usize, seed: u64) -> (Vec<E8Row>, String) {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 53);
        let delta = workloads::theorem2_degree(n, epsilon);
        let g = workloads::regime_expander(n, delta, seed);
        let lambda = spectral_expansion(&g, seed).lambda;
        let params = ExpanderSpannerParams::paper(n, delta);
        let sp = build_expander_spanner(&g, params, seed ^ 1);

        let step = (g.m() / edges_sampled).max(1);
        let mut sizes_v = Vec::new();
        let mut surv = Vec::new();
        let mut usable = Vec::new();
        for e in g.edges().iter().step_by(step).take(edges_sampled) {
            let st = neighborhood_matching_stats(&g, &sp.h, e.u, e.v);
            sizes_v.push(st.matching_size as f64);
            surv.push(st.surviving_middle as f64);
            usable.push(st.usable_paths as f64);
        }
        let m = mean_std(&sizes_v);
        rows.push(E8Row {
            n,
            delta,
            lambda,
            lemma4_bound: lemma4_matching_bound(n, delta, lambda),
            matching_min: m.min,
            matching_mean: m.mean,
            surviving_mean: mean_std(&surv).mean,
            usable_mean: mean_std(&usable).mean,
            sample_prob: params.sample_prob,
        });
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "λ",
        "Lem4 bound",
        "|M| min",
        "|M| mean",
        "|M^S| mean",
        "usable mean",
        "p",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            f2(r.lambda),
            f2(r.lemma4_bound),
            f2(r.matching_min),
            f2(r.matching_mean),
            f2(r.surviving_mean),
            f2(r.usable_mean),
            f2(r.sample_prob),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: |M_{{u,v}}| ≥ Δ(1−λn/Δ²) (Lemma 4); after sampling |M^S| ≈ p·|M| \
         stays Θ(n^2/3) (Lemma 5), guaranteeing many usable replacement paths.\n",
        crate::banner("E8", "Figure 2 / Lemmas 4–5 (neighbourhood matchings)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma4_bound_met_and_survival_proportional() {
        let (rows, text) = run(&[96, 128], 0.2, 24, 3);
        for r in &rows {
            assert!(
                r.matching_min >= r.lemma4_bound - 1e-9,
                "n={}: min |M| = {} < bound {}",
                r.n,
                r.matching_min,
                r.lemma4_bound
            );
            // Survival should be ≈ p·|M| (generous band: sampling noise).
            let expected = r.sample_prob * r.matching_mean;
            assert!(
                (r.surviving_mean - expected).abs() <= 0.5 * expected.max(2.0),
                "n={}: |M^S| = {} vs p|M| = {}",
                r.n,
                r.surviving_mean,
                expected
            );
            // Usable paths require two more sampled hops: ≈ p²·|M^S|; just
            // require a non-trivial amount.
            assert!(r.usable_mean >= 1.0, "n={}: no usable paths at all", r.n);
        }
        assert!(text.contains("Lemma"));
    }
}
