//! **E2 — Table 1, row "\[5\]"**: bounded-degree expander extraction from a
//! dense one (Becchetti et al.) + Valiant routing.
//!
//! Paper claims (for Δ = Ω(n) regular expanders): `O(n)` edges, distance
//! stretch `O(log n)`, congestion stretch `O(log³ n)`.

use crate::table::{f2, f3, Table};
use crate::workloads;
use dcspan_core::becchetti::random_d_out_subgraph;
use dcspan_core::eval::{distance_stretch_sampled, general_substitute_congestion};
use dcspan_routing::replace::route_matching;
use dcspan_routing::valiant::ValiantEdgeRouter;
use dcspan_spectral::expansion::normalized_expansion;

/// One measured row of the \[5\] experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E2Row {
    /// Nodes.
    pub n: usize,
    /// Host degree (dense regime Δ = n/2).
    pub delta: usize,
    /// `|E(H)| / n` — paper: O(1).
    pub edges_per_node: f64,
    /// Normalised expansion λ̂ of the extracted subgraph (≪ 1 = expander).
    pub lambda_hat: f64,
    /// Max sampled distance stretch (paper: O(log n)).
    pub alpha: f64,
    /// Matching congestion via Valiant routing (paper: O(log² n) node).
    pub matching_congestion: u32,
    /// General congestion stretch (paper: O(log³ n)).
    pub general_beta: f64,
    /// `log₂ n` reference.
    pub log2: f64,
}

/// Run over the given sizes (hosts are Δ = n/2 dense expanders).
pub fn run(sizes: &[usize], d_out: usize, seed: u64) -> (Vec<E2Row>, String) {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 31);
        let delta = workloads::even(n / 2);
        let g = workloads::regime_expander(n, delta, seed);
        let h = random_d_out_subgraph(&g, d_out, seed ^ 1);
        let router = ValiantEdgeRouter::new(&h);

        let lambda_hat = normalized_expansion(&h, seed ^ 2);
        let dist = distance_stretch_sampled(&g, &h, 200, seed ^ 3);
        let matching = workloads::removed_edge_matching(&g, &h);
        let routing = route_matching(&router, &matching, seed ^ 4).expect("matching routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let matching_congestion = routing.congestion(n);
        let (_, base) = workloads::permutation_base_routing(&g, seed ^ 5);
        let general = general_substitute_congestion(n, &base, &router, seed ^ 6)
            .expect("general routing substitutable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable

        rows.push(E2Row {
            n,
            delta,
            edges_per_node: h.m() as f64 / n as f64,
            lambda_hat,
            alpha: dist.max_stretch,
            matching_congestion,
            general_beta: general.beta(),
            log2: workloads::log2n(n),
        });
    }
    let mut t = Table::new([
        "n",
        "Δ_host",
        "|E(H)|/n",
        "λ̂(H)",
        "α(sampled)",
        "C_match",
        "β_general",
        "log n",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            f2(r.edges_per_node),
            f3(r.lambda_hat),
            f2(r.alpha),
            r.matching_congestion.to_string(),
            f2(r.general_beta),
            f2(r.log2),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: O(n) edges, α = O(log n), β = O(log³ n) on Δ = Ω(n) expanders.\n",
        crate::banner(
            "E2",
            "Table 1 row '[5]' (bounded-degree expander extraction)"
        ),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_matches_paper_shape() {
        let (rows, text) = run(&[64, 128], 4, 5);
        for r in &rows {
            assert!(
                r.edges_per_node <= 4.0 + 0.5,
                "n={}: {} edges/node",
                r.n,
                r.edges_per_node
            );
            assert!(r.lambda_hat < 0.95, "n={}: λ̂ = {}", r.n, r.lambda_hat);
            assert!(r.alpha <= 3.0 * r.log2, "n={}: α = {}", r.n, r.alpha);
            assert!(
                (r.matching_congestion as f64) <= 3.0 * r.log2.powi(2),
                "n={}: C = {}",
                r.n,
                r.matching_congestion
            );
            assert!(
                r.general_beta <= 4.0 * r.log2.powi(3),
                "n={}: β = {}",
                r.n,
                r.general_beta
            );
        }
        assert!(text.contains("[5]"));
    }
}
