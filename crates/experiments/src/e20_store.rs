//! **E20 — artifact store**: build-once/serve-forever economics of the
//! versioned spanner artifact (`dcspan-store`).
//!
//! The paper's object is built once (Theorems 2–3) and then *stands in*
//! for `G` at query time (Definition 3). This experiment measures the
//! split: build a Theorem 3 oracle, persist it as a checksummed binary
//! artifact, then compare the cold-start paths — `save → verify → load →
//! Oracle::from_artifact` against a full `Oracle::from_algo` rebuild —
//! and replay an identical query stream through both oracles to check
//! that loaded-artifact serving is answer-for-answer identical to
//! in-process construction.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::serve::SpannerAlgo;
use dcspan_oracle::{Oracle, OracleConfig};
use dcspan_routing::RoutingProblem;
use dcspan_store::{SpannerArtifact, StoreError};
use std::time::Instant;

/// One measured row: the store-vs-rebuild ledger for a single `n`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct StoreBenchRow {
    /// Nodes.
    pub n: usize,
    /// Degree Δ (Theorem 3 regime, `n^{2/3}`).
    pub delta: usize,
    /// Edges of `G`.
    pub m: usize,
    /// Edges of `G` missing from `H` (indexed universe).
    pub missing_edges: usize,
    /// Encoded artifact size on disk, bytes.
    pub artifact_bytes: usize,
    /// Wall time to build the artifact (spanner + index + pack), ms.
    pub build_ms: f64,
    /// Wall time to encode + write the artifact, ms.
    pub save_ms: f64,
    /// Wall time for `verify_file` (header + every section checksum), ms.
    pub verify_ms: f64,
    /// Wall time to read + decode the artifact, ms.
    pub load_ms: f64,
    /// Wall time for `Oracle::from_artifact` (validate + assemble), ms.
    pub restore_ms: f64,
    /// Wall time for the `Oracle::from_algo` rebuild it replaces, ms.
    pub rebuild_ms: f64,
    /// `rebuild_ms / (load_ms + restore_ms)` — the cold-start speedup of
    /// serving from the artifact instead of rebuilding.
    pub load_speedup: f64,
    /// Queries replayed through both oracles.
    pub queries: usize,
    /// Whether every replayed response (including rejections) was
    /// identical between the rebuilt and the loaded oracle.
    pub bit_identical: bool,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Replay `problem` sequentially through both oracles with identical
/// query ids and compare every outcome exactly.
fn replay_identical(a: &Oracle, b: &Oracle, problem: &RoutingProblem) -> bool {
    problem
        .pairs()
        .iter()
        .enumerate()
        .all(|(q, &(u, v))| a.route(u, v, q as u64) == b.route(u, v, q as u64))
}

/// Run the store sweep: for each `n` (Theorem 3 regime) build an
/// artifact, time the persistence round trip against a rebuild, and
/// replay `queries` random-pair queries through both serving paths.
///
/// Uses one scratch file under the system temp dir per cell; the file is
/// removed before returning. Fails with the first [`StoreError`] the
/// round trip hits (an IO failure or — never expected — corruption).
pub fn run(
    sizes: &[usize],
    queries: usize,
    seed: u64,
) -> Result<(Vec<StoreBenchRow>, String), StoreError> {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 1000);
        let delta = workloads::theorem3_degree(n);
        let g = workloads::regime_expander(n, delta, seed);
        // The config seed must equal the artifact's build seed: `from_algo`
        // rebuilds the spanner from `config.seed`, so any other choice
        // compares two different spanners instead of two serving paths.
        let config = OracleConfig {
            seed,
            ..OracleConfig::default()
        };

        let t0 = Instant::now();
        let artifact = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, seed);
        let build_ms = ms(t0);
        let missing_edges = artifact.missing.len();

        let path =
            std::env::temp_dir().join(format!("dcspan-e20-{}-{n}-{seed}.bin", std::process::id()));
        let result = (|| -> Result<StoreBenchRow, StoreError> {
            let t0 = Instant::now();
            artifact.save(&path)?;
            let save_ms = ms(t0);
            let artifact_bytes = std::fs::metadata(&path)?.len() as usize;

            let t0 = Instant::now();
            dcspan_store::verify_file(&path)?;
            let verify_ms = ms(t0);

            let t0 = Instant::now();
            let loaded = SpannerArtifact::load(&path)?;
            let load_ms = ms(t0);

            let t0 = Instant::now();
            let served = Oracle::from_artifact(loaded, config)?;
            let restore_ms = ms(t0);

            let t0 = Instant::now();
            let rebuilt = Oracle::from_algo(&g, SpannerAlgo::Theorem3, config);
            let rebuild_ms = ms(t0);

            let problem = RoutingProblem::random_pairs(g.n(), queries, seed ^ 0x51013E);
            let bit_identical = replay_identical(&rebuilt, &served, &problem);

            Ok(StoreBenchRow {
                n,
                delta,
                m: g.m(),
                missing_edges,
                artifact_bytes,
                build_ms,
                save_ms,
                verify_ms,
                load_ms,
                restore_ms,
                rebuild_ms,
                load_speedup: rebuild_ms / (load_ms + restore_ms).max(1e-9),
                queries,
                bit_identical,
            })
        })();
        let _ = std::fs::remove_file(&path);
        rows.push(result?);
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "m",
        "missing",
        "bytes",
        "build ms",
        "save ms",
        "verify ms",
        "load ms",
        "restore ms",
        "rebuild ms",
        "speedup",
        "identical",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.m.to_string(),
            r.missing_edges.to_string(),
            r.artifact_bytes.to_string(),
            f2(r.build_ms),
            f2(r.save_ms),
            f2(r.verify_ms),
            f2(r.load_ms),
            f2(r.restore_ms),
            f2(r.rebuild_ms),
            f2(r.load_speedup),
            r.bit_identical.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nStore contract: loaded-artifact serving is answer-for-answer \
         identical to a same-seed in-process rebuild, and the cold-start \
         path (load + restore) amortises the whole spanner+index build.\n",
        crate::banner("E20", "artifact store: build once, serve forever"),
        t.render()
    );
    Ok((rows, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_round_trips_bit_identically() {
        let (rows, text) = run(&[64, 96], 300, 7).expect("round trip");
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.bit_identical, "n={}: loaded serving diverged", r.n);
            assert!(r.artifact_bytes > 0);
            assert!(r.queries == 300);
            assert!(r.load_speedup > 0.0);
        }
        assert!(text.contains("E20"));
        assert!(text.contains("identical"));
    }
}
