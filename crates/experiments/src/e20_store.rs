//! **E20 — artifact store**: build-once/serve-forever economics of the
//! versioned spanner artifact (`dcspan-store`).
//!
//! The paper's object is built once (Theorems 2–3) and then *stands in*
//! for `G` at query time (Definition 3). This experiment measures the
//! split: build a Theorem 3 oracle, persist it as a checksummed binary
//! artifact, then compare the cold-start paths — `save → verify → load →
//! Oracle::from_artifact` against a full `Oracle::from_algo` rebuild —
//! and replay an identical query stream through both oracles to check
//! that loaded-artifact serving is answer-for-answer identical to
//! in-process construction.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::serve::SpannerAlgo;
use dcspan_oracle::{Oracle, OracleConfig, ReorderKind};
use dcspan_routing::RoutingProblem;
use dcspan_store::{MappedArtifact, SpannerArtifact, StoreError};
use std::time::Instant;

/// One measured row: the store-vs-rebuild ledger for a single `n`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct StoreBenchRow {
    /// Nodes.
    pub n: usize,
    /// Degree Δ (Theorem 3 regime, `n^{2/3}`).
    pub delta: usize,
    /// Edges of `G`.
    pub m: usize,
    /// Edges of `G` missing from `H` (indexed universe).
    pub missing_edges: usize,
    /// Encoded artifact size on disk, bytes.
    pub artifact_bytes: usize,
    /// Wall time to build the artifact (spanner + index + pack), ms.
    pub build_ms: f64,
    /// Wall time to encode + write the artifact, ms.
    pub save_ms: f64,
    /// Wall time for `verify_file` (header + every section checksum), ms.
    pub verify_ms: f64,
    /// Wall time to read + decode the artifact, ms.
    pub load_ms: f64,
    /// Wall time for `Oracle::from_artifact` (validate + assemble), ms.
    pub restore_ms: f64,
    /// Wall time for the `Oracle::from_algo` rebuild it replaces, ms.
    pub rebuild_ms: f64,
    /// `rebuild_ms / (load_ms + restore_ms)` — the cold-start speedup of
    /// serving from the artifact instead of rebuilding.
    pub load_speedup: f64,
    /// Queries replayed through both oracles.
    pub queries: usize,
    /// Whether every replayed response (including rejections) was
    /// identical between the rebuilt and the loaded oracle.
    pub bit_identical: bool,
    /// Wall time to encode + write the v2 (aligned, mmap-served)
    /// artifact, ms.
    pub v2_save_ms: f64,
    /// Encoded v2 artifact size on disk, bytes (64-byte section padding
    /// included).
    pub v2_bytes: usize,
    /// Wall time for the full v2 cold start — `MappedArtifact::open`
    /// (map + checksum verify) plus `Oracle::from_mapped` (borrowed-view
    /// assembly), ms. The v2 counterpart of `load_ms + restore_ms`.
    pub v2_open_ms: f64,
    /// `(load_ms + restore_ms) / v2_open_ms` — how much faster the
    /// zero-copy open is than the v1 decode-into-owned-tables path.
    pub open_speedup: f64,
    /// Whether the mapped (borrowed-storage) oracle replayed the stream
    /// identically to the rebuilt oracle.
    pub v2_bit_identical: bool,
    /// Growth of this process's *private* RSS (resident minus
    /// file-backed shared, KiB) when a second serving copy is decoded
    /// from v1 into owned tables. `-1` when `/proc/self/statm` is
    /// unavailable.
    pub rss_second_owned_kb: i64,
    /// The same second-copy cost when the copy is a mapped v2 view:
    /// file-backed pages stay shared with the page cache (and any other
    /// replica of the same artifact), so private RSS barely moves.
    pub rss_second_mapped_kb: i64,
    /// Mean per-query route latency through the mapped oracle, µs,
    /// original node order.
    pub route_us_v2: f64,
    /// Mean per-query route latency through the RCM-reordered mapped
    /// oracle, µs (same query stream, external ids).
    pub route_us_reordered: f64,
    /// Whether the reordered oracle answered every query semantically
    /// equivalently (same outcome, kind, and hop count — paths may
    /// differ by BFS tie-break under the relabeling).
    pub reorder_ok: bool,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Replay `problem` sequentially through both oracles with identical
/// query ids and compare every outcome exactly.
fn replay_identical(a: &Oracle, b: &Oracle, problem: &RoutingProblem) -> bool {
    problem
        .pairs()
        .iter()
        .enumerate()
        .all(|(q, &(u, v))| a.route(u, v, q as u64) == b.route(u, v, q as u64))
}

/// Replay `problem` through both oracles and require *semantic*
/// equivalence per query: identical success/failure, and on success
/// identical `(kind, hops)`. This is the reordering contract — a
/// relabeled oracle may pick a different same-length path where BFS
/// tie-breaking depends on adjacency order, but never a different
/// outcome class or length.
fn replay_equivalent(a: &Oracle, b: &Oracle, problem: &RoutingProblem) -> bool {
    problem.pairs().iter().enumerate().all(|(q, &(u, v))| {
        match (a.route(u, v, q as u64), b.route(u, v, q as u64)) {
            (Ok(ra), Ok(rb)) => ra.kind == rb.kind && ra.hops() == rb.hops(),
            (Err(ea), Err(eb)) => ea == eb,
            _ => false,
        }
    })
}

/// Replay `problem` through `o` and return the mean per-query route
/// latency in µs.
fn replay_route_us(o: &Oracle, problem: &RoutingProblem, id_base: u64) -> f64 {
    let t0 = Instant::now();
    for (q, &(u, v)) in problem.pairs().iter().enumerate() {
        let _ = o.route(u, v, id_base + q as u64);
    }
    t0.elapsed().as_secs_f64() * 1e6 / problem.pairs().len().max(1) as f64
}

/// Private (non-file-backed) resident set of this process in KiB, from
/// `/proc/self/statm` (`(resident - shared) pages`, 4 KiB pages
/// assumed); `None` off Linux. File-backed mapped pages count as
/// `shared`, so a mapped artifact view is invisible here while an owned
/// decoded copy is not — exactly the "one page-cache copy, N replicas"
/// claim under test.
fn private_rss_kb() -> Option<i64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let mut fields = statm.split_whitespace();
    let resident: i64 = fields.nth(1)?.parse().ok()?;
    let shared: i64 = fields.next()?.parse().ok()?;
    Some((resident - shared) * 4)
}

/// Run `make_copy` and report how much it grew private RSS (KiB), with
/// the produced value alive at measurement time; `-1` when the metric is
/// unavailable.
fn second_copy_rss_kb<T>(
    make_copy: impl FnOnce() -> Result<T, StoreError>,
) -> Result<i64, StoreError> {
    let Some(before) = private_rss_kb() else {
        make_copy()?;
        return Ok(-1);
    };
    let copy = make_copy()?;
    let after = private_rss_kb().unwrap_or(before);
    drop(copy);
    Ok((after - before).max(0))
}

/// Run the store sweep: for each `n` (Theorem 3 regime) build an
/// artifact, time the persistence round trip against a rebuild, and
/// replay `queries` random-pair queries through both serving paths.
///
/// Uses one scratch file under the system temp dir per cell; the file is
/// removed before returning. Fails with the first [`StoreError`] the
/// round trip hits (an IO failure or — never expected — corruption).
pub fn run(
    sizes: &[usize],
    queries: usize,
    seed: u64,
) -> Result<(Vec<StoreBenchRow>, String), StoreError> {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 1000);
        let delta = workloads::theorem3_degree(n);
        let g = workloads::regime_expander(n, delta, seed);
        // The config seed must equal the artifact's build seed: `from_algo`
        // rebuilds the spanner from `config.seed`, so any other choice
        // compares two different spanners instead of two serving paths.
        let config = OracleConfig {
            seed,
            ..OracleConfig::default()
        };

        let t0 = Instant::now();
        let artifact = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, seed);
        let build_ms = ms(t0);
        let missing_edges = artifact.missing.len();

        let path =
            std::env::temp_dir().join(format!("dcspan-e20-{}-{n}-{seed}.bin", std::process::id()));
        let path_v2 = std::env::temp_dir().join(format!(
            "dcspan-e20-{}-{n}-{seed}-v2.bin",
            std::process::id()
        ));
        let path_v2r = std::env::temp_dir().join(format!(
            "dcspan-e20-{}-{n}-{seed}-v2r.bin",
            std::process::id()
        ));
        let result = (|| -> Result<StoreBenchRow, StoreError> {
            let t0 = Instant::now();
            artifact.save(&path)?;
            let save_ms = ms(t0);
            let artifact_bytes = std::fs::metadata(&path)?.len() as usize;

            let t0 = Instant::now();
            dcspan_store::verify_file(&path)?;
            let verify_ms = ms(t0);

            let t0 = Instant::now();
            let loaded = SpannerArtifact::load(&path)?;
            let load_ms = ms(t0);

            let t0 = Instant::now();
            let served = Oracle::from_artifact(loaded, config)?;
            let restore_ms = ms(t0);

            let t0 = Instant::now();
            let rebuilt = Oracle::from_algo(&g, SpannerAlgo::Theorem3, config);
            let rebuild_ms = ms(t0);

            let problem = RoutingProblem::random_pairs(g.n(), queries, seed ^ 0x51013E);
            let bit_identical = replay_identical(&rebuilt, &served, &problem);

            // v2: single-pass aligned encode, then the zero-copy cold
            // start — map + verify + borrow, no owned decode.
            let t0 = Instant::now();
            artifact.save_v2(&path_v2)?;
            let v2_save_ms = ms(t0);
            let v2_bytes = std::fs::metadata(&path_v2)?.len() as usize;

            let t0 = Instant::now();
            let view = MappedArtifact::open(&path_v2)?;
            let mapped = Oracle::from_mapped(&view, config)?;
            let v2_open_ms = ms(t0);
            // Compare against a *cold* v1-restored oracle: `rebuilt` and
            // `served` already replayed the stream once, so their answer
            // caches are warm and `cache_hit` flags would differ.
            let served_cold = Oracle::from_artifact(SpannerArtifact::load(&path)?, config)?;
            let v2_bit_identical = replay_identical(&served_cold, &mapped, &problem);

            // Marginal private-RSS cost of a *second* serving copy in
            // this address space: decoded-owned vs mapped-shared.
            let rss_second_owned_kb = second_copy_rss_kb(|| {
                Oracle::from_artifact(SpannerArtifact::load(&path)?, config)
            })?;
            let rss_second_mapped_kb = second_copy_rss_kb(|| {
                let v = MappedArtifact::open(&path_v2)?;
                Oracle::from_mapped(&v, config)
            })?;

            // Cache-locality reordering: same queries, external ids,
            // against an RCM-relabeled artifact of the same build.
            let reordered_artifact = Oracle::build_artifact_reordered(
                &g,
                SpannerAlgo::Theorem3,
                seed,
                ReorderKind::Rcm,
            )?;
            reordered_artifact.save_v2(&path_v2r)?;
            let view_r = MappedArtifact::open(&path_v2r)?;
            let reordered = Oracle::from_mapped(&view_r, config)?;
            let reorder_ok = replay_equivalent(&mapped, &reordered, &problem);
            // One warm-up pass each (page-in + cache fill), then measure.
            replay_route_us(&mapped, &problem, 1 << 32);
            replay_route_us(&reordered, &problem, 1 << 32);
            let route_us_v2 = replay_route_us(&mapped, &problem, 1 << 33);
            let route_us_reordered = replay_route_us(&reordered, &problem, 1 << 33);

            Ok(StoreBenchRow {
                n,
                delta,
                m: g.m(),
                missing_edges,
                artifact_bytes,
                build_ms,
                save_ms,
                verify_ms,
                load_ms,
                restore_ms,
                rebuild_ms,
                load_speedup: rebuild_ms / (load_ms + restore_ms).max(1e-9),
                queries,
                bit_identical,
                v2_save_ms,
                v2_bytes,
                v2_open_ms,
                open_speedup: (load_ms + restore_ms) / v2_open_ms.max(1e-9),
                v2_bit_identical,
                rss_second_owned_kb,
                rss_second_mapped_kb,
                route_us_v2,
                route_us_reordered,
                reorder_ok,
            })
        })();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path_v2);
        let _ = std::fs::remove_file(&path_v2r);
        rows.push(result?);
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "m",
        "missing",
        "bytes",
        "build ms",
        "save ms",
        "verify ms",
        "load ms",
        "restore ms",
        "rebuild ms",
        "speedup",
        "identical",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.m.to_string(),
            r.missing_edges.to_string(),
            r.artifact_bytes.to_string(),
            f2(r.build_ms),
            f2(r.save_ms),
            f2(r.verify_ms),
            f2(r.load_ms),
            f2(r.restore_ms),
            f2(r.rebuild_ms),
            f2(r.load_speedup),
            r.bit_identical.to_string(),
        ]);
    }
    let mut t2 = Table::new([
        "n",
        "v2 save ms",
        "v2 bytes",
        "v2 open ms",
        "open ×",
        "v2 ident",
        "2nd own KiB",
        "2nd map KiB",
        "route µs",
        "route µs rcm",
        "rcm equiv",
    ]);
    for r in &rows {
        t2.add_row([
            r.n.to_string(),
            f2(r.v2_save_ms),
            r.v2_bytes.to_string(),
            f2(r.v2_open_ms),
            f2(r.open_speedup),
            r.v2_bit_identical.to_string(),
            r.rss_second_owned_kb.to_string(),
            r.rss_second_mapped_kb.to_string(),
            f2(r.route_us_v2),
            f2(r.route_us_reordered),
            r.reorder_ok.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nStore contract: loaded-artifact serving is answer-for-answer \
         identical to a same-seed in-process rebuild, and the cold-start \
         path (load + restore) amortises the whole spanner+index build.\n\
         \nFormat v2 (aligned sections, zero-copy open):\n{}\n\
         v2 contract: the mapped oracle serves the identical stream \
         (`open ×` = v1 load+restore over v2 map+verify+borrow); a second \
         mapped copy costs ~0 private RSS because file-backed pages stay \
         in the shared page cache; an RCM-reordered artifact answers every \
         query semantically equivalently (same outcome, kind, hops).\n",
        crate::banner("E20", "artifact store: build once, serve forever"),
        t.render(),
        t2.render(),
    );
    Ok((rows, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_round_trips_bit_identically() {
        let (rows, text) = run(&[64, 96], 300, 7).expect("round trip");
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.bit_identical, "n={}: loaded serving diverged", r.n);
            assert!(r.artifact_bytes > 0);
            assert!(r.queries == 300);
            assert!(r.load_speedup > 0.0);
            assert!(r.v2_bit_identical, "n={}: mapped serving diverged", r.n);
            assert!(r.reorder_ok, "n={}: reordered serving not equivalent", r.n);
            assert!(r.v2_bytes > 0);
            assert!(r.v2_open_ms > 0.0 && r.open_speedup > 0.0);
            assert!(r.route_us_v2 > 0.0 && r.route_us_reordered > 0.0);
        }
        assert!(text.contains("E20"));
        assert!(text.contains("identical"));
        assert!(text.contains("v2"));
    }
}
