//! **E18 — chaos serving**: fault-injection robustness of the oracle.
//!
//! The paper's DC-spanner is a routing-around-missing-edges object
//! (Theorems 2–3); E18 measures how the *serving layer* holds up when
//! the spanner itself degrades live: seeded schedules of edge kills,
//! node crashes, heal waves, and burst overload are driven against one
//! oracle from N threads (the `dcspan-oracle` chaos harness), and every
//! answer is validated against the frozen fault set of its step. The
//! rows record which degradation-ladder rung served each phase, the
//! shed rate under overload, and the observed α on detour rungs.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::serve::SpannerAlgo;
use dcspan_oracle::chaos::{self, ChaosConfig, ChaosStepStats};
use dcspan_oracle::{Oracle, OracleConfig};
use dcspan_routing::replace::DetourPolicy;

/// One serialisable row: a chaos schedule step's merged observations.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ChaosRow {
    /// Step index in the schedule.
    pub step: usize,
    /// Schedule phase (`healthy-probe`, `light-kill`, `node-crash`,
    /// `burst-overload`, `heavy-kill`, `heal-reprobe`).
    pub phase: String,
    /// Planned edge-kill rate.
    pub edge_kill_rate: f64,
    /// Planned node-crash rate.
    pub node_kill_rate: f64,
    /// Spanner edges dead while the batch ran.
    pub failed_edges: u64,
    /// Nodes dead while the batch ran.
    pub failed_nodes: u64,
    /// Fault-overlay epoch of the step.
    pub epoch: u64,
    /// Logical queries issued.
    pub queries: u64,
    /// Served by the healthy indexed rungs (edge / 2-hop / 3-hop).
    pub indexed: u64,
    /// Served by the fault-filtered detour rung.
    pub filtered: u64,
    /// Served by fault-free BFS (uncovered edges).
    pub bfs: u64,
    /// Served by bounded BFS in the surviving spanner.
    pub degraded_bfs: u64,
    /// Rejected: verified dead endpoint.
    pub dead_endpoint: u64,
    /// Rejected: verified partition.
    pub partitioned: u64,
    /// Rejected: shed by admission control after retries.
    pub shed: u64,
    /// Rejected: per-query budget exhausted.
    pub budget_exceeded: u64,
    /// Retry attempts provoked by sheds.
    pub retries: u64,
    /// Healthy-indexed fraction of issued queries.
    pub indexed_fraction: f64,
    /// Shed fraction of issued queries.
    pub shed_rate: f64,
    /// Longest path served from a detour rung (α ≤ 3 on a passing run).
    pub max_detour_hops: u64,
    /// Longest served path on any rung.
    pub max_hops: u64,
    /// Peak committed per-node load during the step.
    pub max_node_load: u32,
    /// Mean route-attempt latency, microseconds.
    pub mean_latency_us: f64,
    /// Slowest route attempt, microseconds.
    pub max_latency_us: f64,
}

impl ChaosRow {
    fn from_step(s: &ChaosStepStats) -> ChaosRow {
        ChaosRow {
            step: s.step,
            phase: s.label.to_string(),
            edge_kill_rate: s.edge_kill_rate,
            node_kill_rate: s.node_kill_rate,
            failed_edges: s.failed_edges,
            failed_nodes: s.failed_nodes,
            epoch: s.epoch,
            queries: s.queries,
            indexed: s.spanner_edge + s.two_hop + s.three_hop,
            filtered: s.filtered_two_hop + s.filtered_three_hop,
            bfs: s.bfs,
            degraded_bfs: s.degraded_bfs,
            dead_endpoint: s.dead_endpoint,
            partitioned: s.partitioned,
            shed: s.shed,
            budget_exceeded: s.budget_exceeded,
            retries: s.retries,
            indexed_fraction: s.indexed_fraction(),
            shed_rate: s.shed_rate(),
            max_detour_hops: s.max_detour_hops,
            max_hops: s.max_hops,
            max_node_load: s.max_node_load,
            mean_latency_us: s.latency_ns_mean() as f64 / 1000.0,
            max_latency_us: s.latency_ns_max as f64 / 1000.0,
        }
    }
}

/// Build the chaos oracle for an `(n, ε)` Theorem 2 regime instance:
/// expander host, Theorem 2 spanner, β-budget admission control
/// (`c·√Δ·ln n` per-node cap), unbounded fallback depth.
pub fn chaos_oracle(n: usize, epsilon: f64, cap_c: f64, seed: u64) -> Oracle {
    let delta = workloads::theorem2_degree(n, epsilon);
    let g = workloads::regime_expander(n, delta, seed);
    let config = OracleConfig {
        policy: DetourPolicy::UniformShortest,
        seed: seed ^ 0xE18,
        ..OracleConfig::default()
    }
    .with_beta_budget(g.n(), g.max_degree(), cap_c);
    Oracle::from_algo(&g, SpannerAlgo::Theorem2, config)
}

/// Run the chaos schedule against a fresh `(n, ε)` oracle. Returns
/// `(rows, text report, violations)` — an empty violation list is the
/// pass condition.
pub fn run(n: usize, epsilon: f64, cap_c: f64, config: &ChaosConfig) -> RunOutput {
    let oracle = chaos_oracle(n, epsilon, cap_c, config.seed);
    let report = chaos::run(&oracle, config);
    let rows: Vec<ChaosRow> = report.steps.iter().map(ChaosRow::from_step).collect();
    let mut t = Table::new([
        "step",
        "phase",
        "fail_e",
        "fail_v",
        "queries",
        "indexed%",
        "filtered",
        "dbfs",
        "dead",
        "part",
        "shed",
        "α(detour)",
        "max load",
        "lat µs",
    ]);
    for r in &rows {
        t.add_row([
            r.step.to_string(),
            r.phase.clone(),
            r.failed_edges.to_string(),
            r.failed_nodes.to_string(),
            r.queries.to_string(),
            format!("{:.1}", 100.0 * r.indexed_fraction),
            r.filtered.to_string(),
            r.degraded_bfs.to_string(),
            r.dead_endpoint.to_string(),
            r.partitioned.to_string(),
            r.shed.to_string(),
            r.max_detour_hops.to_string(),
            r.max_node_load.to_string(),
            f2(r.mean_latency_us),
        ]);
    }
    let cap = oracle.config().per_node_cap.unwrap_or(0);
    let text = format!(
        "{}{}\nn = {n}, β cap = {cap}, {} queries, {} retries, {} violation(s), {} ms — {}\n\
         Contract: served paths avoid every failed element; detour rungs keep α ≤ 3; \
         rejections are typed and verified; heal-then-route is bit-identical to the \
         healthy baseline.\n",
        crate::banner(
            "E18",
            "chaos serving: failure injection and degraded-mode routing"
        ),
        t.render(),
        report.total_queries,
        report.total_retries,
        report.violation_count,
        report.wall_ms,
        if report.passed() { "PASS" } else { "FAIL" },
    );
    let passed = report.passed();
    RunOutput {
        rows,
        text,
        violations: report.violations,
        passed,
    }
}

/// Everything a caller needs from one chaos run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Per-step serialisable rows (the E18 artifact payload).
    pub rows: Vec<ChaosRow>,
    /// Rendered text report.
    pub text: String,
    /// Recorded violations (empty on a passing run).
    pub violations: Vec<String>,
    /// True when the run observed no violations.
    pub passed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_chaos_run_passes() {
        let cfg = ChaosConfig {
            threads: 2,
            queries_per_step: 80,
            light_steps: 1,
            burst_factor: 4,
            seed: 21,
            ..ChaosConfig::smoke()
        };
        let out = run(128, 0.18, 6.0, &cfg);
        assert!(out.passed, "violations: {:#?}", out.violations);
        assert_eq!(out.rows.len(), 6);
        assert!(out.text.contains("E18"));
        assert!(out.text.contains("PASS"));
        let healthy = &out.rows[0];
        assert_eq!(healthy.phase, "healthy-probe");
        assert!(healthy.indexed_fraction > 0.9);
        assert!(out.rows.iter().all(|r| r.max_detour_hops <= 3));
        // Epochs are monotone across the schedule.
        assert!(out.rows.windows(2).all(|w| w[0].epoch < w[1].epoch));
    }
}
