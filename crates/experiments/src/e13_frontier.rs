//! **E13 — the stretch-3 frontier**: all spanner algorithms on the same
//! dense regular expander, measured on size *and* congestion.
//!
//! This is the summary comparison the paper's introduction implies: pure
//! distance spanners (greedy, Baswana–Sen) achieve optimal size but say
//! nothing about congestion; the DC-spanners pay a bounded size premium
//! and keep the congestion stretch small.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::baswana_sen::baswana_sen_spanner_checked;
use dcspan_core::eval::distance_stretch_edges;
use dcspan_core::expander::{
    build_expander_spanner, ExpanderMatchingRouter, ExpanderSpannerParams,
};
use dcspan_core::greedy::greedy_spanner;
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_graph::Graph;
use dcspan_routing::replace::{route_matching, DetourPolicy, EdgeRouter, SpannerDetourRouter};

/// One algorithm's measured frontier point.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E13Row {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Spanner edges.
    pub edges: usize,
    /// Fraction of `|E(G)|` kept.
    pub kept_fraction: f64,
    /// Max distance stretch over edges.
    pub alpha: f64,
    /// Matching-routing congestion (base 1).
    pub matching_congestion: u32,
    /// Max substitute path length for the matching.
    pub matching_max_len: usize,
}

fn measure<R: EdgeRouter>(
    name: &'static str,
    g: &Graph,
    h: &Graph,
    router: &R,
    seed: u64,
) -> E13Row {
    let dist = distance_stretch_edges(g, h, 8);
    let matching = workloads::removed_edge_matching(g, h);
    let routed = route_matching(router, &matching, seed).expect("spanner connected"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
    E13Row {
        algorithm: name,
        edges: h.m(),
        kept_fraction: h.m() as f64 / g.m() as f64,
        alpha: dist
            .max_stretch
            .max(if dist.overflow_pairs > 0 { 99.0 } else { 0.0 }),
        matching_congestion: routed.congestion(g.n()),
        matching_max_len: routed.max_length(),
    }
}

/// Run the frontier comparison on one dense regular expander.
pub fn run(n: usize, seed: u64) -> (Vec<E13Row>, String) {
    let delta = workloads::theorem2_degree(n, 0.15);
    let g = workloads::regime_expander(n, delta, seed);
    let mut rows = Vec::new();

    // Theorem 2 expander DC-spanner.
    let sp2 = build_expander_spanner(&g, ExpanderSpannerParams::paper(n, delta), seed ^ 1);
    let router2 = ExpanderMatchingRouter::new(&g, &sp2.h);
    rows.push(measure(
        "Theorem 2 (expander DC)",
        &g,
        &sp2.h,
        &router2,
        seed ^ 2,
    ));

    // Algorithm 1 DC-spanner.
    let params = RegularSpannerParams::calibrated(n, delta);
    let sp1 = build_regular_spanner(&g, params, seed ^ 3);
    let router1 = SpannerDetourRouter::new(&sp1.h, DetourPolicy::UniformUpTo3);
    rows.push(measure(
        "Theorem 3 (Algorithm 1)",
        &g,
        &sp1.h,
        &router1,
        seed ^ 4,
    ));

    // Baswana–Sen 3-spanner (distance only).
    if let Some((bs, _)) = baswana_sen_spanner_checked(&g, 2, seed ^ 5, 30) {
        let router = SpannerDetourRouter::new(&bs, DetourPolicy::UniformUpTo3);
        rows.push(measure("Baswana–Sen k=2", &g, &bs, &router, seed ^ 6));
    }

    // Greedy 3-spanner (optimal size, distance only).
    let gr = greedy_spanner(&g, 3);
    let router = SpannerDetourRouter::new(&gr, DetourPolicy::UniformUpTo3);
    rows.push(measure("greedy t=3", &g, &gr, &router, seed ^ 7));

    let mut t = Table::new([
        "algorithm",
        "|E(H)|",
        "kept",
        "α(max)",
        "C_match",
        "max len",
    ]);
    for r in &rows {
        t.add_row([
            r.algorithm.to_string(),
            r.edges.to_string(),
            f2(r.kept_fraction),
            f2(r.alpha),
            r.matching_congestion.to_string(),
            r.matching_max_len.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nAll algorithms achieve α = 3; the sparse pure-distance spanners \
         (Baswana–Sen, greedy) concentrate replacement paths on few nodes, while the \
         DC-spanners spend a bounded edge premium to keep the matching congestion near 1.\n",
        crate::banner("E13", "the stretch-3 size/congestion frontier"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_spanners_beat_distance_spanners_on_congestion() {
        let (rows, text) = run(128, 7);
        assert!(rows.len() >= 3);
        let thm2 = rows
            .iter()
            .find(|r| r.algorithm.starts_with("Theorem 2"))
            .unwrap();
        let greedy = rows
            .iter()
            .find(|r| r.algorithm.starts_with("greedy"))
            .unwrap();
        // All are genuine 3-spanners.
        for r in &rows {
            assert!(r.alpha <= 3.0, "{}: α = {}", r.algorithm, r.alpha);
            assert!(r.matching_max_len <= 3, "{}", r.algorithm);
        }
        // The greedy spanner is much sparser…
        assert!(greedy.edges < thm2.edges);
        // …but pays in congestion: the DC-spanner should be clearly better.
        assert!(
            greedy.matching_congestion > thm2.matching_congestion,
            "greedy C = {} vs DC C = {}",
            greedy.matching_congestion,
            thm2.matching_congestion
        );
        assert!(text.contains("frontier"));
    }
}
