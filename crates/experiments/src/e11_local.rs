//! **E11 — Corollary 3 / Section 7**: the distributed LOCAL-model
//! Algorithm 1.
//!
//! Measures: round count (must be the constant 5), per-round message
//! volume, endpoint agreement, and bit-equality with the sequential
//! construction.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::regular::{build_regular_spanner_pair_sampled, RegularSpannerParams};
use dcspan_local::distributed_regular_spanner;

/// One measured row of the distributed experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E11Row {
    /// Nodes.
    pub n: usize,
    /// Degree.
    pub delta: usize,
    /// Rounds executed (paper: O(1); here exactly 5).
    pub rounds: usize,
    /// Peak per-round message volume.
    pub peak_messages: usize,
    /// Messages in the final (notification) round.
    pub final_messages: usize,
    /// Did both endpoints agree on every edge decision?
    pub endpoints_agree: bool,
    /// Is the distributed output identical to the sequential one?
    pub matches_sequential: bool,
    /// Spanner edges produced.
    pub edges_h: usize,
}

/// Run over sizes in the Theorem 3 regime.
pub fn run(sizes: &[usize], seed: u64) -> (Vec<E11Row>, String) {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 911);
        let delta = workloads::theorem3_degree(n);
        let g = workloads::regime_expander(n, delta, seed);
        let mut params = RegularSpannerParams::calibrated(n, delta);
        params.safe_reinsert = false;
        let out = distributed_regular_spanner(&g, params, seed ^ 1, 4);
        let seq = build_regular_spanner_pair_sampled(&g, params, seed ^ 1);
        rows.push(E11Row {
            n,
            delta,
            rounds: out.rounds,
            peak_messages: out
                .round_stats
                .iter()
                .map(|s| s.messages)
                .max()
                .unwrap_or(0),
            final_messages: out.round_stats.last().map_or(0, |s| s.messages),
            endpoints_agree: out.endpoints_agree,
            matches_sequential: out.h == seq.h,
            edges_h: out.h.m(),
        });
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "rounds",
        "peak msgs",
        "final msgs",
        "agree",
        "== sequential",
        "|E(H)|",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.rounds.to_string(),
            r.peak_messages.to_string(),
            r.final_messages.to_string(),
            r.endpoints_agree.to_string(),
            r.matches_sequential.to_string(),
            r.edges_h.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: O(1) LOCAL rounds (sample+inform, 3 flooding rounds, reinsert+inform). \
         Our implementation uses exactly 5 rounds and reproduces the sequential output \
         bit-for-bit. Peak messages ≈ {} per round at the largest size.\n",
        crate::banner("E11", "Corollary 3 (distributed Algorithm 1 in LOCAL)"),
        t.render(),
        rows.last().map_or(0, |r| r.peak_messages)
    );
    let _ = f2(0.0); // keep the helper linked for uniformity
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rounds_and_equivalence() {
        let (rows, text) = run(&[36, 64], 3);
        for r in &rows {
            assert_eq!(r.rounds, 5, "n={}", r.n);
            assert!(r.endpoints_agree, "n={}", r.n);
            assert!(r.matches_sequential, "n={}", r.n);
            assert!(r.edges_h > 0);
        }
        // Rounds do not grow with n (the whole point of Corollary 3).
        assert_eq!(rows[0].rounds, rows[1].rounds);
        assert!(text.contains("Corollary 3"));
    }
}
