//! **E3 — Table 1, row "\[16\]"**: spanner-peeling spectral sparsification
//! (Koutis–Xu) + Valiant routing.
//!
//! Paper claims (for any expander): `O(n log n)` edges, distance stretch
//! `O(log n)`, congestion stretch `O(log⁴ n)`.

use crate::table::{f2, f3, Table};
use crate::workloads;
use dcspan_core::eval::{distance_stretch_sampled, general_substitute_congestion};
use dcspan_core::koutis_xu::koutis_xu_nlogn;
use dcspan_routing::replace::route_matching;
use dcspan_routing::valiant::ValiantEdgeRouter;
use dcspan_spectral::expansion::normalized_expansion;

/// One measured row of the \[16\] experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E3Row {
    /// Nodes.
    pub n: usize,
    /// Host degree.
    pub delta: usize,
    /// `|E(H)| / (n·log₂ n)` — paper: O(1).
    pub edges_per_nlogn: f64,
    /// Sparsification rounds performed.
    pub rounds: usize,
    /// Normalised expansion λ̂ of the sparsifier.
    pub lambda_hat: f64,
    /// Max sampled distance stretch (paper: O(log n)).
    pub alpha: f64,
    /// Matching congestion via Valiant routing.
    pub matching_congestion: u32,
    /// General congestion stretch (paper: O(log⁴ n)).
    pub general_beta: f64,
    /// `log₂ n` reference.
    pub log2: f64,
}

/// Run over the given sizes (hosts are moderately dense expanders).
pub fn run(sizes: &[usize], seed: u64) -> (Vec<E3Row>, String) {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 131);
        let delta = workloads::even(n / 4).max(8);
        let g = workloads::regime_expander(n, delta, seed);
        let out = koutis_xu_nlogn(&g, 2.0, seed ^ 1);
        let h = out.h;
        let router = ValiantEdgeRouter::new(&h);

        let lambda_hat = normalized_expansion(&h, seed ^ 2);
        let dist = distance_stretch_sampled(&g, &h, 200, seed ^ 3);
        let matching = workloads::removed_edge_matching(&g, &h);
        let routing = route_matching(&router, &matching, seed ^ 4).expect("matching routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let matching_congestion = routing.congestion(n);
        let (_, base) = workloads::permutation_base_routing(&g, seed ^ 5);
        let general = general_substitute_congestion(n, &base, &router, seed ^ 6)
            .expect("general routing substitutable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable

        rows.push(E3Row {
            n,
            delta,
            edges_per_nlogn: h.m() as f64 / (n as f64 * workloads::log2n(n)),
            rounds: out.rounds,
            lambda_hat,
            alpha: dist.max_stretch,
            matching_congestion,
            general_beta: general.beta(),
            log2: workloads::log2n(n),
        });
    }
    let mut t = Table::new([
        "n",
        "Δ_host",
        "|E(H)|/nlogn",
        "rounds",
        "λ̂(H)",
        "α(sampled)",
        "C_match",
        "β_general",
        "log n",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            f3(r.edges_per_nlogn),
            r.rounds.to_string(),
            f3(r.lambda_hat),
            f2(r.alpha),
            r.matching_congestion.to_string(),
            f2(r.general_beta),
            f2(r.log2),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: O(n log n) edges, α = O(log n), β = O(log⁴ n) on expanders.\n",
        crate::banner("E3", "Table 1 row '[16]' (Koutis–Xu sparsification)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_matches_paper_shape() {
        let (rows, text) = run(&[96, 128], 9);
        for r in &rows {
            assert!(
                r.edges_per_nlogn <= 3.0,
                "n={}: {} edges/nlogn",
                r.n,
                r.edges_per_nlogn
            );
            assert!(r.lambda_hat < 0.95, "n={}: λ̂ = {}", r.n, r.lambda_hat);
            assert!(r.alpha <= 3.0 * r.log2, "n={}: α = {}", r.n, r.alpha);
            assert!(
                r.general_beta <= 2.0 * r.log2.powi(4),
                "n={}: β = {}",
                r.n,
                r.general_beta
            );
        }
        assert!(text.contains("[16]"));
    }
}
