//! Machine-readable experiment records: JSON-lines export of any
//! experiment's row structs (all rows derive `serde::Serialize`).

use serde::Serialize;
use std::io::Write;

/// Serialise rows as JSON lines into any writer.
pub fn write_json_lines<T: Serialize, W: Write>(rows: &[T], mut w: W) -> std::io::Result<()> {
    for row in rows {
        let line = serde_json::to_string(row).map_err(std::io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Serialise rows as one pretty JSON array string. Encoding failures (a
/// row type whose `Serialize` impl errors, e.g. a map with non-string
/// keys) surface as `io::Error` like every other sink failure.
pub fn to_json_pretty<T: Serialize>(rows: &[T]) -> Result<String, std::io::Error> {
    serde_json::to_string_pretty(rows).map_err(std::io::Error::other)
}

/// A labelled experiment artefact: id, description, and JSON rows — the
/// container the CLI and archival tooling write to disk.
#[derive(Serialize)]
pub struct ExperimentArtifact<'a, T: Serialize> {
    /// Experiment id (e.g. "E1").
    pub id: &'a str,
    /// Paper artifact it reproduces.
    pub reproduces: &'a str,
    /// Master seed used.
    pub seed: u64,
    /// The measured rows.
    pub rows: &'a [T],
}

impl<'a, T: Serialize> ExperimentArtifact<'a, T> {
    /// Serialise the whole artefact as pretty JSON; encoding failures
    /// surface as `io::Error`.
    pub fn to_json(&self) -> Result<String, std::io::Error> {
        serde_json::to_string_pretty(self).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_roundtrip_as_json_lines() {
        let (rows, _) = crate::e5_lower_bound::run(&[(5, 1)]);
        let mut buf = Vec::new();
        write_json_lines(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), rows.len());
        let parsed: serde_json::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(parsed["q"], 5);
        assert!(parsed["alpha"].as_f64().unwrap() <= 3.0);
    }

    #[test]
    fn artifact_serialises_with_metadata() {
        let (rows, _) = crate::e7_lemma2::run(&[8]);
        let artifact = ExperimentArtifact {
            id: "E7",
            reproduces: "Lemma 2",
            seed: 1,
            rows: &rows,
        };
        let json = artifact.to_json().unwrap();
        assert!(json.contains("\"id\": \"E7\""));
        assert!(json.contains("beta_adversarial"));
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["rows"].as_array().unwrap().len(), rows.len());
    }

    #[test]
    fn pretty_json_is_an_array() {
        let (rows, _) = crate::e7_lemma2::run(&[8, 16]);
        let json = to_json_pretty(&rows).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.as_array().unwrap().len(), 2);
    }
}
