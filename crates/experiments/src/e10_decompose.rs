//! **E10 — Theorem 1 / Lemmas 21–23**: decomposition of routings into
//! matchings.
//!
//! Measures, for random routing problems of growing intensity:
//!
//! * the number of levels `r` and `Σ_k (d_k + 1)` vs Lemma 21's bound
//!   `12·C(P)·log₂ n`,
//! * the number of matchings vs Lemma 23's `O(n³)`,
//! * the congestion overhead of the decomposed substitute vs the direct
//!   per-path splice.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_graph::sample::sample_subgraph;
use dcspan_routing::decompose::{
    substitute_routing_decomposed, substitute_routing_direct, ColoringAlgo,
};
use dcspan_routing::replace::{DetourPolicy, SpannerDetourRouter};

/// One measured row of the decomposition experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E10Row {
    /// Nodes.
    pub n: usize,
    /// Routing pairs.
    pub k: usize,
    /// Base congestion `C(P)`.
    pub base_congestion: u32,
    /// Levels `r`.
    pub levels: usize,
    /// `Σ(d_k + 1)`.
    pub sum_dk1: usize,
    /// Lemma 21's bound.
    pub lemma21_bound: f64,
    /// Total matchings used.
    pub matchings: usize,
    /// `n³` (Lemma 23 reference).
    pub n_cubed: f64,
    /// Substitute congestion via decomposition.
    pub congestion_decomposed: u32,
    /// Substitute congestion via direct splicing.
    pub congestion_direct: u32,
}

/// Run over routing intensities on a fixed-size expander.
pub fn run(n: usize, pair_counts: &[usize], seed: u64) -> (Vec<E10Row>, String) {
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, seed);
    let h = sample_subgraph(&g, 0.6, seed ^ 1);
    let router = SpannerDetourRouter::new(&h, DetourPolicy::UniformUpTo3);
    let mut rows = Vec::new();
    for (i, &k) in pair_counts.iter().enumerate() {
        let (_, base) = workloads::pairs_base_routing(&g, k, seed.wrapping_add(i as u64));
        let rep =
            substitute_routing_decomposed(n, &base, &router, ColoringAlgo::MisraGries, seed ^ 2)
                .expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let direct = substitute_routing_direct(&base, &router, seed ^ 3).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        rows.push(E10Row {
            n,
            k,
            base_congestion: rep.base_congestion,
            levels: rep.num_levels,
            sum_dk1: rep.sum_dk_plus_one,
            lemma21_bound: rep.lemma21_bound(n),
            matchings: rep.num_matchings,
            n_cubed: (n as f64).powi(3),
            congestion_decomposed: rep.routing.congestion(n),
            congestion_direct: direct.congestion(n),
        });
    }
    let mut t = Table::new([
        "n",
        "k",
        "C(P)",
        "levels r",
        "Σ(d_k+1)",
        "12·C·log n",
        "matchings",
        "n³",
        "C(P')",
        "C(direct)",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.k.to_string(),
            r.base_congestion.to_string(),
            r.levels.to_string(),
            r.sum_dk1.to_string(),
            f2(r.lemma21_bound),
            r.matchings.to_string(),
            format!("{:.0}", r.n_cubed),
            r.congestion_decomposed.to_string(),
            r.congestion_direct.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: Σ(d_k+1) ≤ 12·C(P)·log₂ n (Lemma 21); ≤ O(n³) matchings (Lemma 23); \
         the substitute congestion is ≤ β'·Σ(d_k+1) (Lemma 22).\n",
        crate::banner("E10", "Theorem 1 / Algorithm 2 (matching decomposition)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_bounds_hold() {
        let (rows, text) = run(96, &[10, 40, 120], 5);
        for r in &rows {
            assert!(
                (r.sum_dk1 as f64) <= r.lemma21_bound,
                "k={}: Σ = {} > bound {}",
                r.k,
                r.sum_dk1,
                r.lemma21_bound
            );
            assert!((r.matchings as f64) <= r.n_cubed, "k={}", r.k);
            assert!(r.levels >= 1);
        }
        // More pairs ⇒ no fewer levels and no smaller Σ.
        assert!(rows[2].sum_dk1 >= rows[0].sum_dk1);
        assert!(text.contains("E10"));
    }

    #[test]
    fn decomposition_congestion_comparable_to_direct() {
        let (rows, _) = run(64, &[60], 9);
        let r = &rows[0];
        // Both substitutes route the same problem; congestion should be in
        // the same ballpark (within a small factor).
        let hi = r.congestion_decomposed.max(r.congestion_direct) as f64;
        let lo = r.congestion_decomposed.min(r.congestion_direct).max(1) as f64;
        assert!(
            hi / lo <= 3.0,
            "decomposed {} vs direct {}",
            r.congestion_decomposed,
            r.congestion_direct
        );
    }
}
