//! **E19 — construction-side performance**: wall time of the Algorithm 1
//! build pipeline, kernel vs. naive, in the paper's own `Δ = ⌈n^{2/3}⌉`
//! regime (Theorem 3).
//!
//! Measured per `(n, Δ)` cell:
//!
//! * `supported_edge_mask` — the batched triangle-kernel path against the
//!   merge-per-probe reference, with the masks compared bit-for-bit;
//! * the safe-reinsert sweep — parallel chunked kernel vs. the original
//!   serial loop, flags compared bit-for-bit;
//! * the full calibrated `build_regular_spanner`;
//! * the serving-side `DetourIndex::build` over the resulting spanner.
//!
//! This is the construction-side counterpart of E17: E17 answers "how fast
//! does the oracle serve", E19 answers "how long until it can start".

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_core::support::{
    safe_reinsert_flags, safe_reinsert_flags_serial, supported_edge_mask, supported_edge_mask_naive,
};
use dcspan_graph::sample::sample_mask;
use dcspan_oracle::DetourIndex;
use std::time::Instant;

/// One measured `(n, Δ)` cell of the construction sweep.
#[derive(Clone, Debug, serde::Serialize)]
pub struct BuildBenchRow {
    /// Nodes.
    pub n: usize,
    /// Degree Δ (regime `⌈n^{2/3}⌉` unless overridden).
    pub delta: usize,
    /// Edges of the host graph.
    pub m: usize,
    /// Support strength `a` used (calibrated).
    pub a: usize,
    /// Support breadth `b` used (calibrated).
    pub b: usize,
    /// `supported_edge_mask` via the merge-per-probe reference, ms.
    pub mask_naive_ms: f64,
    /// `supported_edge_mask` via the triangle kernel, ms.
    pub mask_kernel_ms: f64,
    /// `mask_naive_ms / mask_kernel_ms`.
    pub mask_speedup: f64,
    /// Kernel mask bit-identical to the naive mask.
    pub masks_equal: bool,
    /// Safe-reinsert sweep, original serial loop, ms.
    pub safe_serial_ms: f64,
    /// Safe-reinsert sweep, parallel chunked kernel, ms.
    pub safe_parallel_ms: f64,
    /// Parallel safe-reinsert flags bit-identical to the serial loop.
    pub safe_equal: bool,
    /// Full calibrated `build_regular_spanner`, ms.
    pub spanner_ms: f64,
    /// Spanner edges kept.
    pub spanner_m: usize,
    /// `DetourIndex::build` over the spanner, ms.
    pub index_build_ms: f64,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Run the construction sweep over explicit `(n, Δ)` cells (pass
/// `Δ = 0` to use the Theorem 3 regime `⌈n^{2/3}⌉`).
pub fn run(cells: &[(usize, usize)], seed: u64) -> (Vec<BuildBenchRow>, String) {
    let mut rows = Vec::new();
    for (i, &(n, delta)) in cells.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 1000);
        let delta = if delta == 0 {
            workloads::theorem3_degree(n)
        } else {
            workloads::even(delta).min(n - 2)
        };
        let g = workloads::regime_expander(n, delta, seed);
        let params = RegularSpannerParams::calibrated(n, delta);

        let t0 = Instant::now();
        let naive = supported_edge_mask_naive(&g, params.a, params.b);
        let mask_naive_ms = ms(t0);
        let t0 = Instant::now();
        let kernel = supported_edge_mask(&g, params.a, params.b);
        let mask_kernel_ms = ms(t0);
        let masks_equal = naive == kernel;

        // Safe-reinsert sweep over the sampled survivor graph, exactly as
        // build_regular_spanner_from_mask frames it.
        let keep = sample_mask(&g, params.rho, seed);
        let g_prime = g.filter_edges(|id, _| keep[id]);
        let candidate: Vec<bool> = keep
            .iter()
            .zip(&kernel)
            .map(|(&kept, &sup)| !kept && sup)
            .collect();
        let t0 = Instant::now();
        let serial = safe_reinsert_flags_serial(&g, &g_prime, &candidate);
        let safe_serial_ms = ms(t0);
        let t0 = Instant::now();
        let parallel = safe_reinsert_flags(&g, &g_prime, &candidate);
        let safe_parallel_ms = ms(t0);
        let safe_equal = serial == parallel;

        let t0 = Instant::now();
        let sp = build_regular_spanner(&g, params, seed);
        let spanner_ms = ms(t0);
        let t0 = Instant::now();
        let index = DetourIndex::build(&g, &sp.h);
        let index_build_ms = ms(t0);
        let _ = index.stats();

        rows.push(BuildBenchRow {
            n,
            delta,
            m: g.m(),
            a: params.a,
            b: params.b,
            mask_naive_ms,
            mask_kernel_ms,
            mask_speedup: mask_naive_ms / mask_kernel_ms.max(1e-9),
            masks_equal,
            safe_serial_ms,
            safe_parallel_ms,
            safe_equal,
            spanner_ms,
            spanner_m: sp.h.m(),
            index_build_ms,
        });
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "m",
        "mask naive ms",
        "mask kernel ms",
        "speedup",
        "equal",
        "safe ser ms",
        "safe par ms",
        "spanner ms",
        "index ms",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.m.to_string(),
            f2(r.mask_naive_ms),
            f2(r.mask_kernel_ms),
            format!("{:.1}x", r.mask_speedup),
            (r.masks_equal && r.safe_equal).to_string(),
            f2(r.safe_serial_ms),
            f2(r.safe_parallel_ms),
            f2(r.spanner_ms),
            f2(r.index_build_ms),
        ]);
    }
    let text = format!(
        "{}{}\nConstruction contract: kernel mask and parallel safe-reinsert \
         flags are bit-identical to the naive references on every cell.\n",
        crate::banner("E19", "construction: triangle-kernel build pipeline"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_measure_and_stay_bit_identical() {
        let (rows, text) = run(&[(96, 0), (128, 24)], 5);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.masks_equal, "n={}: kernel mask diverged", r.n);
            assert!(r.safe_equal, "n={}: safe-reinsert flags diverged", r.n);
            assert!(r.mask_kernel_ms > 0.0 && r.mask_naive_ms > 0.0);
            assert!(r.spanner_m <= r.m);
            assert_eq!(r.delta % 2, 0);
        }
        assert_eq!(rows[0].delta, workloads::theorem3_degree(96));
        assert_eq!(rows[1].delta, 24);
        assert!(text.contains("E19"));
        assert!(text.contains("speedup"));
    }
}
