//! # dcspan-experiments
//!
//! Experiment runners that regenerate the paper's **Table 1** and the
//! figure-level claims as *measured* quantities. Every experiment returns
//! both structured rows (consumed by tests and serialisable to JSON) and a
//! formatted text table (printed by the bench harnesses into
//! `bench_output.txt` and EXPERIMENTS.md).
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`e1_expander`] | Table 1 row "Theorem 2" |
//! | [`e2_becchetti`] | Table 1 row "\[5\]" |
//! | [`e3_koutis_xu`] | Table 1 row "\[16\]" |
//! | [`e4_regular`] | Table 1 row "Theorem 3" |
//! | [`e5_lower_bound`] | Table 1 row "Theorem 4" |
//! | [`e6_vft`] | Figure 1 |
//! | [`e7_lemma2`] | Lemma 2 separation |
//! | [`e8_matching`] | Figure 2 / Lemmas 4–5 |
//! | [`e9_support`] | Figures 3–4 / supportedness |
//! | [`e10_decompose`] | Theorem 1 / Lemmas 21–23 |
//! | [`e11_local`] | Corollary 3 (LOCAL model) |
//! | [`e12_latency`] | §1.1 motivation: congestion → packet latency |
//! | [`e13_frontier`] | stretch-3 size/congestion frontier across algorithms |
//! | [`e14_definition`] | Definition 2 vs approximate optimal C(R) |
//! | [`e15_vft_tradeoff`] | Related Work: f-VFT size/congestion trade-off |
//! | [`e16_scaling`] | empirical size-law exponents (5/3, 7/6) |
//! | [`e17_oracle`] | serving: oracle throughput/latency (Definition 3 at query time) |
//! | [`e18_chaos`] | serving robustness: fault injection, degraded-mode routing, admission control |
//! | [`e19_build`] | construction cost: triangle-kernel build pipeline vs. naive (Theorem 3 regime) |
//! | [`e20_store`] | artifact store: build once, serve forever (save/verify/load vs rebuild, bit-identical serving) |
//! | [`e21_serve`] | networked serving: open-loop QPS sweep over HTTP with β-budget load shedding |
//! | [`e22_shard`] | sharded serving robustness: replica/shard outages, typed partial results |
//! | [`e23_delta`] | incremental maintenance: delta apply vs from-scratch rebuild, bit-identical |
//! | [`table1`] | the complete Table 1, measured |
//! | [`ablations`] | design-choice ablations (A1–A3) |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablations;
pub mod e10_decompose;
pub mod e11_local;
pub mod e12_latency;
pub mod e13_frontier;
pub mod e14_definition;
pub mod e15_vft_tradeoff;
pub mod e16_scaling;
pub mod e17_oracle;
pub mod e18_chaos;
pub mod e19_build;
pub mod e1_expander;
pub mod e20_store;
pub mod e21_serve;
pub mod e22_shard;
pub mod e23_delta;
pub mod e2_becchetti;
pub mod e3_koutis_xu;
pub mod e4_regular;
pub mod e5_lower_bound;
pub mod e6_vft;
pub mod e7_lemma2;
pub mod e8_matching;
pub mod e9_support;
pub mod record;
pub mod summary;
pub mod sweep;
pub mod table;
pub mod table1;
pub mod workloads;

/// Render a standard experiment banner.
pub fn banner(id: &str, artifact: &str) -> String {
    format!(
        "\n================================================================\n\
         {id} — reproduces {artifact}\n\
         ================================================================\n"
    )
}
