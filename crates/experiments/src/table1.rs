//! **The complete Table 1**, regenerated in the paper's own format.
//!
//! The paper's summary table has columns *Result / Number of Edges /
//! Distance Stretch / Congestion Stretch / Assumptions*; this module runs
//! all five rows at one size and prints the paper's asymptotic claim next
//! to the measured value — the one-glance reproduction summary.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::becchetti::random_d_out_subgraph;
use dcspan_core::eval::{
    distance_stretch_edges, distance_stretch_sampled, general_substitute_congestion,
};
use dcspan_core::expander::{
    build_expander_spanner, ExpanderMatchingRouter, ExpanderSpannerParams,
};
use dcspan_core::koutis_xu::koutis_xu_nlogn;
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_gen::lower_bound::LowerBoundGraph;
use dcspan_graph::Path;
use dcspan_routing::problem::RoutingProblem;
use dcspan_routing::replace::{DetourPolicy, EdgeRouter, SpannerDetourRouter};
use dcspan_routing::routing::Routing;
use dcspan_routing::shortest::shortest_path_routing;
use dcspan_routing::valiant::ValiantEdgeRouter;

/// One regenerated Table 1 row.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Table1Row {
    /// Paper row label.
    pub result: &'static str,
    /// Paper's edge bound.
    pub paper_edges: &'static str,
    /// Measured edges (as a formatted expression).
    pub measured_edges: String,
    /// Paper's distance stretch.
    pub paper_alpha: &'static str,
    /// Measured α.
    pub measured_alpha: String,
    /// Paper's congestion stretch.
    pub paper_beta: &'static str,
    /// Measured β (general routing through the DC pipeline).
    pub measured_beta: String,
    /// Paper's assumption column.
    pub assumptions: &'static str,
}

fn beta_of<R: EdgeRouter>(g: &dcspan_graph::Graph, router: &R, seed: u64) -> f64 {
    let (_, base) = workloads::permutation_base_routing(g, seed);
    general_substitute_congestion(g.n(), &base, router, seed ^ 1).map_or(f64::NAN, |gen| gen.beta())
}

/// Regenerate all five Table 1 rows at size `n`.
pub fn run(n: usize, seed: u64) -> (Vec<Table1Row>, String) {
    let mut rows = Vec::new();
    let n53 = (n as f64).powf(5.0 / 3.0);

    // Row 1: Theorem 2.
    {
        let delta = workloads::theorem2_degree(n, 0.15);
        let g = workloads::regime_expander(n, delta, seed);
        let sp = build_expander_spanner(&g, ExpanderSpannerParams::paper(n, delta), seed ^ 1);
        let router = ExpanderMatchingRouter::new(&g, &sp.h);
        let dist = distance_stretch_edges(&g, &sp.h, 6);
        rows.push(Table1Row {
            result: "Theorem 2",
            paper_edges: "O(n^5/3)",
            measured_edges: format!("{} = {:.2}·n^5/3", sp.h.m(), sp.h.m() as f64 / n53),
            paper_alpha: "3",
            measured_alpha: f2(dist.max_stretch),
            paper_beta: "O(log² n)",
            measured_beta: f2(beta_of(&g, &router, seed ^ 2)),
            assumptions: "expander",
        });
    }

    // Row 2: [5] — bounded-degree extraction from a dense expander.
    {
        let delta = workloads::even(n / 2);
        let g = workloads::regime_expander(n, delta, seed ^ 3);
        let h = random_d_out_subgraph(&g, 4, seed ^ 4);
        let router = ValiantEdgeRouter::new(&h);
        let dist = distance_stretch_sampled(&g, &h, 150, seed ^ 5);
        rows.push(Table1Row {
            result: "[5]",
            paper_edges: "O(n)",
            measured_edges: format!("{} = {:.2}·n", h.m(), h.m() as f64 / n as f64),
            paper_alpha: "O(log n)",
            measured_alpha: f2(dist.max_stretch),
            paper_beta: "O(log³ n)",
            measured_beta: f2(beta_of(&g, &router, seed ^ 6)),
            assumptions: "expander, Δ = Ω(n)",
        });
    }

    // Row 3: [16] — Koutis–Xu sparsification.
    {
        let delta = workloads::even(n / 4).max(8);
        let g = workloads::regime_expander(n, delta, seed ^ 7);
        let h = koutis_xu_nlogn(&g, 2.0, seed ^ 8).h;
        let router = ValiantEdgeRouter::new(&h);
        let dist = distance_stretch_sampled(&g, &h, 150, seed ^ 9);
        rows.push(Table1Row {
            result: "[16]",
            paper_edges: "O(n log n)",
            measured_edges: format!(
                "{} = {:.2}·n·log n",
                h.m(),
                h.m() as f64 / (n as f64 * workloads::log2n(n))
            ),
            paper_alpha: "O(log n)",
            measured_alpha: f2(dist.max_stretch),
            paper_beta: "O(log⁴ n)",
            measured_beta: f2(beta_of(&g, &router, seed ^ 10)),
            assumptions: "expander",
        });
    }

    // Row 4: Theorem 3 — Algorithm 1.
    {
        let delta = workloads::theorem3_degree(n);
        let g = workloads::regime_expander(n, delta, seed ^ 11);
        let sp = build_regular_spanner(&g, RegularSpannerParams::calibrated(n, delta), seed ^ 12);
        let router = SpannerDetourRouter::new(&sp.h, DetourPolicy::UniformUpTo3);
        let dist = distance_stretch_edges(&g, &sp.h, 6);
        rows.push(Table1Row {
            result: "Theorem 3",
            paper_edges: "O(n^5/3 log² n)",
            measured_edges: format!("{} = {:.2}·n^5/3", sp.h.m(), sp.h.m() as f64 / n53),
            paper_alpha: "3",
            measured_alpha: f2(dist.max_stretch),
            paper_beta: "O(√Δ·log n)",
            measured_beta: f2(beta_of(&g, &router, seed ^ 13)),
            assumptions: "Δ-regular, Δ ≥ n^2/3",
        });
    }

    // Row 5: Theorem 4 — lower bound (β measured on the adversarial
    // instance, not a permutation). Use a fan height q with k ≥ 2 so the
    // per-instance bound (2k−1)/4 is non-trivial at this scale.
    {
        let q = if n >= 200 { 11 } else { 5 };
        let lb = LowerBoundGraph::new(q, 1);
        let h = lb.optimal_spanner();
        let dist = distance_stretch_edges(&lb.graph, &h, 4);
        let pairs = lb.adversarial_routing_pairs(0);
        let beta = if pairs.is_empty() {
            f64::NAN
        } else {
            let problem = RoutingProblem::from_pairs(pairs.clone());
            let base = Routing::new(pairs.iter().map(|&(u, v)| Path::new(vec![u, v])).collect());
            let sub = shortest_path_routing(&h, &problem).expect("connected per instance"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
            sub.congestion(lb.graph.n()) as f64 / base.congestion(lb.graph.n()).max(1) as f64
        };
        let n76 = (lb.graph.n() as f64).powf(7.0 / 6.0);
        rows.push(Table1Row {
            result: "Theorem 4",
            paper_edges: "Ω(n^7/6)",
            measured_edges: format!("{} = {:.2}·n^7/6", h.m(), h.m() as f64 / n76),
            paper_alpha: "3",
            measured_alpha: f2(dist.max_stretch),
            paper_beta: "Ω(n^1/6)",
            measured_beta: format!(
                "{} (n^1/6 = {:.2})",
                f2(beta),
                (lb.graph.n() as f64).powf(1.0 / 6.0)
            ),
            assumptions: "Θ(n^1/6) degrees",
        });
    }

    let mut t = Table::new([
        "Result",
        "Edges (paper)",
        "Edges (measured)",
        "α (paper)",
        "α (meas)",
        "β (paper)",
        "β (meas)",
        "Assumptions",
    ]);
    for r in &rows {
        t.add_row([
            r.result.to_string(),
            r.paper_edges.to_string(),
            r.measured_edges.clone(),
            r.paper_alpha.to_string(),
            r.measured_alpha.clone(),
            r.paper_beta.to_string(),
            r.measured_beta.clone(),
            r.assumptions.to_string(),
        ]);
    }
    let text = format!(
        "{}{}\nThe paper's summary table with measured values substituted (β for rows 1–4 \
         is the permutation-routing congestion stretch through Algorithm 2; row 5's β is \
         the adversarial instance's).\n",
        crate::banner("TABLE 1", "the paper's complete summary table, measured"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_table_regenerates() {
        let (rows, text) = run(96, 31);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].result, "Theorem 2");
        assert_eq!(rows[4].result, "Theorem 4");
        // Stretch-3 rows really measure 3.
        for r in [&rows[0], &rows[3], &rows[4]] {
            assert_eq!(
                r.measured_alpha, "3.00",
                "{}: α = {}",
                r.result, r.measured_alpha
            );
        }
        // All β values parsed as finite.
        for r in &rows {
            let lead: f64 = r
                .measured_beta
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(
                lead.is_finite() && lead >= 1.0,
                "{}: β = {}",
                r.result,
                r.measured_beta
            );
        }
        assert!(text.contains("TABLE 1"));
    }
}
