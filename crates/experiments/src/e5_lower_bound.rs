//! **E5 — Table 1, row "Theorem 4"**: the lower bound — a graph whose
//! optimal-size 3-distance spanners have congestion stretch `Ω(n^{1/6})`.
//!
//! Paper claims: the composite graph has `Θ(n^{1/6})` node degrees; any
//! optimal 3-distance spanner keeps `Ω(n^{7/6})` edges and suffers
//! congestion stretch `Ω(n^{1/6})` on the adversarial routing problem
//! (`β ≥ (2k−1)/4` per instance, Lemma 18 with `x = 2k−1`).

use crate::table::{f2, f3, Table};
use dcspan_gen::lower_bound::LowerBoundGraph;
use dcspan_graph::Path;
use dcspan_routing::problem::RoutingProblem;
use dcspan_routing::routing::Routing;
use dcspan_routing::shortest::shortest_path_routing;

/// One measured row of the Theorem 4 experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E5Row {
    /// Field size q = 2k+1 (prime).
    pub q: usize,
    /// Plane copies.
    pub blocks: usize,
    /// Total nodes.
    pub n: usize,
    /// `|E(G)|`.
    pub edges_g: usize,
    /// `|E(H)|` of the optimal 3-distance spanner.
    pub edges_h: usize,
    /// `|E(H)| / n^{7/6}` — paper: Ω(1).
    pub edges_vs_n76: f64,
    /// Max distance stretch of H over edges of G (must be ≤ 3).
    pub alpha: f64,
    /// Adversarial congestion stretch β, worst instance (C_G ≤ 2 within an
    /// instance, C_H ≥ k at the special node).
    pub beta_worst_instance: f64,
    /// Lemma 18's per-instance bound `x/4 = (2k−1)/4`.
    pub lemma18_bound: f64,
    /// `n^{1/6}` reference.
    pub n16: f64,
}

/// Measure β on instance `i`: route its adversarial pairs in `G` (direct
/// edges, congestion ≤ 2) and in `H` (shortest paths, which must cross the
/// special node), and take the ratio.
fn instance_beta(lb: &LowerBoundGraph, h: &dcspan_graph::Graph, i: usize) -> f64 {
    let pairs = lb.adversarial_routing_pairs(i);
    if pairs.is_empty() {
        return 1.0;
    }
    let problem = RoutingProblem::from_pairs(pairs.clone());
    // Base routing in G: the removed edges themselves.
    let base = Routing::new(pairs.iter().map(|&(u, v)| Path::new(vec![u, v])).collect());
    let c_g = base.congestion(lb.graph.n()).max(1);
    // Substitute routing in H: shortest paths (all of which must detour
    // through s_i — there is no other 3-hop connection).
    let sub = shortest_path_routing(h, &problem).expect("H is connected per instance"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
    let c_h = sub.congestion(lb.graph.n());
    c_h as f64 / c_g as f64
}

/// Run over `(q, blocks)` scales.
pub fn run(scales: &[(usize, usize)]) -> (Vec<E5Row>, String) {
    let mut rows = Vec::new();
    for &(q, blocks) in scales {
        let lb = LowerBoundGraph::new(q, blocks);
        let h = lb.optimal_spanner();
        let n = lb.graph.n();
        let dist = dcspan_core::eval::distance_stretch_edges(&lb.graph, &h, 4);
        let alpha = dist
            .max_stretch
            .max(if dist.overflow_pairs > 0 { 9.0 } else { 0.0 });
        // β on a sample of instances (they are symmetric; take several).
        let sample = lb.instances.min(16);
        let beta_worst = (0..sample)
            .map(|i| instance_beta(&lb, &h, i * lb.instances / sample))
            .fold(0.0, f64::max);
        rows.push(E5Row {
            q,
            blocks,
            n,
            edges_g: lb.graph.m(),
            edges_h: h.m(),
            edges_vs_n76: h.m() as f64 / (n as f64).powf(7.0 / 6.0),
            alpha,
            beta_worst_instance: beta_worst,
            lemma18_bound: (2.0 * lb.k as f64 - 1.0) / 4.0,
            n16: (n as f64).powf(1.0 / 6.0),
        });
    }
    let mut t = Table::new([
        "q",
        "blocks",
        "n",
        "|E(G)|",
        "|E(H)|",
        "E(H)/n^7/6",
        "α(max)",
        "β(worst)",
        "(2k−1)/4",
        "n^1/6",
    ]);
    for r in &rows {
        t.add_row([
            r.q.to_string(),
            r.blocks.to_string(),
            r.n.to_string(),
            r.edges_g.to_string(),
            r.edges_h.to_string(),
            f3(r.edges_vs_n76),
            f2(r.alpha),
            f2(r.beta_worst_instance),
            f2(r.lemma18_bound),
            f2(r.n16),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: optimal 3-spanner has Ω(n^7/6) edges and β = Ω(n^1/6) \
         (per-instance bound (2k−1)/4, Lemma 18).\n",
        crate::banner("E5", "Table 1 row 'Theorem 4' (lower bound)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_shape_holds() {
        let (rows, text) = run(&[(5, 1), (7, 1)]);
        for r in &rows {
            assert!(r.alpha <= 3.0, "q={}: α = {}", r.q, r.alpha);
            // The measured β must meet Lemma 18's bound.
            assert!(
                r.beta_worst_instance >= r.lemma18_bound,
                "q={}: β = {} < {}",
                r.q,
                r.beta_worst_instance,
                r.lemma18_bound
            );
            // Spanner keeps 2k+1 of 3k+1 edges per instance.
            assert!(r.edges_h < r.edges_g);
        }
        // β grows with q (= more faces = taller fans).
        assert!(rows[1].beta_worst_instance > rows[0].beta_worst_instance);
        assert!(text.contains("Theorem 4"));
    }

    #[test]
    fn beta_scales_with_k() {
        let (rows, _) = run(&[(5, 1), (11, 1)]);
        // k jumps from 2 to 5: β should roughly scale with k.
        let ratio = rows[1].beta_worst_instance / rows[0].beta_worst_instance;
        assert!(ratio >= 1.5, "β didn't scale: {ratio}");
    }
}
