//! Plain-text aligned tables for experiment output.

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn add_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a ratio `measured / reference` as e.g. `0.83×`.
pub fn ratio(measured: f64, reference: f64) -> String {
    if reference == 0.0 {
        "—".to_string()
    } else {
        format!("{:.2}×", measured / reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "edges", "stretch"]);
        t.add_row(["100", "2500", "3.00"]);
        t.add_row(["1000", "99999", "2.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n "));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "edges" column starts at same offset in all rows.
        let off = lines[0].find("edges").unwrap();
        assert_eq!(&lines[2][off..off + 4], "2500");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.239), "1.24");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(ratio(5.0, 10.0), "0.50×");
        assert_eq!(ratio(1.0, 0.0), "—");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.add_row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
