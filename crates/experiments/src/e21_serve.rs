//! **E21 — HTTP serving**: open-loop sustained-QPS sweep against the
//! networked front-end (`dcspan-serve`).
//!
//! The paper's object earns its keep at query time; E17/E20 measured the
//! oracle in-process, and this experiment measures it behind a socket:
//! build a Theorem 3 artifact, boot the threaded HTTP server with
//! β-budget admission control (`cap = ⌈c·√Δ·ln n⌉`), and drive an
//! open-loop Poisson load generator at several target rates. Latency is
//! charged from the *scheduled* arrival (no coordinated omission), so a
//! server past saturation shows its backlog as p99 — and, past the
//! admission budget, as an explicit `429` shed rate instead of queue
//! collapse. `dcspan bench-serve` writes these rows into
//! `BENCH_serve.json`.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::serve::SpannerAlgo;
use dcspan_oracle::Oracle;
use dcspan_serve::loadgen::{self, SweepCell, SweepError};
use dcspan_serve::ServerConfig;
use std::time::Duration;

/// One measured sweep cell: a `(artifact, target rate)` pair.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServeBenchRow {
    /// Nodes in the serving artifact.
    pub n: usize,
    /// Degree Δ (Theorem 3 regime, `n^{2/3}`).
    pub delta: usize,
    /// β-budget admission cap in force (`⌈c·√Δ·ln n⌉`).
    pub cap: u32,
    /// Target arrival rate, queries/second.
    pub target_qps: f64,
    /// Scheduled arrival horizon, seconds.
    pub duration_s: f64,
    /// Concurrent client connections.
    pub connections: usize,
    /// Arrivals scheduled.
    pub scheduled: usize,
    /// `200` responses.
    pub ok: usize,
    /// `429` responses (admission or queue shed).
    pub shed: usize,
    /// Other typed rejections (`400`/`422`).
    pub rejected: usize,
    /// Connects, writes, or reads that failed outright.
    pub transport_errors: usize,
    /// Responses the client gave up waiting for (its own read deadline
    /// expired) — a distinct class from transport failures.
    pub deadline_exceeded: usize,
    /// Completed responses per second of wall time.
    pub achieved_qps: f64,
    /// Fraction of completed responses shed with `429`.
    pub shed_rate: f64,
    /// Median latency (scheduled arrival → response complete), ms.
    pub p50_ms: f64,
    /// 90th percentile latency, ms.
    pub p90_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// Worst observed latency, ms.
    pub max_ms: f64,
}

/// Flatten sweep cells into serialisable rows.
fn rows_from_cells(cells: &[SweepCell], delta: usize, connections: usize) -> Vec<ServeBenchRow> {
    cells
        .iter()
        .map(|c| ServeBenchRow {
            n: c.n,
            delta,
            cap: c.cap,
            target_qps: c.target_qps,
            duration_s: c.duration_s,
            connections,
            scheduled: c.report.scheduled,
            ok: c.report.ok,
            shed: c.report.shed,
            rejected: c.report.rejected,
            transport_errors: c.report.transport_errors,
            deadline_exceeded: c.report.deadline_exceeded,
            achieved_qps: c.report.achieved_qps,
            shed_rate: c.report.shed_rate(),
            p50_ms: c.report.p50_ms,
            p90_ms: c.report.p90_ms,
            p99_ms: c.report.p99_ms,
            max_ms: c.report.max_ms,
        })
        .collect()
}

/// Run the serving sweep: build a Theorem 3 artifact for `n`, boot the
/// HTTP server with β-budget constant `cap_c`, and measure one open-loop
/// pass per target rate. Uses one scratch artifact under the system temp
/// dir; the file is removed before returning.
pub fn run(
    n: usize,
    rates: &[f64],
    duration_s: f64,
    connections: usize,
    cap_c: f64,
    seed: u64,
) -> Result<(Vec<ServeBenchRow>, String), SweepError> {
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, seed);
    let artifact = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, seed);
    let path =
        std::env::temp_dir().join(format!("dcspan-e21-{}-{n}-{seed}.bin", std::process::id()));
    artifact.save(&path).map_err(SweepError::Store)?;
    let result = loadgen::sweep(
        &path,
        rates,
        Duration::from_secs_f64(duration_s),
        connections,
        cap_c,
        seed,
        ServerConfig::default(),
    );
    let _ = std::fs::remove_file(&path);
    let cells = result?;
    let rows = rows_from_cells(&cells, delta, connections);

    let mut t = Table::new([
        "n",
        "Δ",
        "cap",
        "target qps",
        "achieved",
        "ok",
        "shed",
        "rejected",
        "errors",
        "deadline",
        "shed rate",
        "p50 ms",
        "p90 ms",
        "p99 ms",
        "max ms",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.cap.to_string(),
            f2(r.target_qps),
            f2(r.achieved_qps),
            r.ok.to_string(),
            r.shed.to_string(),
            r.rejected.to_string(),
            r.transport_errors.to_string(),
            r.deadline_exceeded.to_string(),
            f2(r.shed_rate),
            f2(r.p50_ms),
            f2(r.p90_ms),
            f2(r.p99_ms),
            f2(r.max_ms),
        ]);
    }
    let text = format!(
        "E21 — HTTP serving: open-loop target-QPS sweep (β-budget admission, \
         {connections} connections, {duration_s:.1} s per rate)\n{}",
        t.render()
    );
    Ok((rows, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_sheds_past_the_budget() {
        let (rows, text) = run(120, &[200.0, 3000.0], 0.4, 4, 0.3, 7).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(
                r.transport_errors, 0,
                "transport errors at {}",
                r.target_qps
            );
            assert_eq!(
                r.deadline_exceeded, 0,
                "blown client deadlines at {}",
                r.target_qps
            );
            assert!(r.scheduled > 0);
            assert_eq!(r.ok + r.shed + r.rejected, r.scheduled);
            assert!(r.cap >= 1);
        }
        // Over-admission at the top rate degrades by shedding, not by
        // queue collapse: explicit 429s appear.
        assert!(rows[1].shed > 0, "no shedding at the over-admission rate");
        assert!(rows[1].shed_rate > rows[0].shed_rate);
        assert!(text.contains("E21"));
    }
}
