//! **E17 — serving subsystem**: throughput and latency of the
//! substitute-routing oracle on the Theorem 2 expander regime.
//!
//! The paper's object is static (`H` stands in for `G`, Definition 3);
//! this experiment measures the *serving* cost of that substitution: how
//! fast the precomputed detour index answers missing-edge queries, how
//! that scales with worker threads, and what the live congestion `C(P')`
//! of the answered traffic looks like — with the determinism contract
//! (same seed ⇒ same answers at every thread count) checked on the fly.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::serve::SpannerAlgo;
use dcspan_oracle::{Oracle, OracleConfig};
use dcspan_routing::replace::DetourPolicy;
use std::time::Instant;

/// One measured row: a `(n, threads)` cell of the serving sweep.
#[derive(Clone, Debug, serde::Serialize)]
pub struct OracleBenchRow {
    /// Nodes.
    pub n: usize,
    /// Degree Δ (regime `n^{2/3+ε}`).
    pub delta: usize,
    /// Edges of `G` missing from `H` (indexed universe).
    pub missing_edges: usize,
    /// Total detour entries packed into the index (2-hop + 3-hop).
    pub index_entries: usize,
    /// Wall time to build the oracle (spanner + index), milliseconds.
    pub build_ms: f64,
    /// Worker threads serving the query load.
    pub threads: usize,
    /// Queries answered.
    pub queries: usize,
    /// Queries per second.
    pub qps: f64,
    /// Mean per-query latency, microseconds.
    pub mean_latency_us: f64,
    /// Max hops over all answered queries — the measured distance
    /// stretch α of the served workload (paper: 3).
    pub alpha_max: f64,
    /// Live congestion `C(P')` of the answered traffic.
    pub live_congestion: u32,
    /// BFS-cache hit rate over the run.
    pub cache_hit_rate: f64,
}

/// Serve `queries` missing-edge queries by cycling the removed-edge
/// matching of `(g, h)` through `Oracle::substitute_routing`, under a
/// dedicated `threads`-wide rayon pool. Returns `(routed paths' max
/// hops, live congestion, elapsed seconds)`; `None` when the pool can't
/// be built or a pair is unroutable.
fn serve_cycles(
    oracle: &Oracle,
    matching: &dcspan_routing::RoutingProblem,
    queries: usize,
    threads: usize,
) -> Option<(usize, u32, f64)> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .ok()?;
    oracle.reset_load();
    let pairs = matching.pairs().len().max(1);
    let cycles = queries.div_ceil(pairs);
    let start = Instant::now();
    let mut max_hops = 0usize;
    for cycle in 0..cycles {
        let base = (cycle * pairs) as u64;
        let report = pool.install(|| oracle.substitute_routing(matching, base));
        let routing = report.into_routing().ok()?;
        max_hops = max_hops.max(routing.max_length());
    }
    let elapsed = start.elapsed().as_secs_f64();
    Some((max_hops, oracle.live_congestion(), elapsed))
}

/// Run the serving sweep: for each `n` (Theorem 2 regime, `ε` as given)
/// build one oracle, then serve ~`queries` matching queries at each
/// thread count.
pub fn run(
    sizes: &[usize],
    epsilon: f64,
    threads: &[usize],
    queries: usize,
    seed: u64,
) -> (Vec<OracleBenchRow>, String) {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 1000);
        let delta = workloads::theorem2_degree(n, epsilon);
        let g = workloads::regime_expander(n, delta, seed);
        let config = OracleConfig {
            policy: DetourPolicy::UniformShortest,
            seed: seed ^ 0xE17,
            ..OracleConfig::default()
        };
        let t0 = Instant::now();
        let oracle = Oracle::from_algo(&g, SpannerAlgo::Theorem2, config);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = oracle.index().stats();
        let matching = workloads::removed_edge_matching(&g, oracle.spanner());
        let pairs = matching.pairs().len().max(1);
        let served = queries.div_ceil(pairs) * pairs;
        for &t in threads {
            let Some((max_hops, congestion, elapsed)) =
                serve_cycles(&oracle, &matching, queries, t)
            else {
                continue;
            };
            rows.push(OracleBenchRow {
                n,
                delta,
                missing_edges: stats.missing_edges,
                index_entries: stats.two_hop_entries + stats.three_hop_entries,
                build_ms,
                threads: t,
                queries: served,
                qps: served as f64 / elapsed.max(1e-9),
                mean_latency_us: elapsed * 1e6 / served as f64,
                alpha_max: max_hops as f64,
                live_congestion: congestion,
                cache_hit_rate: oracle.stats().cache_hit_rate(),
            });
        }
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "missing",
        "idx entries",
        "build ms",
        "threads",
        "queries",
        "qps",
        "lat µs",
        "α(max)",
        "C(P')",
        "cache hit",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.missing_edges.to_string(),
            r.index_entries.to_string(),
            f2(r.build_ms),
            r.threads.to_string(),
            r.queries.to_string(),
            format!("{:.0}", r.qps),
            f2(r.mean_latency_us),
            f2(r.alpha_max),
            r.live_congestion.to_string(),
            f2(r.cache_hit_rate),
        ]);
    }
    let text = format!(
        "{}{}\nServing contract: α ≤ 3 on every indexed missing-edge query; \
         answers are bit-identical across thread counts for a fixed seed.\n",
        crate::banner("E17", "oracle serving: indexed substitute routing"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_serves_with_stretch_three() {
        let (rows, text) = run(&[64, 96], 0.18, &[1, 2], 200, 11);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.alpha_max <= 3.0, "n={}: α = {}", r.n, r.alpha_max);
            assert!(r.qps > 0.0);
            assert!(r.queries >= 200);
            assert!(r.live_congestion >= 1);
        }
        assert!(text.contains("E17"));
        assert!(text.contains("qps"));
    }

    #[test]
    fn congestion_and_alpha_agree_across_thread_counts() {
        let (rows, _) = run(&[64], 0.18, &[1, 4], 150, 3);
        assert_eq!(rows.len(), 2);
        // Same oracle, same query ids ⇒ same answers ⇒ same aggregate
        // measurements, regardless of pool width.
        assert_eq!(rows[0].alpha_max, rows[1].alpha_max);
        assert_eq!(rows[0].live_congestion, rows[1].live_congestion);
    }
}
