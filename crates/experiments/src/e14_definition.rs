//! **E14 — Definition 2 measured literally**: congestion stretch against
//! the (approximately) *optimal* congestion `C(R)`.
//!
//! Definition 2 compares `C_H(R)` with `C_G(R)` — optima over all
//! routings, not the congestion of one fixed routing. This experiment uses
//! the multiplicative-weights minimiser as the stand-in for both optima
//! and contrasts:
//!
//! * `β_def2 = C_H(R) / C_G(R)` — congestion-spanner quality with
//!   **unconstrained** path lengths,
//! * `β_dc = C(P') / C(P)` — the DC pipeline's quantity, where `P'` must
//!   also respect the distance stretch (paths ≤ 3 per hop).
//!
//! The DC-spanner definition is strictly stronger (Lemma 2's separation),
//! so `β_dc ≥ β_def2` is expected; the experiment shows both stay small on
//! the Theorem 3 spanner.

use crate::table::{f2, Table};
use crate::workloads;
use dcspan_core::eval::general_substitute_congestion;
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_routing::mincongestion::{approx_optimal_congestion, MinCongestionOptions};
use dcspan_routing::problem::RoutingProblem;
use dcspan_routing::replace::{DetourPolicy, SpannerDetourRouter};

/// One measured row.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E14Row {
    /// Nodes.
    pub n: usize,
    /// Routing pairs.
    pub k: usize,
    /// Approximate optimal congestion in `G`.
    pub c_g: u32,
    /// Approximate optimal congestion in `H` (unconstrained lengths).
    pub c_h: u32,
    /// `β_def2 = C_H(R) / C_G(R)`.
    pub beta_def2: f64,
    /// The DC pipeline's `C(P')/C(P)` (stretch-constrained substitute).
    pub beta_dc: f64,
}

/// Run over routing intensities on one Theorem 3 spanner.
pub fn run(n: usize, pair_counts: &[usize], seed: u64) -> (Vec<E14Row>, String) {
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, seed);
    let params = RegularSpannerParams::calibrated(n, delta);
    let sp = build_regular_spanner(&g, params, seed ^ 1);
    let router = SpannerDetourRouter::new(&sp.h, DetourPolicy::UniformUpTo3);
    let opts = MinCongestionOptions::default();
    let mut rows = Vec::new();
    for (i, &k) in pair_counts.iter().enumerate() {
        let problem = RoutingProblem::random_pairs(n, k, seed.wrapping_add(i as u64));
        let c_g = approx_optimal_congestion(&g, &problem, opts, seed ^ 2).expect("connected"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let c_h = approx_optimal_congestion(&sp.h, &problem, opts, seed ^ 3).expect("connected"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let (_, base) = workloads::pairs_base_routing(&g, k, seed.wrapping_add(i as u64) ^ 4);
        let dc = general_substitute_congestion(n, &base, &router, seed ^ 5).expect("routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        rows.push(E14Row {
            n,
            k,
            c_g,
            c_h,
            beta_def2: c_h as f64 / c_g.max(1) as f64,
            beta_dc: dc.beta(),
        });
    }
    let mut t = Table::new(["n", "k", "C_G(R)≈", "C_H(R)≈", "β_def2", "β_dc"]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.k.to_string(),
            r.c_g.to_string(),
            r.c_h.to_string(),
            f2(r.beta_def2),
            f2(r.beta_dc),
        ]);
    }
    let text = format!(
        "{}{}\nβ_def2 measures Definition 2 literally (optimal routings both sides); \
         β_dc additionally constrains the substitute's path lengths (Definition 3). \
         Both stay O(√Δ·log n)-bounded on the Theorem 3 spanner.\n",
        crate::banner(
            "E14",
            "Definition 2 measured against approximate optimal C(R)"
        ),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_betas_small_and_consistent() {
        let (rows, text) = run(96, &[20, 60], 7);
        for r in &rows {
            assert!(r.c_g >= 1 && r.c_h >= r.c_g.min(r.c_h));
            // The spanner can only increase optimal congestion.
            assert!(
                r.c_h + 1 >= r.c_g,
                "k={}: C_H {} < C_G {}?",
                r.k,
                r.c_h,
                r.c_g
            );
            let delta = crate::workloads::theorem3_degree(r.n) as f64;
            let envelope = 4.0 * delta.sqrt() * crate::workloads::log2n(r.n);
            assert!(
                r.beta_def2 <= envelope,
                "k={}: β_def2 = {}",
                r.k,
                r.beta_def2
            );
            assert!(r.beta_dc <= envelope, "k={}: β_dc = {}", r.k, r.beta_dc);
        }
        assert!(text.contains("E14"));
    }
}
