//! **E4 — Table 1, row "Theorem 3"**: Algorithm 1 on Δ-regular graphs
//! with `Δ ≥ n^{2/3}`.
//!
//! Paper claims: `O(n^{5/3} log² n)` edges, distance stretch 3 (whp),
//! matching-routing congestion `≤ 1 + 2√Δ` (Lemma 17), general congestion
//! stretch `O(√Δ · log n)`.

use crate::table::{f2, f3, Table};
use crate::workloads;
use dcspan_core::eval::{distance_stretch_edges, general_substitute_congestion};
use dcspan_core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan_routing::replace::{route_matching, DetourPolicy, SpannerDetourRouter};

/// One measured row of the Theorem 3 experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct E4Row {
    /// Nodes.
    pub n: usize,
    /// Degree (regime `Δ ≥ n^{2/3}`).
    pub delta: usize,
    /// `|E(G)|`.
    pub edges_g: usize,
    /// `|E(H)|`.
    pub edges_h: usize,
    /// Sampled edges `|E'|`.
    pub sampled: usize,
    /// Unsupported edges reinserted `|E''|`.
    pub reinserted: usize,
    /// Safe-mode reinsertion count (should be ~0: Lemma 15 says detours
    /// survive whp).
    pub safe_reinserted: usize,
    /// Max distance stretch over edges (paper: 3 whp).
    pub alpha: f64,
    /// Matching-routing congestion (paper Lemma 17: `≤ 1 + 2√Δ`).
    pub matching_congestion: u32,
    /// Lemma 17's bound `1 + 2√Δ`.
    pub lemma17_bound: f64,
    /// General congestion stretch β (paper: `O(√Δ·log n)`).
    pub general_beta: f64,
    /// `√Δ · log₂ n` for the β comparison.
    pub sqrt_delta_logn: f64,
}

/// Run the experiment over the given sizes with calibrated constants.
pub fn run(sizes: &[usize], seed: u64) -> (Vec<E4Row>, String) {
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = seed.wrapping_add(i as u64 * 7777);
        let delta = workloads::theorem3_degree(n);
        let g = workloads::regime_expander(n, delta, seed);
        let params = RegularSpannerParams::calibrated(n, delta);
        let sp = build_regular_spanner(&g, params, seed ^ 1);
        let router = SpannerDetourRouter::new(&sp.h, DetourPolicy::UniformUpTo3);

        let dist = distance_stretch_edges(&g, &sp.h, 8);
        let matching = workloads::removed_edge_matching(&g, &sp.h);
        let routing = route_matching(&router, &matching, seed ^ 2).expect("matching routable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable
        let matching_congestion = routing.congestion(n);

        let (_, base) = workloads::permutation_base_routing(&g, seed ^ 3);
        let general = general_substitute_congestion(n, &base, &router, seed ^ 4)
            .expect("general routing substitutable"); // xtask: allow(no_panic) — runner: infeasible experiment config is unrecoverable

        rows.push(E4Row {
            n,
            delta,
            edges_g: g.m(),
            edges_h: sp.h.m(),
            sampled: sp.num_sampled,
            reinserted: sp.num_reinserted,
            safe_reinserted: sp.num_safe_reinserted,
            alpha: dist
                .max_stretch
                .max(if dist.overflow_pairs > 0 { 9.0 } else { 0.0 }),
            matching_congestion,
            lemma17_bound: 1.0 + 2.0 * (delta as f64).sqrt(),
            general_beta: general.beta(),
            sqrt_delta_logn: (delta as f64).sqrt() * workloads::log2n(n),
        });
    }
    let mut t = Table::new([
        "n",
        "Δ",
        "|E(G)|",
        "|E(H)|",
        "|E'|",
        "|E''|",
        "safe",
        "α(max)",
        "C_match",
        "1+2√Δ",
        "β_general",
        "√Δ·log n",
    ]);
    for r in &rows {
        t.add_row([
            r.n.to_string(),
            r.delta.to_string(),
            r.edges_g.to_string(),
            r.edges_h.to_string(),
            r.sampled.to_string(),
            r.reinserted.to_string(),
            r.safe_reinserted.to_string(),
            f2(r.alpha),
            r.matching_congestion.to_string(),
            f2(r.lemma17_bound),
            f2(r.general_beta),
            f3(r.sqrt_delta_logn),
        ]);
    }
    let text = format!(
        "{}{}\nPaper: |E(H)| = O(n^5/3 log² n), α = 3 whp, matching congestion ≤ 1+2√Δ \
         (Lemma 17), general β = O(√Δ·log n). Constants calibrated (see DESIGN.md).\n",
        crate::banner("E4", "Table 1 row 'Theorem 3' (Algorithm 1, Δ-regular)"),
        t.render()
    );
    (rows, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_matches_paper_shape() {
        let (rows, text) = run(&[64, 96], 11);
        for r in &rows {
            assert!(r.alpha <= 3.0, "n={}: α = {}", r.n, r.alpha);
            assert!(r.edges_h < r.edges_g, "n={}: no sparsification", r.n);
            assert!(
                (r.matching_congestion as f64) <= r.lemma17_bound,
                "n={}: C = {} > {}",
                r.n,
                r.matching_congestion,
                r.lemma17_bound
            );
            assert!(
                r.general_beta <= 4.0 * r.sqrt_delta_logn,
                "n={}: β = {}",
                r.n,
                r.general_beta
            );
        }
        assert!(text.contains("Theorem 3"));
    }

    #[test]
    fn counts_accounting() {
        let (rows, _) = run(&[64], 3);
        let r = &rows[0];
        // |E(H)| ≤ |E'| + |E''| + safe (overlap: sampled unsupported edges
        // are counted in both E' and E'').
        assert!(r.edges_h <= r.sampled + r.reinserted + r.safe_reinserted);
        assert!(r.edges_h >= r.sampled.max(r.reinserted));
    }
}
