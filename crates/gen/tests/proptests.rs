//! Property-based tests for the graph generators and paper gadgets.

use dcspan_gen::fan::FanGraph;
use dcspan_gen::gnp::gnp;
use dcspan_gen::lemma2::Lemma2Graph;
use dcspan_gen::lower_bound::LowerBoundGraph;
use dcspan_gen::primes::{is_prime, next_prime};
use dcspan_gen::regular::{circulant_regular, random_regular, random_regular_configuration};
use dcspan_gen::setsystem::LineSystem;
use dcspan_gen::two_clique::TwoCliqueGraph;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_regular_is_exactly_regular(
        half_n in 5usize..30,
        delta in 2usize..8,
        seed in 0u64..200,
    ) {
        let n = 2 * half_n;
        let delta = delta.min(n - 2);
        let g = random_regular(n, delta, seed);
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.max_degree(), delta);
        prop_assert_eq!(g.m(), n * delta / 2);
    }

    #[test]
    fn configuration_model_matches_degree_sequence(
        half_n in 6usize..25,
        delta in 2usize..6,
        seed in 0u64..100,
    ) {
        let n = 2 * half_n;
        let delta = delta.min(n - 2);
        if let Some(g) = random_regular_configuration(n, delta, seed) {
            prop_assert!(g.is_regular());
            prop_assert_eq!(g.max_degree(), delta);
        }
    }

    #[test]
    fn circulant_matches_spec(half_n in 4usize..40, delta in 2usize..7) {
        let n = 2 * half_n;
        let delta = delta.min(n / 2 - 1).max(2);
        let g = circulant_regular(n, delta);
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.max_degree(), delta);
    }

    #[test]
    fn gnp_edges_within_range(n in 2usize..40, seed in 0u64..100) {
        let g = gnp(n, 0.5, seed);
        prop_assert!(g.m() <= n * (n - 1) / 2);
        prop_assert_eq!(g.n(), n);
    }

    #[test]
    fn fan_counts(k in 1usize..30) {
        let f = FanGraph::new(k);
        prop_assert_eq!(f.graph.n(), 2 * k + 2);
        prop_assert_eq!(f.graph.m(), 3 * k + 1);
        // The optimal spanner always removes exactly k edges.
        prop_assert_eq!(f.optimal_spanner().m(), 2 * k + 1);
        // Replacement paths are valid in the spanner.
        let h = f.optimal_spanner();
        for i in 1..=k {
            let p = dcspan_graph::Path::new(f.replacement_path(i));
            prop_assert!(p.is_valid_in(&h));
        }
    }

    #[test]
    fn lemma2_structure(pairs in 2usize..12, alpha in 2usize..6) {
        let g = Lemma2Graph::new(pairs, alpha);
        prop_assert_eq!(g.graph.n(), 2 * pairs + pairs * alpha);
        // H keeps exactly one matching edge.
        let h = g.spanner_h();
        let kept = (0..pairs).filter(|&i| h.has_edge(g.a(i), g.b(i))).count();
        prop_assert_eq!(kept, 1);
        // Detour path lengths are α + 1.
        for i in 0..pairs {
            prop_assert_eq!(g.detour_nodes(i).len(), alpha + 2);
        }
    }

    #[test]
    fn line_system_invariants(qi in 0usize..3, blocks in 1usize..4) {
        let q = [3usize, 5, 7][qi];
        let s = LineSystem::new(q, blocks);
        prop_assert_eq!(s.subsets().len(), s.num_elements());
        let freq = s.element_frequencies();
        prop_assert!(freq.iter().all(|&f| f == q));
        prop_assert!(s.verify_pairwise_intersections());
    }

    #[test]
    fn lower_bound_graph_edge_disjointness(qi in 0usize..2, blocks in 1usize..3) {
        let q = [5usize, 7][qi];
        let lb = LowerBoundGraph::new(q, blocks);
        // Edge-disjoint instances ⇒ exact edge count.
        prop_assert_eq!(lb.graph.m(), lb.instances * (3 * lb.k + 1));
        // Optimal spanner drops k per instance.
        prop_assert_eq!(lb.optimal_spanner().m(), lb.instances * (2 * lb.k + 1));
    }

    #[test]
    fn two_clique_regularity(half in 2usize..40) {
        let t = TwoCliqueGraph::new(half);
        prop_assert!(t.graph.is_regular());
        prop_assert_eq!(t.graph.max_degree(), half);
        prop_assert_eq!(t.graph.m(), half * (half - 1) + half);
    }

    #[test]
    fn next_prime_is_prime_and_minimal(n in 2u64..500) {
        let p = next_prime(n);
        prop_assert!(is_prime(p));
        prop_assert!(p >= n);
        // No prime strictly between n and p.
        for q in n..p {
            prop_assert!(!is_prime(q));
        }
    }
}
