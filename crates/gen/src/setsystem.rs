//! The **Lemma 19** set system, built deterministically from finite-field
//! lines.
//!
//! Lemma 19 (proved in the paper by the probabilistic method) asks for `n`
//! subsets of an `n`-element ground set, each of size `Θ(n^{1/6})`, such
//! that (i) every element lies in `Θ(n^{1/6})` subsets and (ii) any two
//! subsets share at most one element. We realise it *explicitly*: for a
//! prime `q`, the affine lines `{(x, ax + b) : x ∈ F_q}` of the plane
//! `F_q × F_q` form `q²` subsets of size `q` over `q²` points, every point
//! lies on exactly `q` lines (one per slope), and two distinct lines meet
//! in at most one point. Tiling `blocks` disjoint copies of the plane gives
//! a ground set and subset family of equal size `blocks · q²` — exactly the
//! shape Theorem 4 needs, with better constants than the probabilistic
//! argument.

use crate::primes::is_prime;

/// A Lemma-19-style set system: `blocks · q²` subsets of size `q` over
/// `blocks · q²` elements, pairwise intersecting in ≤ 1 element, every
/// element in exactly `q` subsets.
#[derive(Clone, Debug)]
pub struct LineSystem {
    /// Field size (prime) = subset size.
    pub q: usize,
    /// Number of disjoint plane copies.
    pub blocks: usize,
    subsets: Vec<Vec<u32>>,
}

impl LineSystem {
    /// Build the system. `q` must be prime and `blocks ≥ 1`.
    pub fn new(q: usize, blocks: usize) -> Self {
        assert!(is_prime(q as u64), "q = {q} must be prime");
        assert!(blocks >= 1);
        let plane = q * q;
        let mut subsets = Vec::with_capacity(blocks * plane);
        for block in 0..blocks {
            let base = (block * plane) as u32;
            for a in 0..q {
                for b in 0..q {
                    // Line y = a·x + b: point (x, y) has id base + x·q + y.
                    let line: Vec<u32> = (0..q)
                        .map(|x| base + (x * q + (a * x + b) % q) as u32)
                        .collect();
                    subsets.push(line);
                }
            }
        }
        LineSystem { q, blocks, subsets }
    }

    /// Number of ground-set elements (= number of subsets).
    pub fn num_elements(&self) -> usize {
        self.blocks * self.q * self.q
    }

    /// The subsets (each of size `q`).
    pub fn subsets(&self) -> &[Vec<u32>] {
        &self.subsets
    }

    /// How many subsets each element belongs to (should be exactly `q`).
    pub fn element_frequencies(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.num_elements()];
        for s in &self.subsets {
            for &e in s {
                freq[e as usize] += 1;
            }
        }
        freq
    }

    /// Verify property (ii) of Lemma 19 by brute force: all pairs of
    /// subsets share at most one element. Quadratic — test/diagnostic use.
    pub fn verify_pairwise_intersections(&self) -> bool {
        let sets: Vec<std::collections::BTreeSet<u32>> = self
            .subsets
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                if sets[i].intersection(&sets[j]).count() > 1 {
                    return false;
                }
            }
        }
        true
    }

    /// Choose parameters approximating the paper's shape for a target
    /// ground-set size `n`: `q` ≈ the prime nearest `(n/17)^{1/6}` rounded
    /// up, `blocks = max(1, n / q²)`.
    pub fn for_target_n(n: usize) -> Self {
        let target_q = ((n as f64 / 17.0).powf(1.0 / 6.0)).round().max(3.0) as u64;
        let q = crate::primes::next_prime(target_q) as usize;
        let blocks = (n / (q * q)).max(1);
        LineSystem::new(q, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_sizes() {
        let s = LineSystem::new(5, 3);
        assert_eq!(s.num_elements(), 75);
        assert_eq!(s.subsets().len(), 75);
        assert!(s.subsets().iter().all(|line| line.len() == 5));
    }

    #[test]
    fn every_element_in_exactly_q_subsets() {
        let s = LineSystem::new(7, 2);
        let freq = s.element_frequencies();
        assert!(freq.iter().all(|&f| f == 7));
    }

    #[test]
    fn pairwise_intersections_at_most_one() {
        for q in [3usize, 5, 7] {
            let s = LineSystem::new(q, 2);
            assert!(s.verify_pairwise_intersections(), "q = {q}");
        }
    }

    #[test]
    fn lines_stay_in_their_block() {
        let s = LineSystem::new(3, 4);
        for (idx, line) in s.subsets().iter().enumerate() {
            let block = idx / 9;
            let lo = (block * 9) as u32;
            let hi = lo + 9;
            assert!(line.iter().all(|&e| (lo..hi).contains(&e)));
        }
    }

    #[test]
    fn subsets_have_distinct_elements() {
        let s = LineSystem::new(5, 1);
        for line in s.subsets() {
            let mut sorted = line.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), line.len());
        }
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn rejects_composite_q() {
        let _ = LineSystem::new(6, 1);
    }

    #[test]
    fn for_target_n_shape() {
        let s = LineSystem::for_target_n(20_000);
        // (20000/17)^{1/6} ≈ 3.25 → q = 3 or 5, blocks ≈ n/q².
        assert!(s.q >= 3);
        assert!(s.num_elements() >= 5_000);
        let freq = s.element_frequencies();
        assert!(freq.iter().all(|&f| f == s.q));
    }
}
