//! The **zig-zag product** (Reingold–Vadhan–Wigderson) and the rotation
//! maps it is built on.
//!
//! The paper's expander results assume families like Ramanujan graphs
//! \[19, 20\]; zig-zag products are the other canonical way to manufacture
//! constant-degree expanders of arbitrary size, and make a good stress
//! generator: given a `D`-regular graph `G` on `n` nodes (with measured
//! expansion λ_G) and a `d`-regular graph `H` on `D` nodes, the product
//! `G ⓩ H` is a `d²`-regular graph on `n·D` nodes with normalised
//! expansion `λ̂(GⓏH) ≤ λ̂(G) + λ̂(H) + λ̂(H)²` — degree shrinks from `D`
//! to `d²` while expansion degrades additively.
//!
//! Implementation detail: products are defined on **rotation maps**
//! `Rot(v, i) = (w, j)` — edge `i` of `v` leads to `w`, arriving as `w`'s
//! edge `j`. [`RotationMap`] derives one from any regular [`Graph`].

use dcspan_graph::{Graph, GraphBuilder, NodeId};

/// A rotation map of a `D`-regular graph: a permutation on `V × [D]` with
/// `Rot(Rot(v, i)) = (v, i)`.
#[derive(Clone, Debug)]
pub struct RotationMap {
    n: usize,
    degree: usize,
    /// `rot[v * degree + i] = (w, j)`.
    rot: Vec<(NodeId, u32)>,
}

impl RotationMap {
    /// Build the canonical rotation map of a regular graph: port `i` of `v`
    /// is its `i`-th sorted neighbour, and the return port is the index of
    /// `v` in that neighbour's sorted list.
    ///
    /// # Panics
    /// Panics if `g` is not regular.
    pub fn from_graph(g: &Graph) -> Self {
        assert!(g.is_regular(), "rotation maps need a regular graph");
        let degree = g.max_degree();
        let n = g.n();
        let mut rot = vec![(0 as NodeId, 0u32); n * degree];
        for v in 0..n as NodeId {
            for (i, &w) in g.neighbors(v).iter().enumerate() {
                let j = g.neighbors(w).binary_search(&v).expect("mutual adjacency"); // xtask: allow(no_panic) — CSR adjacency is symmetric
                rot[v as usize * degree + i] = (w, j as u32);
            }
        }
        RotationMap { n, degree, rot }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The (uniform) degree `D`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// `Rot(v, i) = (w, j)`.
    #[inline]
    pub fn rot(&self, v: NodeId, i: usize) -> (NodeId, u32) {
        debug_assert!(i < self.degree);
        self.rot[v as usize * self.degree + i]
    }

    /// Check the involution property `Rot(Rot(v, i)) = (v, i)`.
    pub fn is_involution(&self) -> bool {
        (0..self.n as NodeId).all(|v| {
            (0..self.degree).all(|i| {
                let (w, j) = self.rot(v, i);
                self.rot(w, j as usize) == (v, i as u32)
            })
        })
    }
}

/// The **replacement product** `G ⓡ H`: every node of `G` (D-regular)
/// blows up into a copy of `H` (d-regular on D nodes); "cloud" edges are
/// H's edges, "bridge" edges connect port `i` of `v`'s cloud to port `j`
/// of `w`'s cloud whenever `Rot_G(v, i) = (w, j)`. Result: `(d+1)`-regular
/// on `n·D` nodes.
pub fn replacement_product(g: &Graph, h: &Graph) -> Graph {
    let rg = RotationMap::from_graph(g);
    assert_eq!(h.n(), rg.degree(), "H must have exactly D = deg(G) nodes");
    let d_big = rg.degree();
    let n_out = g.n() * d_big;
    let id = |v: NodeId, i: usize| (v as usize * d_big + i) as NodeId;
    let mut b = GraphBuilder::new(n_out);
    // Cloud edges.
    for v in 0..g.n() as NodeId {
        for e in h.edges() {
            b.add_edge(id(v, e.u as usize), id(v, e.v as usize));
        }
    }
    // Bridge edges.
    for v in 0..g.n() as NodeId {
        for i in 0..d_big {
            let (w, j) = rg.rot(v, i);
            if (v, i as u32) < (w, j) {
                b.add_edge(id(v, i), id(w, j as usize));
            }
        }
    }
    b.build()
}

/// The **zig-zag product** `G ⓩ H` as a simple graph: vertices `V(G)×[D]`;
/// for every pair of H-ports `(a, b)`, vertex `(v, i)` connects to
/// `(w, j)` where `i' = Rot_H-step(i, a)` (a neighbour step in `H`),
/// `(w, j') = Rot_G(v, i')` (the bridge), and `j = neighbour step of j'`
/// via `b` in `H`. The multigraph is `d²`-regular; we return the
/// underlying simple graph (degrees ≤ d², expansion preserved up to the
/// usual simple-graph collapse).
pub fn zigzag_product(g: &Graph, h: &Graph) -> Graph {
    let rg = RotationMap::from_graph(g);
    assert!(h.is_regular(), "H must be regular");
    assert_eq!(h.n(), rg.degree(), "H must have exactly D = deg(G) nodes");
    let d_big = rg.degree();
    let d = h.max_degree();
    let n_out = g.n() * d_big;
    let id = |v: NodeId, i: u32| (v as usize * d_big + i as usize) as NodeId;
    let mut b = GraphBuilder::with_capacity(n_out, n_out * d * d / 2);
    for v in 0..g.n() as NodeId {
        for i in 0..d_big as u32 {
            // Zig: move inside v's cloud along H.
            for &i_prime in h.neighbors(i) {
                // Bridge: follow G's rotation map.
                let (w, j_prime) = rg.rot(v, i_prime as usize);
                // Zag: move inside w's cloud along H.
                for &j in h.neighbors(j_prime) {
                    let from = id(v, i);
                    let to = id(w, j);
                    if from < to {
                        b.add_edge(from, to);
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{complete, cycle};
    use crate::regular::random_regular;
    use dcspan_graph::traversal::is_connected;

    #[test]
    fn rotation_map_is_involution() {
        for g in [cycle(6), complete(5), random_regular(20, 4, 1)] {
            let r = RotationMap::from_graph(&g);
            assert!(r.is_involution());
            assert_eq!(r.n(), g.n());
            assert_eq!(r.degree(), g.max_degree());
        }
    }

    #[test]
    #[should_panic(expected = "regular")]
    fn rotation_map_rejects_irregular() {
        let g = Graph::from_edges(3, vec![(0, 1)]);
        let _ = RotationMap::from_graph(&g);
    }

    #[test]
    fn replacement_product_shape() {
        // G: 4-regular on 10 nodes; H: cycle C4 (2-regular on 4 nodes).
        let g = random_regular(10, 4, 2);
        let h = cycle(4);
        let rp = replacement_product(&g, &h);
        assert_eq!(rp.n(), 40);
        // (d+1)-regular = 3-regular.
        assert!(rp.is_regular());
        assert_eq!(rp.max_degree(), 3);
        assert!(is_connected(&rp));
    }

    #[test]
    fn zigzag_product_shape() {
        // G: 4-regular on 12 nodes; H: K4 (3-regular, non-bipartite — a
        // bipartite H like C4 has λ̂ = 1 and the RVW bound degenerates,
        // which can genuinely disconnect the product). Z: ≤ 9-regular on 48.
        let g = random_regular(12, 4, 3);
        let h = complete(4);
        let z = zigzag_product(&g, &h);
        assert_eq!(z.n(), 48);
        assert!(z.max_degree() <= 9);
        assert!(is_connected(&z));
    }

    #[test]
    fn zigzag_degree_reduction_preserves_expansion() {
        // G: 16-regular random expander on 64 nodes (λ̂ small);
        // H: 4-regular random expander on 16 nodes.
        let g = random_regular(64, 16, 4);
        let h = random_regular(16, 4, 5);
        let z = zigzag_product(&g, &h);
        assert_eq!(z.n(), 64 * 16);
        assert!(z.max_degree() <= 16); // d² = 16 ports, fewer after collapse
        assert!(is_connected(&z));
        let lam_g = dcspan_spectral::expansion::normalized_expansion(&g, 6);
        let lam_h = dcspan_spectral::expansion::normalized_expansion(&h, 7);
        let lam_z = dcspan_spectral::expansion::normalized_expansion(&z, 8);
        // RVW bound (for the d²-regular multigraph): λ̂_Z ≤ λ̂_G + λ̂_H + λ̂_H².
        // The simple-graph collapse perturbs this; allow 20% slack.
        let bound = lam_g + lam_h + lam_h * lam_h;
        assert!(
            lam_z <= 1.2 * bound + 0.05,
            "λ̂_Z = {lam_z:.3} vs RVW bound {bound:.3} (λ̂_G = {lam_g:.3}, λ̂_H = {lam_h:.3})"
        );
        // And the product is genuinely an expander, not just connected.
        assert!(lam_z < 0.95, "λ̂_Z = {lam_z}");
    }

    use dcspan_graph::Graph;
}
