//! # dcspan-gen
//!
//! Graph generators for the `dcspan` workspace. Two kinds:
//!
//! * **Workload families** the paper's theorems quantify over — random
//!   Δ-regular graphs ([`regular`], near-Ramanujan whp, standing in for the
//!   Ramanujan graphs of \[19, 20\]), Erdős–Rényi graphs ([`gnp`]),
//!   Gabber–Galil/Margulis expanders and classic topologies ([`margulis`],
//!   [`classic`]).
//! * **Constructions lifted verbatim from the paper** — the two-cliques
//!   graph of Figure 1 ([`two_clique`]), the Lemma 2 separation gadget
//!   ([`lemma2`]), the Lemma 18 "fan" lower-bound gadget ([`fan`]), the
//!   Lemma 19 near-disjoint set system ([`setsystem`]), and the Theorem 4
//!   composite lower-bound graph ([`lower_bound`]).
//!
//! All generators take explicit seeds and are deterministic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod classic;
pub mod fan;
pub mod gnp;
pub mod lemma2;
pub mod lower_bound;
pub mod margulis;
pub mod primes;
pub mod regular;
pub mod setsystem;
pub mod two_clique;
pub mod zigzag;

pub use fan::FanGraph;
pub use lemma2::Lemma2Graph;
pub use lower_bound::LowerBoundGraph;
pub use setsystem::LineSystem;
pub use two_clique::TwoCliqueGraph;
