//! The **Theorem 4** composite lower-bound graph.
//!
//! The graph is the edge-disjoint union of `N` fan gadgets (Lemma 18):
//! each instance `I_i` has its own special node `s_i` and draws its
//! `2k + 1` line nodes from a shared pool via the Lemma 19 set system
//! (subsets pairwise share ≤ 1 node, so the instances are edge-disjoint).
//! Any optimal-size 3-distance spanner of this graph must, inside every
//! instance, drop one line edge per face — and every replacement path then
//! crosses that instance's `s_i`, forcing congestion stretch `Ω(n^{1/6})`.
//!
//! We instantiate the set system with subset size `q = 2k + 1` (an odd
//! prime), so each subset is exactly one fan's line.

use crate::fan::FanGraph;
use crate::primes::is_prime;
use crate::setsystem::LineSystem;
use dcspan_graph::{Edge, Graph, GraphBuilder, NodeId};

/// The Theorem 4 composite graph together with per-instance bookkeeping.
#[derive(Clone, Debug)]
pub struct LowerBoundGraph {
    /// The composite graph `G`.
    pub graph: Graph,
    /// Faces per instance: `k = (q − 1) / 2`.
    pub k: usize,
    /// Line nodes per instance: `q = 2k + 1` (prime).
    pub q: usize,
    /// Number of fan instances (= number of pool nodes).
    pub instances: usize,
    /// `lines[i]` = ordered line nodes of instance `i` (pool node ids).
    lines: Vec<Vec<NodeId>>,
}

impl LowerBoundGraph {
    /// Build with `q = 2k + 1` an odd prime and `blocks ≥ 1` plane copies:
    /// `blocks · q²` instances over `blocks · q²` pool nodes plus one
    /// special node per instance (`n = 2 · blocks · q²` total nodes).
    pub fn new(q: usize, blocks: usize) -> Self {
        assert!(
            q >= 3 && q % 2 == 1 && is_prime(q as u64),
            "q must be an odd prime ≥ 3"
        );
        let k = (q - 1) / 2;
        let system = LineSystem::new(q, blocks);
        let pool = system.num_elements();
        let instances = system.subsets().len();
        let n = pool + instances;
        let mut b = GraphBuilder::with_capacity(n, instances * (3 * k + 1));
        let mut lines = Vec::with_capacity(instances);
        for (i, subset) in system.subsets().iter().enumerate() {
            let s = (pool + i) as NodeId;
            let line: Vec<NodeId> = subset.clone();
            // Line edges along the subset's construction order.
            for w in line.windows(2) {
                b.add_edge(w[0], w[1]);
            }
            // Ray edges from s_i to odd-indexed line nodes a_1, a_3, …
            // (0-based positions 0, 2, …, 2k).
            for j in 0..=k {
                b.add_edge(s, line[2 * j]);
            }
            lines.push(line);
        }
        LowerBoundGraph {
            graph: b.build(),
            k,
            q,
            instances,
            lines,
        }
    }

    /// Parameters matching the paper's target shape for ground-set size `n`.
    pub fn for_target_n(n: usize) -> Self {
        let target_q = ((n as f64 / 17.0).powf(1.0 / 6.0)).round().max(3.0) as u64;
        // q must be odd: next_prime ≥ 3 is odd.
        let q = crate::primes::next_prime(target_q.max(3)) as usize;
        let blocks = (n / (q * q)).max(1);
        LowerBoundGraph::new(q, blocks)
    }

    /// The special node of instance `i`.
    pub fn special(&self, i: usize) -> NodeId {
        assert!(i < self.instances);
        (self.pool_size() + i) as NodeId
    }

    /// Number of shared pool (line) nodes.
    pub fn pool_size(&self) -> usize {
        self.graph.n() - self.instances
    }

    /// Ordered line nodes of instance `i`.
    pub fn line(&self, i: usize) -> &[NodeId] {
        &self.lines[i]
    }

    /// The edges removed by the optimal 3-distance spanner inside instance
    /// `i`: the first line edge of each of its `k` faces.
    pub fn removed_edges(&self, i: usize) -> Vec<Edge> {
        let line = &self.lines[i];
        (1..=self.k)
            .map(|f| Edge::new(line[2 * f - 2], line[2 * f - 1]))
            .collect()
    }

    /// The optimal-size 3-distance spanner `H` of the composite graph
    /// (applies the per-instance face removal everywhere).
    pub fn optimal_spanner(&self) -> Graph {
        let mut removed: dcspan_graph::FxHashSet<Edge> = dcspan_graph::FxHashSet::default();
        for i in 0..self.instances {
            removed.extend(self.removed_edges(i));
        }
        self.graph.filter_edges(|_, e| !removed.contains(&e))
    }

    /// The adversarial routing pairs of instance `i` (endpoints of its
    /// removed line edges).
    pub fn adversarial_routing_pairs(&self, i: usize) -> Vec<(NodeId, NodeId)> {
        self.removed_edges(i)
            .into_iter()
            .map(|e| (e.u, e.v))
            .collect()
    }

    /// The canonical 3-hop replacement path in `H` for the `f`-th removed
    /// edge of instance `i`: `a_{2f−1} → s_i → a_{2f+1} → a_{2f}`.
    pub fn replacement_path(&self, i: usize, f: usize) -> Vec<NodeId> {
        assert!((1..=self.k).contains(&f));
        let line = &self.lines[i];
        vec![
            line[2 * f - 2],
            self.special(i),
            line[2 * f],
            line[2 * f - 1],
        ]
    }

    /// A standalone fan gadget with the same `k` (for single-instance
    /// experiments).
    pub fn standalone_fan(&self) -> FanGraph {
        FanGraph::new(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::traversal::distance;
    use dcspan_graph::Path;

    #[test]
    fn counts_match_theorem4() {
        let g = LowerBoundGraph::new(5, 2);
        // q = 5 → k = 2; instances = 2·25 = 50; pool = 50; n = 100.
        assert_eq!(g.k, 2);
        assert_eq!(g.instances, 50);
        assert_eq!(g.pool_size(), 50);
        assert_eq!(g.graph.n(), 100);
        // Edge-disjoint instances: m = instances · (3k + 1).
        assert_eq!(g.graph.m(), 50 * 7);
    }

    #[test]
    fn instances_are_edge_disjoint() {
        // If any two instances shared an edge the builder would have
        // deduplicated it and m would fall short; also check directly that
        // two instances share ≤ 1 line node.
        let g = LowerBoundGraph::new(5, 1);
        assert_eq!(g.graph.m(), g.instances * (3 * g.k + 1));
        for i in 0..5 {
            for j in i + 1..5 {
                let a: std::collections::BTreeSet<_> = g.line(i).iter().collect();
                let shared = g.line(j).iter().filter(|x| a.contains(x)).count();
                assert!(shared <= 1, "instances {i},{j} share {shared} nodes");
            }
        }
    }

    #[test]
    fn special_nodes_have_ray_degree() {
        let g = LowerBoundGraph::new(7, 1);
        for i in 0..g.instances {
            assert_eq!(g.graph.degree(g.special(i)), g.k + 1);
        }
    }

    #[test]
    fn optimal_spanner_is_3_distance_spanner() {
        let g = LowerBoundGraph::new(5, 1);
        let h = g.optimal_spanner();
        assert_eq!(h.m(), g.graph.m() - g.instances * g.k);
        for i in 0..g.instances {
            for (f, e) in g.removed_edges(i).iter().enumerate() {
                assert!(!h.has_edge(e.u, e.v));
                let d = distance(&h, e.u, e.v).unwrap();
                assert!(d <= 3, "instance {i} edge {f}: distance {d}");
                let p = Path::new(g.replacement_path(i, f + 1));
                assert!(p.is_valid_in(&h));
                assert_eq!(p.source(), e.u);
                assert_eq!(p.destination(), e.v);
            }
        }
    }

    #[test]
    fn spanner_edge_count_is_omega_n_to_7_6() {
        // Shape check: |E(H)| = instances · (2k + 1) = Θ(n · k) with
        // k = Θ(n^{1/6}) when blocks ≈ n / q².
        let g = LowerBoundGraph::new(5, 3);
        let h = g.optimal_spanner();
        assert_eq!(h.m(), g.instances * (2 * g.k + 1));
    }

    #[test]
    fn pool_degree_bounded_by_3q() {
        // Each pool node is in exactly q instances, contributing ≤ 3 edges
        // each (2 line + 1 ray).
        let g = LowerBoundGraph::new(5, 2);
        for u in 0..g.pool_size() as NodeId {
            assert!(
                g.graph.degree(u) <= 3 * g.q,
                "node {u}: {}",
                g.graph.degree(u)
            );
            assert!(g.graph.degree(u) >= 1);
        }
    }

    #[test]
    fn for_target_n_builds() {
        let g = LowerBoundGraph::for_target_n(2_000);
        assert!(g.graph.n() >= 1_000);
        assert!(g.k >= 1);
    }
}
