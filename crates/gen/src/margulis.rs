//! Gabber–Galil (Margulis-type) explicit expanders.
//!
//! The vertex set is `Z_m × Z_m` and each vertex `(x, y)` is joined to
//!
//! ```text
//! (x, x+y)   (x, x+y+1)   (x+y, y)   (x+y+1, y)          (mod m)
//! ```
//!
//! and to the preimages of these maps (i.e. edges are undirected). The
//! resulting 8-regular multigraph has second eigenvalue `λ ≤ 5√2 ≈ 7.07`
//! (Gabber & Galil 1981). We return the underlying simple graph, whose
//! degrees are ≤ 8 (slightly lower near fixed points of the maps); the
//! spectral gap is preserved up to those boundary effects and is verified
//! empirically in `dcspan-spectral` tests.
//!
//! This is the workspace's *deterministic* expander family, complementing
//! the random regular graphs of [`crate::regular`].

use dcspan_graph::{Graph, GraphBuilder};

/// The Gabber–Galil expander on `m²` nodes. Node `(x, y)` has id `x·m + y`.
pub fn gabber_galil(m: usize) -> Graph {
    assert!(m >= 2, "torus side must be ≥ 2");
    let n = m * m;
    let mut b = GraphBuilder::with_capacity(n, 4 * n);
    let id = |x: usize, y: usize| (x * m + y) as u32;
    for x in 0..m {
        for y in 0..m {
            let u = id(x, y);
            let images = [
                id(x, (x + y) % m),
                id(x, (x + y + 1) % m),
                id((x + y) % m, y),
                id((x + y + 1) % m, y),
            ];
            for w in images {
                if w != u {
                    b.add_edge(u, w);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::traversal::is_connected;

    #[test]
    fn size_and_degree_bounds() {
        let g = gabber_galil(11);
        assert_eq!(g.n(), 121);
        assert!(g.max_degree() <= 8);
        // Most nodes should have degree close to 8.
        let high = (0..g.n()).filter(|&u| g.degree(u as u32) >= 6).count();
        assert!(high * 2 > g.n(), "too many degenerate nodes");
    }

    #[test]
    fn connected_for_various_sizes() {
        for m in [3, 5, 8, 13] {
            assert!(is_connected(&gabber_galil(m)), "m = {m}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(gabber_galil(7), gabber_galil(7));
    }

    #[test]
    fn logarithmic_diameter() {
        // An expander has O(log n) diameter; for m = 16 (n = 256) the
        // diameter should be far below the grid's Θ(m).
        let g = gabber_galil(16);
        let d = dcspan_graph::traversal::diameter(&g).unwrap();
        assert!(
            d <= 10,
            "diameter {d} too large for an expander on 256 nodes"
        );
    }
}
