//! The two-cliques graph of **Figure 1** of the paper.
//!
//! Two cliques `C_A` and `C_B` of size `n/2` each, inter-connected by a
//! perfect matching (`a_i ↔ b_i`). The paper uses it to show that vertex
//! fault-tolerant spanners do **not** control congestion: an f-VFT spanner
//! for `f = ⌈n^{1/3}⌉` may keep only `⌈n^{1/3}⌉ + 1` matching edges, and
//! then the perfect-matching routing problem forces congestion
//! `Ω(n^{2/3})` on some kept matching endpoint.

use dcspan_graph::{Graph, GraphBuilder, NodeId};

/// The Figure-1 graph together with its role bookkeeping.
#[derive(Clone, Debug)]
pub struct TwoCliqueGraph {
    /// The full graph `G`.
    pub graph: Graph,
    /// Clique size `h = n/2`; `A = 0..h`, `B = h..2h`, `a_i ↔ b_i = a_i + h`.
    pub half: usize,
}

impl TwoCliqueGraph {
    /// Build the graph for clique size `half` (total `n = 2·half` nodes).
    pub fn new(half: usize) -> Self {
        assert!(half >= 2, "need at least 2 nodes per clique");
        let n = 2 * half;
        let mut b = GraphBuilder::with_capacity(n, half * (half - 1) + half);
        for i in 0..half as u32 {
            for j in i + 1..half as u32 {
                b.add_edge(i, j); // clique A
                b.add_edge(half as u32 + i, half as u32 + j); // clique B
            }
        }
        for i in 0..half as u32 {
            b.add_edge(i, half as u32 + i); // perfect matching
        }
        TwoCliqueGraph {
            graph: b.build(),
            half,
        }
    }

    /// Node `a_i`.
    pub fn a(&self, i: usize) -> NodeId {
        assert!(i < self.half);
        i as NodeId
    }

    /// Node `b_i`.
    pub fn b(&self, i: usize) -> NodeId {
        assert!(i < self.half);
        (self.half + i) as NodeId
    }

    /// The perfect-matching routing pairs `(a_i, b_i)` for all `i` — the
    /// adversarial routing problem of Figure 1.
    pub fn matching_routing_pairs(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.half).map(|i| (self.a(i), self.b(i))).collect()
    }

    /// The matching edges as edge ids in `graph`.
    pub fn matching_edge_ids(&self) -> Vec<usize> {
        (0..self.half)
            .map(|i| {
                self.graph
                    .edge_id(self.a(i), self.b(i))
                    // xtask: allow(no_panic) — matching edges are constructed in `graph`
                    .expect("matching edge exists")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::traversal::{diameter, is_connected};

    #[test]
    fn structure() {
        let t = TwoCliqueGraph::new(5);
        let g = &t.graph;
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 2 * (5 * 4 / 2) + 5);
        assert!(is_connected(g));
        assert_eq!(diameter(g), Some(2)); // a_i → b_j goes a_i → a_j → b_j
    }

    #[test]
    fn roles_and_matching() {
        let t = TwoCliqueGraph::new(4);
        assert_eq!(t.a(2), 2);
        assert_eq!(t.b(2), 6);
        assert!(t.graph.has_edge(t.a(2), t.b(2)));
        assert!(!t.graph.has_edge(t.a(2), t.b(3)));
        assert_eq!(t.matching_routing_pairs().len(), 4);
        assert_eq!(t.matching_edge_ids().len(), 4);
    }

    #[test]
    fn degrees() {
        let t = TwoCliqueGraph::new(6);
        // Every node: clique degree (h−1) + 1 matching edge.
        assert!(t.graph.is_regular());
        assert_eq!(t.graph.max_degree(), 6);
    }
}
