//! Tiny prime utilities for the finite-field line construction of
//! [`crate::setsystem`].

/// Deterministic primality test by trial division (fine for the small
/// moduli used by the set-system construction).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Smallest prime `≥ n` (for `n ≥ 2`; returns 2 for smaller inputs).
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.max(2);
    while !is_prime(candidate) {
        candidate += 1;
    }
    candidate
}

/// Largest prime `≤ n`, or `None` if `n < 2`.
pub fn prev_prime(n: u64) -> Option<u64> {
    let mut candidate = n;
    while candidate >= 2 {
        if is_prime(candidate) {
            return Some(candidate);
        }
        candidate -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn next_prime_values() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(90), 97);
    }

    #[test]
    fn prev_prime_values() {
        assert_eq!(prev_prime(1), None);
        assert_eq!(prev_prime(2), Some(2));
        assert_eq!(prev_prime(10), Some(7));
        assert_eq!(prev_prime(97), Some(97));
    }

    #[test]
    fn larger_composite() {
        assert!(!is_prime(7919 * 7927));
        assert!(is_prime(7919));
    }
}
