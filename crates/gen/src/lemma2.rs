//! The **Lemma 2** separation gadget.
//!
//! Lemma 2 of the paper shows that being an α-distance-spanner *and* a
//! β-congestion-spanner does not imply being an (α, β)-DC-spanner. The
//! witness graph `G` consists of:
//!
//! * `A = {a_1, …, a_n}` and `B = {b_1, …, b_n}`, each inducing a clique,
//! * a perfect matching `M = {(a_i, b_i)}`,
//! * for each `i`, a detour path `a_i, d_{i,1}, …, d_{i,α}, b_i` of length
//!   `α + 1` (one hop *longer* than the stretch budget — the paper states
//!   α−1 interior nodes but calls the detour "(α+1)-length"; the lemma's
//!   funnel argument needs the latter, so we use α interior nodes).
//!
//! The spanner `H` removes all matching edges except `(a_1, b_1)`. `H` is a
//! 3-distance spanner and a 2-congestion spanner, but for the matching
//! routing problem `R = {(a_i, b_i)}` every routing in `H` that uses short
//! paths funnels through the single surviving matching edge, giving
//! congestion stretch `Ω(n)`.

use dcspan_graph::{Graph, GraphBuilder, NodeId};

/// The Lemma 2 gadget with its role bookkeeping.
#[derive(Clone, Debug)]
pub struct Lemma2Graph {
    /// The full graph `G`.
    pub graph: Graph,
    /// Number of matched pairs `n`.
    pub pairs: usize,
    /// Distance-stretch parameter α (detour paths have α interior nodes,
    /// i.e. length α+1 — inadmissible as an α-stretch substitute).
    pub alpha: usize,
}

impl Lemma2Graph {
    /// Build the gadget: `pairs` matched pairs, detours with `alpha`
    /// interior nodes (`alpha ≥ 2`).
    pub fn new(pairs: usize, alpha: usize) -> Self {
        assert!(pairs >= 2, "need at least two matched pairs");
        assert!(alpha >= 2, "alpha must be ≥ 2");
        let interior = alpha;
        let n_nodes = 2 * pairs + pairs * interior;
        let mut b = GraphBuilder::new(n_nodes);
        let a = |i: usize| i as NodeId;
        let bb = |i: usize| (pairs + i) as NodeId;
        let d = |i: usize, j: usize| (2 * pairs + i * interior + j) as NodeId;
        // Cliques on A and B.
        for i in 0..pairs as u32 {
            for j in i + 1..pairs as u32 {
                b.add_edge(a(i as usize), a(j as usize));
                b.add_edge(bb(i as usize), bb(j as usize));
            }
        }
        // Perfect matching and detour paths.
        for i in 0..pairs {
            b.add_edge(a(i), bb(i));
            b.add_edge(a(i), d(i, 0));
            for j in 0..interior - 1 {
                b.add_edge(d(i, j), d(i, j + 1));
            }
            b.add_edge(d(i, interior - 1), bb(i));
        }
        Lemma2Graph {
            graph: b.build(),
            pairs,
            alpha,
        }
    }

    /// Node `a_i` (0-based).
    pub fn a(&self, i: usize) -> NodeId {
        assert!(i < self.pairs);
        i as NodeId
    }

    /// Node `b_i` (0-based).
    pub fn b(&self, i: usize) -> NodeId {
        assert!(i < self.pairs);
        (self.pairs + i) as NodeId
    }

    /// Node `d_{i,j}` (0-based interior index `j < alpha`).
    pub fn d(&self, i: usize, j: usize) -> NodeId {
        assert!(i < self.pairs && j < self.alpha);
        (2 * self.pairs + i * self.alpha + j) as NodeId
    }

    /// The spanner `H`: all of `G` except the matching edges `(a_i, b_i)`
    /// for `i ≥ 1` (only `(a_0, b_0)` survives).
    pub fn spanner_h(&self) -> Graph {
        let removed: dcspan_graph::FxHashSet<(NodeId, NodeId)> =
            (1..self.pairs).map(|i| (self.a(i), self.b(i))).collect();
        self.graph
            .filter_edges(|_, e| !removed.contains(&(e.u, e.v)))
    }

    /// The adversarial matching routing problem `R = {(a_i, b_i)}`.
    pub fn matching_routing_pairs(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.pairs).map(|i| (self.a(i), self.b(i))).collect()
    }

    /// The detour path for pair `i` as a node sequence
    /// `a_i, d_{i,1}, …, d_{i,α}, b_i` (length α + 1).
    pub fn detour_nodes(&self, i: usize) -> Vec<NodeId> {
        let mut nodes = vec![self.a(i)];
        for j in 0..self.alpha {
            nodes.push(self.d(i, j));
        }
        nodes.push(self.b(i));
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::traversal::{distance, is_connected};
    use dcspan_graph::Path;

    #[test]
    fn structure_counts() {
        let g = Lemma2Graph::new(4, 3);
        // Nodes: 2·4 + 4·3 = 20. Edges: 2·C(4,2) + 4 matching + 4·4 detour.
        assert_eq!(g.graph.n(), 20);
        assert_eq!(g.graph.m(), 2 * 6 + 4 + 4 * 4);
        assert!(is_connected(&g.graph));
    }

    #[test]
    fn detour_paths_valid_and_have_length_alpha() {
        let g = Lemma2Graph::new(3, 4);
        for i in 0..3 {
            let p = Path::new(g.detour_nodes(i));
            assert!(p.is_valid_in(&g.graph));
            assert_eq!(p.len(), 5); // α + 1 with α = 4
            assert_eq!(p.source(), g.a(i));
            assert_eq!(p.destination(), g.b(i));
        }
    }

    #[test]
    fn spanner_h_is_three_distance_spanner_on_matching() {
        let g = Lemma2Graph::new(5, 3);
        let h = g.spanner_h();
        assert!(h.is_subgraph_of(&g.graph));
        assert_eq!(h.m(), g.graph.m() - (5 - 1));
        // Removed matching edges have 3-hop substitutes via (a_0, b_0).
        for i in 1..5 {
            assert!(!h.has_edge(g.a(i), g.b(i)));
            assert_eq!(distance(&h, g.a(i), g.b(i)), Some(3));
        }
        assert_eq!(distance(&h, g.a(0), g.b(0)), Some(1));
    }

    #[test]
    fn alpha_two_minimal_detours() {
        let g = Lemma2Graph::new(3, 2);
        // Two interior nodes per detour: a_i - d_{i,0} - d_{i,1} - b_i.
        assert_eq!(g.detour_nodes(1).len(), 4);
        assert!(g.graph.has_edge(g.a(1), g.d(1, 0)));
        assert!(g.graph.has_edge(g.d(1, 0), g.d(1, 1)));
        assert!(g.graph.has_edge(g.d(1, 1), g.b(1)));
    }

    #[test]
    fn roles_are_disjoint() {
        let g = Lemma2Graph::new(4, 3);
        let mut all = vec![];
        for i in 0..4 {
            all.push(g.a(i));
            all.push(g.b(i));
            for j in 0..3 {
                all.push(g.d(i, j));
            }
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), g.graph.n());
    }
}
