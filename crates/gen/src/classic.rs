//! Deterministic classic topologies: complete graphs, cycles, paths, grids,
//! hypercubes, complete bipartite graphs, circulants.
//!
//! These serve as fixtures for tests and as degenerate/extreme inputs for
//! the spanner algorithms (e.g. `K_n` is the densest Δ-regular graph, the
//! hypercube is a weak expander, circulants are the regular-graph seed for
//! the rewiring model in [`crate::regular`]).

use dcspan_graph::{Graph, GraphBuilder};

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * (n.saturating_sub(1)) / 2);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            b.add_edge(i, j);
        }
    }
    b.build()
}

/// Cycle `C_n` (requires `n ≥ 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    Graph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// Path `P_n` on `n` nodes (`n ≥ 1`).
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    Graph::from_edges(n, (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)))
}

/// 2-D grid `rows × cols`, nodes indexed row-major.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes; `d`-regular.
pub fn hypercube(d: usize) -> Graph {
    assert!(d < 28, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::with_capacity(n, n * d / 2);
    for u in 0..n as u32 {
        for bit in 0..d {
            let w = u ^ (1u32 << bit);
            if u < w {
                b.add_edge(u, w);
            }
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}` (left = `0..a`, right = `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::with_capacity(a + b, a * b);
    for l in 0..a as u32 {
        for r in 0..b as u32 {
            builder.add_edge(l, a as u32 + r);
        }
    }
    builder.build()
}

/// Circulant graph: node `i` adjacent to `i ± s (mod n)` for each stride
/// `s` in `strides`. Exactly `2·|strides|`-regular when all strides are
/// distinct, non-zero, and `≠ n/2`; the stride `n/2` contributes degree 1.
pub fn circulant(n: usize, strides: &[usize]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &s in strides {
        assert!(s > 0 && s < n, "stride {s} out of range for n = {n}");
        for i in 0..n {
            let j = (i + s) % n;
            b.add_edge(i as u32, j as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::traversal::{diameter, is_connected};

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 5);
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn cycle_counts() {
        let g = cycle(7);
        assert_eq!(g.m(), 7);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 2);
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn path_counts() {
        let g = path(5);
        assert_eq!(g.m(), 4);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(path(1).m(), 0);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(2 + 3));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.m(), 32);
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn circulant_regularity() {
        let g = circulant(10, &[1, 2]);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.m(), 20);
        // Stride n/2 folds onto itself: degree contribution 1.
        let h = circulant(10, &[5]);
        assert!(h.is_regular());
        assert_eq!(h.max_degree(), 1);
    }
}
