//! The **Lemma 18** "fan" lower-bound gadget.
//!
//! `2k + 1` line nodes `a_1, …, a_{2k+1}` joined in a path, plus a special
//! node `s` with "ray" edges `r_i = (s, a_{2i+1})` for `0 ≤ i ≤ k`:
//! `|V| = 2k + 2`, `|E| = 3k + 1`. The gadget's *faces*
//! `f_i = {s, a_{2i−1}, a_{2i}, a_{2i+1}}` constrain which edges a
//! 3-distance spanner may drop; dropping one line edge per face is optimal
//! and forces every replacement path through `s`, which is the source of
//! the congestion lower bound.

use dcspan_graph::{Edge, Graph, GraphBuilder, NodeId};

/// The fan gadget with role bookkeeping.
#[derive(Clone, Debug)]
pub struct FanGraph {
    /// The gadget graph.
    pub graph: Graph,
    /// Number of faces `k`.
    pub k: usize,
}

impl FanGraph {
    /// Build the fan with `k ≥ 1` faces.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "the fan needs at least one face");
        let n = 2 * k + 2;
        let mut b = GraphBuilder::with_capacity(n, 3 * k + 1);
        // Line nodes a_1..a_{2k+1} are ids 0..2k+1; s is id 2k+1.
        for i in 0..2 * k as u32 {
            b.add_edge(i, i + 1);
        }
        let s = (2 * k + 1) as u32;
        for i in 0..=k {
            b.add_edge(s, (2 * i) as u32); // a_{2i+1} has id 2i
        }
        FanGraph {
            graph: b.build(),
            k,
        }
    }

    /// Node `a_j` for `1 ≤ j ≤ 2k+1` (paper's 1-based labelling).
    pub fn a(&self, j: usize) -> NodeId {
        assert!((1..=2 * self.k + 1).contains(&j));
        (j - 1) as NodeId
    }

    /// The special node `s`.
    pub fn s(&self) -> NodeId {
        (2 * self.k + 1) as NodeId
    }

    /// Ray edge `r_i = (s, a_{2i+1})` for `0 ≤ i ≤ k`.
    pub fn ray(&self, i: usize) -> Edge {
        assert!(i <= self.k);
        Edge::new(self.s(), self.a(2 * i + 1))
    }

    /// The two line edges of face `f_i` (`1 ≤ i ≤ k`):
    /// `(a_{2i−1}, a_{2i})` and `(a_{2i}, a_{2i+1})`.
    pub fn face_line_edges(&self, i: usize) -> [Edge; 2] {
        assert!((1..=self.k).contains(&i));
        [
            Edge::new(self.a(2 * i - 1), self.a(2 * i)),
            Edge::new(self.a(2 * i), self.a(2 * i + 1)),
        ]
    }

    /// The edges removed by the optimal 3-distance spanner: the first line
    /// edge of every face (`k` edges total — the maximum permitted by
    /// Lemma 18 with `x = 2k − 1`).
    pub fn optimal_spanner_removed_edges(&self) -> Vec<Edge> {
        (1..=self.k).map(|i| self.face_line_edges(i)[0]).collect()
    }

    /// The optimal-size 3-distance spanner `H` (removes one line edge per
    /// face; all rays stay).
    pub fn optimal_spanner(&self) -> Graph {
        let removed: dcspan_graph::FxHashSet<Edge> =
            self.optimal_spanner_removed_edges().into_iter().collect();
        self.graph.filter_edges(|_, e| !removed.contains(&e))
    }

    /// The adversarial routing problem of Lemma 18: the endpoints of the
    /// removed line edges (`E_1` in the paper).
    pub fn adversarial_routing_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.optimal_spanner_removed_edges()
            .into_iter()
            .map(|e| (e.u, e.v))
            .collect()
    }

    /// The canonical 3-hop replacement path in `H` for removed line edge
    /// `(a_{2i−1}, a_{2i})`: `a_{2i−1} → s → a_{2i+1} → a_{2i}`.
    pub fn replacement_path(&self, i: usize) -> Vec<NodeId> {
        assert!((1..=self.k).contains(&i));
        vec![
            self.a(2 * i - 1),
            self.s(),
            self.a(2 * i + 1),
            self.a(2 * i),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::traversal::{distance, is_connected};
    use dcspan_graph::Path;

    #[test]
    fn counts_match_lemma18() {
        for k in 1..6 {
            let f = FanGraph::new(k);
            assert_eq!(f.graph.n(), 2 * k + 2);
            assert_eq!(f.graph.m(), 3 * k + 1);
            assert!(is_connected(&f.graph));
        }
    }

    #[test]
    fn rays_and_faces() {
        let f = FanGraph::new(4);
        assert_eq!(f.s(), 9);
        for i in 0..=4 {
            let r = f.ray(i);
            assert!(f.graph.has_edge(r.u, r.v));
        }
        for i in 1..=4 {
            for e in f.face_line_edges(i) {
                assert!(f.graph.has_edge(e.u, e.v));
            }
        }
        // Degree of s is k+1.
        assert_eq!(f.graph.degree(f.s()), 5);
    }

    #[test]
    fn optimal_spanner_is_3_distance_spanner() {
        let f = FanGraph::new(5);
        let h = f.optimal_spanner();
        assert_eq!(h.m(), f.graph.m() - 5);
        assert!(h.is_subgraph_of(&f.graph));
        // Every removed edge has a ≤3-hop substitute in H; the canonical
        // replacement path is valid.
        for i in 1..=5 {
            let [removed, _] = f.face_line_edges(i);
            assert!(!h.has_edge(removed.u, removed.v));
            let d = distance(&h, removed.u, removed.v).unwrap();
            assert!(d <= 3, "face {i}: distance {d}");
            let p = Path::new(f.replacement_path(i));
            assert!(p.is_valid_in(&h));
            assert_eq!(p.len(), 3);
        }
        // And every *kept* edge obviously has distance 1; so H is a genuine
        // 3-distance spanner of the whole gadget.
        for e in f.graph.edges() {
            let d = distance(&h, e.u, e.v).unwrap();
            assert!(d <= 3);
        }
    }

    #[test]
    fn replacement_paths_all_cross_s() {
        let f = FanGraph::new(6);
        for i in 1..=6 {
            assert!(f.replacement_path(i).contains(&f.s()));
        }
    }

    #[test]
    fn adversarial_pairs_align_with_removed_edges() {
        let f = FanGraph::new(3);
        let pairs = f.adversarial_routing_pairs();
        assert_eq!(pairs.len(), 3);
        for (u, v) in pairs {
            assert!(f.graph.has_edge(u, v));
            assert!(!f.optimal_spanner().has_edge(u, v));
        }
    }

    #[test]
    fn removing_three_consecutive_rays_breaks_3_stretch() {
        // Sanity check of the lemma's ray argument: dropping rays
        // r_0, r_1, r_2 leaves the middle ray's endpoints at distance > 3.
        let f = FanGraph::new(4);
        let removed: dcspan_graph::FxHashSet<Edge> =
            [f.ray(0), f.ray(1), f.ray(2)].into_iter().collect();
        let h = f.graph.filter_edges(|_, e| !removed.contains(&e));
        let r1 = f.ray(1);
        let d = distance(&h, r1.u, r1.v).unwrap();
        assert!(d > 3, "middle ray substitute too short: {d}");
    }
}
