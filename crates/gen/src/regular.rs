//! Random Δ-regular graphs.
//!
//! The paper's main theorems quantify over Δ-regular graphs, and Theorem 2
//! additionally needs spectral expansion `λ ≤ o(Δ/√n·…)` — which random
//! regular graphs provide: by Friedman's theorem a uniform random Δ-regular
//! graph is *near-Ramanujan* (`λ ≤ 2√(Δ−1) + o(1)`) with high probability.
//! We use them as the stand-in for the Ramanujan constructions \[19, 20\]
//! cited by the paper, and verify λ empirically with `dcspan-spectral`.
//!
//! Two samplers are provided:
//!
//! * [`random_regular`] — **rewired circulant**: start from an exactly
//!   Δ-regular circulant and apply many uniform double-edge swaps
//!   (the standard degree-preserving MCMC). Always succeeds, always exactly
//!   regular, empirically near-Ramanujan after `Θ(m log m)` swaps.
//! * [`random_regular_configuration`] — **configuration model with repair**:
//!   pair stubs uniformly, then repair self-loops/multi-edges with random
//!   swaps. Closer to the uniform model; may need repair passes.

use dcspan_graph::rng::item_rng;
use dcspan_graph::{FxHashSet, Graph};
use rand::Rng;

fn check_params(n: usize, delta: usize) {
    assert!(delta < n, "Δ = {delta} must be < n = {n}");
    assert!(
        (n * delta).is_multiple_of(2),
        "n·Δ must be even (n = {n}, Δ = {delta})"
    );
    assert!(delta >= 1, "Δ must be ≥ 1");
}

/// Exactly Δ-regular deterministic circulant used as the rewiring seed.
///
/// Strides `1..=Δ/2`, plus the antipodal stride `n/2` when Δ is odd
/// (requires `n` even — guaranteed by the `n·Δ` even precondition).
pub fn circulant_regular(n: usize, delta: usize) -> Graph {
    check_params(n, delta);
    assert!(
        delta / 2 < n.div_ceil(2),
        "Δ too large for a distinct-stride circulant"
    );
    let mut strides: Vec<usize> = (1..=delta / 2).collect();
    if delta % 2 == 1 {
        strides.push(n / 2);
    }
    crate::classic::circulant(n, &strides)
}

#[inline]
fn key(a: u32, b: u32) -> u64 {
    let (x, y) = if a < b { (a, b) } else { (b, a) };
    ((x as u64) << 32) | y as u64
}

/// Random Δ-regular graph via double-edge-swap rewiring of a circulant.
///
/// Performs `swap_factor · m` accepted-or-rejected swap proposals
/// (`swap_factor = 20` is ample for spectral mixing in practice). The result
/// is always simple, connected-ness is *not* guaranteed in theory but holds
/// in practice for Δ ≥ 3 (and is checked by callers that need it).
pub fn random_regular(n: usize, delta: usize, seed: u64) -> Graph {
    random_regular_with_swaps(n, delta, seed, 20)
}

/// [`random_regular`] with an explicit swap multiplier (exposed for tests
/// and mixing ablations).
pub fn random_regular_with_swaps(n: usize, delta: usize, seed: u64, swap_factor: usize) -> Graph {
    let g = circulant_regular(n, delta);
    let mut edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let mut present: FxHashSet<u64> = edges.iter().map(|&(a, b)| key(a, b)).collect();
    let m = edges.len();
    if m < 2 {
        return g;
    }
    let mut rng = item_rng(seed, 0);
    let proposals = swap_factor * m;
    for _ in 0..proposals {
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (mut a, mut b) = edges[i];
        let (mut c, mut d) = edges[j];
        // Random orientation of each edge.
        if rng.gen_bool(0.5) {
            std::mem::swap(&mut a, &mut b);
        }
        if rng.gen_bool(0.5) {
            std::mem::swap(&mut c, &mut d);
        }
        // Proposed rewiring: (a,b),(c,d) → (a,c),(b,d).
        if a == c || b == d || a == d || b == c {
            continue; // would create a self-loop or degenerate swap
        }
        if present.contains(&key(a, c)) || present.contains(&key(b, d)) {
            continue; // would create a parallel edge
        }
        present.remove(&key(a, b));
        present.remove(&key(c, d));
        present.insert(key(a, c));
        present.insert(key(b, d));
        edges[i] = (a, c);
        edges[j] = (b, d);
    }
    Graph::from_edges(n, edges)
}

/// Random Δ-regular graph via the configuration (pairing) model with
/// conflict repair.
///
/// Stubs are paired uniformly at random; self-loops and parallel edges are
/// then repaired by swapping against uniformly chosen good pairs. Repair
/// preserves the degree sequence exactly.
///
/// Returns `None` if repair fails to converge (practically only for
/// adversarial tiny parameters like Δ = n−1).
pub fn random_regular_configuration(n: usize, delta: usize, seed: u64) -> Option<Graph> {
    check_params(n, delta);
    let mut rng = item_rng(seed, 1);
    // Stubs: node u appears Δ times.
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|u| std::iter::repeat_n(u, delta))
        .collect();
    // Fisher–Yates shuffle.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut pairs: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    let m = pairs.len();

    let mut present: FxHashSet<u64> = FxHashSet::default();
    let mut bad: Vec<usize> = Vec::new();
    for (idx, &(a, b)) in pairs.iter().enumerate() {
        if a == b || !present.insert(key(a, b)) {
            bad.push(idx);
        }
    }

    // Repair: swap each bad pair against random partners until clean.
    let mut attempts = 0usize;
    let max_attempts = 200 * m + 10_000;
    while let Some(&idx) = bad.last() {
        attempts += 1;
        if attempts > max_attempts {
            return None;
        }
        let jdx = rng.gen_range(0..m);
        if jdx == idx {
            continue;
        }
        let (mut a, mut b) = pairs[idx];
        let (mut c, mut d) = pairs[jdx];
        if rng.gen_bool(0.5) {
            std::mem::swap(&mut a, &mut b);
        }
        if rng.gen_bool(0.5) {
            std::mem::swap(&mut c, &mut d);
        }
        // New pairs: (a,c), (b,d). Both must be fresh, simple edges, and the
        // partner pair (c,d) must currently be good (so we never break it).
        let jdx_is_bad = bad.contains(&jdx);
        if jdx_is_bad {
            continue;
        }
        if a == c || b == d {
            continue;
        }
        if present.contains(&key(a, c)) || present.contains(&key(b, d)) {
            continue;
        }
        // The old good pair (c,d) disappears.
        present.remove(&key(c, d));
        // The old bad pair (a,b) was never in `present` as a unique edge if
        // it was a duplicate; remove only if this index owned the key.
        // (Self-loops were never inserted.)
        // A duplicate pair shares its key with the original owner, so we must
        // not remove the key unless no other pair uses it. Recomputing
        // ownership is O(m); instead, rebuild from scratch lazily: we track
        // only *insertions we made for good pairs*. Bad duplicate pairs never
        // inserted their key (insert failed), so nothing to remove.
        present.insert(key(a, c));
        present.insert(key(b, d));
        pairs[idx] = (a, c);
        pairs[jdx] = (b, d);
        bad.pop();
    }

    let g = Graph::from_edges(n, pairs);
    // Paranoia: repair must have preserved regularity and simplicity.
    debug_assert!(g.is_regular() && g.max_degree() == delta);
    if g.is_regular() && g.max_degree() == delta {
        Some(g)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::traversal::is_connected;

    #[test]
    fn circulant_is_exactly_regular() {
        for (n, d) in [(10, 4), (11, 4), (12, 5), (9, 2), (16, 7)] {
            let g = circulant_regular(n, d);
            assert!(g.is_regular(), "n={n} d={d}");
            assert_eq!(g.max_degree(), d, "n={n} d={d}");
            assert_eq!(g.m(), n * d / 2);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_product_rejected() {
        let _ = circulant_regular(9, 3);
    }

    #[test]
    fn rewired_is_regular_simple_connected() {
        for seed in 0..3 {
            let g = random_regular(60, 6, seed);
            assert!(g.is_regular());
            assert_eq!(g.max_degree(), 6);
            assert_eq!(g.m(), 180);
            assert!(is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn rewired_deterministic() {
        assert_eq!(random_regular(40, 4, 7), random_regular(40, 4, 7));
        assert_ne!(random_regular(40, 4, 7), random_regular(40, 4, 8));
    }

    #[test]
    fn rewiring_actually_changes_graph() {
        let base = circulant_regular(50, 4);
        let mixed = random_regular(50, 4, 3);
        assert_ne!(base, mixed);
        // Hamming distance between edge sets should be substantial.
        let common = mixed
            .edges()
            .iter()
            .filter(|e| base.has_edge(e.u, e.v))
            .count();
        assert!(
            common < base.m() / 2,
            "only {common} of {} edges moved",
            base.m()
        );
    }

    #[test]
    fn zero_swaps_returns_circulant() {
        let g = random_regular_with_swaps(20, 4, 5, 0);
        assert_eq!(g, circulant_regular(20, 4));
    }

    #[test]
    fn configuration_model_regular_and_simple() {
        for seed in 0..5 {
            let g = random_regular_configuration(50, 6, seed).expect("repair converges");
            assert!(g.is_regular(), "seed {seed}");
            assert_eq!(g.max_degree(), 6);
            assert_eq!(g.m(), 150);
        }
    }

    #[test]
    fn configuration_model_odd_degree() {
        let g = random_regular_configuration(20, 5, 11).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn dense_regular_graphs() {
        // Δ = n^{2/3}-ish regime used by Theorem 3.
        let n = 64;
        let d = 16;
        let g = random_regular(n, d, 2);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), d);
        assert!(is_connected(&g));
    }
}
