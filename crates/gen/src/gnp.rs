//! Erdős–Rényi random graphs `G(n, p)`.

use dcspan_graph::rng::item_rng;
use dcspan_graph::{Graph, GraphBuilder};
use rand::Rng;

/// Sample `G(n, p)`: each of the `n·(n−1)/2` potential edges is present
/// independently with probability `p`. Deterministic in `(n, p, seed)`;
/// rows are seeded independently so generation parallelises if needed.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        let mut rng = item_rng(seed, i as u64);
        for j in i + 1..n as u32 {
            if rng.gen_bool(p) {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

/// Sample `G(n, p)` conditioned on being connected: retries with derived
/// seeds up to `max_attempts` times.
///
/// Returns `None` if no connected sample was found (caller should raise `p`).
pub fn gnp_connected(n: usize, p: f64, seed: u64, max_attempts: usize) -> Option<Graph> {
    for attempt in 0..max_attempts as u64 {
        let g = gnp(n, p, seed.wrapping_add(attempt));
        if dcspan_graph::traversal::is_connected(&g) {
            return Some(g);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn deterministic() {
        let a = gnp(50, 0.2, 9);
        let b = gnp(50, 0.2, 9);
        assert_eq!(a, b);
        let c = gnp(50, 0.2, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_count_near_expectation() {
        let n = 120;
        let p = 0.3;
        let g = gnp(n, p, 1234);
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            ((g.m() as f64) - expected).abs() < 6.0 * sd,
            "m = {} vs expected {expected}",
            g.m()
        );
    }

    #[test]
    fn connected_variant() {
        // Above the connectivity threshold this succeeds immediately.
        let g = gnp_connected(60, 0.2, 3, 10).unwrap();
        assert!(dcspan_graph::traversal::is_connected(&g));
        // Hopeless regime: p = 0 can never be connected for n ≥ 2.
        assert!(gnp_connected(10, 0.0, 3, 3).is_none());
    }
}
