//! A small, fast, non-cryptographic hasher for integer keys.
//!
//! The standard library's SipHash is HashDoS-resistant but slow for the tiny
//! integer keys (node ids, canonical edge codes) that dominate this
//! workspace. This is a from-scratch implementation of the multiply-rotate
//! scheme popularised by `rustc`'s `FxHasher`; all inputs here are internal
//! indices, so DoS resistance is irrelevant.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply constant (derived from the golden ratio, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-rotate hasher suitable for integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time; the tail is folded into one word.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap())); // xtask: allow(no_panic) — chunks_exact(8) guarantees 8-byte slices
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one((7u32, 9u32)), hash_one((7u32, 9u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a smoke check that consecutive node
        // ids do not collide outright.
        let hashes: HashSet<u64> = (0u32..10_000).map(hash_one).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_tail() {
        // write() must consume trailing (<8 byte) fragments.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn usable_in_hashmap() {
        let mut map: crate::FxHashMap<u32, u32> = crate::FxHashMap::default();
        for i in 0..100 {
            map.insert(i, i * i);
        }
        assert_eq!(map.get(&9), Some(&81));
        assert_eq!(map.len(), 100);
    }
}
