//! Graph serialisation: a plain edge-list text format, a DIMACS-like
//! variant, and the little-endian binary codec primitives used by the
//! versioned `dcspan-store` artifact format.
//!
//! Edge-list format (`.el`): first line `n m`, then one `u v` pair per
//! line. DIMACS format: `p edge <n> <m>` header and `e <u+1> <v+1>` lines
//! (DIMACS is 1-indexed). Both parsers reject self-loops, out-of-range
//! endpoints, and duplicate edges, so `write → read` is a bijection on
//! canonical graphs.
//!
//! The binary codec ([`ByteReader`], [`FixedCodec`], [`encode_seq`] /
//! [`decode_seq`]) is deliberately minimal: fixed-width little-endian
//! fields, length-prefixed sequences, and fully bounds-checked fallible
//! decoding — corruption degrades to a typed [`CodecError`], never a panic
//! or an unbounded allocation.

use crate::delta::EdgeMutation;
use crate::graph::{Edge, Graph, GraphBuilder, NodeId};
use std::io::{BufRead, Write};

/// Errors arising while parsing a graph file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the content (message describes it).
    Format(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Write the edge-list format.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "{} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(w, "{} {}", e.u, e.v)?;
    }
    Ok(())
}

/// The trimmed data lines of a pair-based text format: blank lines and
/// `#`-prefixed comments are skipped, I/O errors propagate. Shared by the
/// edge-list and mutations readers so both formats agree on comment and
/// whitespace handling.
fn data_lines<R: BufRead>(r: R) -> impl Iterator<Item = Result<String, ParseError>> {
    r.lines().filter_map(|line| match line {
        Err(e) => Some(Err(ParseError::Io(e))),
        Ok(line) => {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                None
            } else {
                Some(Ok(trimmed.to_string()))
            }
        }
    })
}

/// Parse a pair of whitespace-separated `u v` endpoints from `tokens`,
/// rejecting non-numeric tokens and self-loops with a typed error naming
/// the offending line. Range validation is the caller's job (the mutations
/// format carries no node count).
fn parse_endpoint_pair(
    tokens: &mut std::str::SplitWhitespace<'_>,
    line: &str,
) -> Result<(NodeId, NodeId), ParseError> {
    let mut endpoint = || -> Result<NodeId, ParseError> {
        tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseError::Format(format!("bad edge line: {line}")))
    };
    let u = endpoint()?;
    let v = endpoint()?;
    if u == v {
        return Err(ParseError::Format(format!("self-loop at {u}")));
    }
    Ok((u, v))
}

/// Read the edge-list format.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<Graph, ParseError> {
    let mut lines = data_lines(r);
    let header = lines
        .next()
        .ok_or_else(|| ParseError::Format("empty input".into()))??;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::Format("bad node count".into()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::Format("bad edge count".into()))?;
    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut seen: crate::FxHashSet<Edge> = crate::FxHashSet::default();
    let mut count = 0usize;
    for line in lines {
        let line = line?;
        let (u, v) = parse_endpoint_pair(&mut line.split_whitespace(), &line)?;
        if u as usize >= n || v as usize >= n {
            return Err(ParseError::Format(format!("edge ({u}, {v}) out of range")));
        }
        if !seen.insert(Edge::new(u, v)) {
            return Err(ParseError::Format(format!("duplicate edge ({u}, {v})")));
        }
        builder.add_edge(u, v);
        count += 1;
    }
    if count != m {
        return Err(ParseError::Format(format!(
            "expected {m} edges, found {count}"
        )));
    }
    Ok(builder.build())
}

/// Write a mutation batch in the mutations text format: one `+ u v`
/// (insert) or `- u v` (remove) per line, applied in order.
pub fn write_mutations<W: Write>(batch: &[EdgeMutation], mut w: W) -> std::io::Result<()> {
    for m in batch {
        let (u, v) = m.endpoints();
        writeln!(w, "{} {u} {v}", if m.is_insert() { '+' } else { '-' })?;
    }
    Ok(())
}

/// Read a mutation batch written by [`write_mutations`]: `+ u v` /
/// `- u v` lines (order preserved — the batch has sequential set
/// semantics), with the same comment/blank-line handling and typed
/// endpoint errors as [`read_edge_list`]. Endpoint *range* is validated
/// when the batch is applied to a concrete graph, since the format
/// carries no node count.
pub fn read_mutations<R: BufRead>(r: R) -> Result<Vec<EdgeMutation>, ParseError> {
    let mut batch = Vec::new();
    for line in data_lines(r) {
        let line = line?;
        let mut tokens = line.split_whitespace();
        let op = tokens
            .next()
            .ok_or_else(|| ParseError::Format(format!("bad mutation line: {line}")))?;
        let (u, v) = parse_endpoint_pair(&mut tokens, &line)?;
        match op {
            "+" => batch.push(EdgeMutation::Insert(u, v)),
            "-" => batch.push(EdgeMutation::Remove(u, v)),
            other => {
                return Err(ParseError::Format(format!(
                    "unknown mutation op '{other}' (expected '+' or '-'): {line}"
                )))
            }
        }
    }
    Ok(batch)
}

/// Write the DIMACS format (1-indexed).
pub fn write_dimacs<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "p edge {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(w, "e {} {}", e.u + 1, e.v + 1)?;
    }
    Ok(())
}

/// Read the DIMACS format (1-indexed; `c` comment lines allowed).
pub fn read_dimacs<R: BufRead>(r: R) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut seen: crate::FxHashSet<Edge> = crate::FxHashSet::default();
    let mut n = 0usize;
    let mut m = 0usize;
    let mut count = 0usize;
    for line in r.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("p edge") {
            let mut parts = rest.split_whitespace();
            n = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError::Format("bad p line".into()))?;
            m = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError::Format("bad p line".into()))?;
            builder = Some(GraphBuilder::with_capacity(n, m));
        } else if let Some(rest) = trimmed.strip_prefix('e') {
            let b = builder
                .as_mut()
                .ok_or_else(|| ParseError::Format("edge before p line".into()))?;
            let mut parts = rest.split_whitespace();
            let u: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError::Format(format!("bad e line: {trimmed}")))?;
            let v: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError::Format(format!("bad e line: {trimmed}")))?;
            if u == 0 || v == 0 || u as usize > n || v as usize > n {
                return Err(ParseError::Format(format!("edge ({u}, {v}) out of range")));
            }
            if u == v {
                return Err(ParseError::Format(format!("self-loop at {u}")));
            }
            if !seen.insert(Edge::new(u - 1, v - 1)) {
                return Err(ParseError::Format(format!("duplicate edge ({u}, {v})")));
            }
            b.add_edge(u - 1, v - 1);
            count += 1;
        } else {
            return Err(ParseError::Format(format!("unrecognised line: {trimmed}")));
        }
    }
    if builder.is_some() && count != m {
        return Err(ParseError::Format(format!(
            "expected {m} edges, found {count}"
        )));
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| ParseError::Format("missing p line".into()))
}

// ---------------------------------------------------------------------------
// Binary codec primitives (used by the dcspan-store artifact format)
// ---------------------------------------------------------------------------

/// Errors from decoding the fixed-width little-endian binary codec.
///
/// Decoding is total: every byte sequence maps to either a value or a
/// `CodecError`; no input can cause a panic or an allocation larger than
/// the input itself.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the announced structure was complete.
    Truncated,
    /// The input is structurally invalid (message describes the violation).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::Malformed(msg) => write!(f, "malformed input: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked cursor over a byte slice for fallible little-endian reads.
///
/// All reads return [`CodecError::Truncated`] instead of panicking when the
/// slice is exhausted, keeping decode paths compatible with the `no_panic`
/// lint.
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume exactly `n` bytes, or fail with `Truncated`.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read one byte.
    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        let b = self.take(1)?;
        Ok(b[0])
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Values encodable at a fixed little-endian byte width.
///
/// Implementors must keep `encode_into`/`decode_from` symmetric: decoding
/// the encoded bytes yields the original value, and `decode_from` must
/// reject any byte pattern that `encode_into` cannot produce.
pub trait FixedCodec: Copy {
    /// Encoded width in bytes.
    const BYTES: usize;

    /// Append the little-endian encoding of `self` to `out`.
    fn encode_into(self, out: &mut Vec<u8>);

    /// Decode one value, validating representation invariants.
    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError>
    where
        Self: Sized;
}

impl FixedCodec for u32 {
    const BYTES: usize = 4;

    fn encode_into(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.read_u32()
    }
}

impl FixedCodec for u64 {
    const BYTES: usize = 8;

    fn encode_into(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.read_u64()
    }
}

impl FixedCodec for (u32, u32) {
    const BYTES: usize = 8;

    fn encode_into(self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((r.read_u32()?, r.read_u32()?))
    }
}

impl FixedCodec for Edge {
    const BYTES: usize = 8;

    fn encode_into(self, out: &mut Vec<u8>) {
        self.u.encode_into(out);
        self.v.encode_into(out);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let u = r.read_u32()?;
        let v = r.read_u32()?;
        if u >= v {
            return Err(CodecError::Malformed(format!(
                "edge ({u}, {v}) violates u < v"
            )));
        }
        Ok(Edge::new(u, v))
    }
}

/// Append a length-prefixed sequence (`u64` count, then fixed-width items).
pub fn encode_seq<T: FixedCodec>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u64).encode_into(out);
    for &item in items {
        item.encode_into(out);
    }
}

/// Decode a length-prefixed sequence written by [`encode_seq`].
///
/// The announced length is validated against the remaining input before any
/// allocation, so a corrupted count cannot trigger an out-of-memory abort.
pub fn decode_seq<T: FixedCodec>(r: &mut ByteReader<'_>) -> Result<Vec<T>, CodecError> {
    let len = r.read_u64()?;
    let len: usize = usize::try_from(len).map_err(|_| CodecError::Truncated)?;
    let need = len.checked_mul(T::BYTES).ok_or(CodecError::Truncated)?;
    if need > r.remaining() {
        return Err(CodecError::Truncated);
    }
    let mut items = Vec::with_capacity(len);
    for _ in 0..len {
        items.push(T::decode_from(r)?);
    }
    Ok(items)
}

impl Graph {
    /// Append the graph's binary encoding: `n` as `u64`, then the canonical
    /// sorted edge list as a length-prefixed sequence of `(u, v)` pairs.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        (self.n() as u64).encode_into(out);
        encode_seq(self.edges(), out);
    }

    /// Decode a graph written by [`Graph::encode_into`], validating that the
    /// edge list is strictly increasing (canonical, duplicate-free) with all
    /// endpoints in `0..n` before reconstructing the CSR arrays.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Graph, CodecError> {
        let n = r.read_u64()?;
        if n > u64::from(u32::MAX) + 1 {
            return Err(CodecError::Malformed(format!(
                "node count {n} exceeds u32 address space"
            )));
        }
        let n = n as usize;
        let edges: Vec<Edge> = decode_seq(r)?;
        for pair in edges.windows(2) {
            if pair[0] >= pair[1] {
                return Err(CodecError::Malformed(format!(
                    "edge list not strictly increasing at ({}, {})",
                    pair[1].u, pair[1].v
                )));
            }
        }
        if let Some(e) = edges.iter().find(|e| e.v as usize >= n) {
            return Err(CodecError::Malformed(format!(
                "edge ({}, {}) out of range for n = {n}",
                e.u, e.v
            )));
        }
        Ok(Graph::from_canonical_edges(n, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sample() -> Graph {
        Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("p edge 4 4"));
        assert!(text.contains("e 1 2"));
        let parsed = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn edge_list_allows_comments_and_blanks() {
        let text = "3 2\n# comment\n0 1\n\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_rejects_bad_counts() {
        let text = "3 5\n0 1\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn edge_list_rejects_out_of_range() {
        let text = "2 1\n0 5\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn edge_list_rejects_self_loop() {
        let text = "2 1\n1 1\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn dimacs_rejects_edge_before_header() {
        let text = "e 1 2\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn dimacs_skips_comments() {
        let text = "c hi\np edge 3 1\nc mid\ne 1 3\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::empty(5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(read_edge_list(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn error_display() {
        let e = ParseError::Format("boom".into());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn edge_list_rejects_duplicate_edges() {
        let text = "3 2\n0 1\n1 0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn dimacs_rejects_duplicate_edges() {
        let text = "p edge 3 2\ne 1 2\ne 2 1\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn dimacs_rejects_bad_counts() {
        let text = "p edge 3 2\ne 1 2\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn graph_codec_roundtrips() {
        let g = sample();
        let mut buf = Vec::new();
        g.encode_into(&mut buf);
        let mut r = ByteReader::new(&buf);
        let decoded = Graph::decode_from(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(decoded, g);
    }

    #[test]
    fn graph_codec_rejects_unsorted_edges() {
        let mut buf = Vec::new();
        4u64.encode_into(&mut buf);
        encode_seq(&[Edge::new(1, 2), Edge::new(0, 1)], &mut buf);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            Graph::decode_from(&mut r),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn graph_codec_rejects_out_of_range() {
        let mut buf = Vec::new();
        2u64.encode_into(&mut buf);
        encode_seq(&[Edge::new(0, 3)], &mut buf);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            Graph::decode_from(&mut r),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn edge_codec_rejects_non_canonical() {
        let mut buf = Vec::new();
        3u32.encode_into(&mut buf);
        1u32.encode_into(&mut buf);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            Edge::decode_from(&mut r),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn decode_seq_caps_allocation_by_remaining_input() {
        let mut buf = Vec::new();
        u64::MAX.encode_into(&mut buf);
        let mut r = ByteReader::new(&buf);
        assert_eq!(decode_seq::<u64>(&mut r), Err(CodecError::Truncated));
    }

    #[test]
    fn mutations_roundtrip_preserving_order() {
        let batch = vec![
            EdgeMutation::Insert(3, 7),
            EdgeMutation::Remove(7, 3),
            EdgeMutation::Remove(0, 1),
        ];
        let mut buf = Vec::new();
        write_mutations(&batch, &mut buf).unwrap();
        assert_eq!(read_mutations(buf.as_slice()).unwrap(), batch);
    }

    #[test]
    fn mutations_allow_comments_and_blanks() {
        let text = "# batch 1\n+ 0 1\n\n- 2 3\n";
        let batch = read_mutations(text.as_bytes()).unwrap();
        assert_eq!(
            batch,
            vec![EdgeMutation::Insert(0, 1), EdgeMutation::Remove(2, 3)]
        );
    }

    #[test]
    fn mutations_reject_bad_ops_and_self_loops() {
        assert!(matches!(
            read_mutations("* 0 1\n".as_bytes()),
            Err(ParseError::Format(_))
        ));
        assert!(matches!(
            read_mutations("+ 4 4\n".as_bytes()),
            Err(ParseError::Format(_))
        ));
        assert!(matches!(
            read_mutations("+ 4\n".as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn byte_reader_truncates_cleanly() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.read_u32(), Err(CodecError::Truncated));
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.read_u8().unwrap(), 1);
    }
}
