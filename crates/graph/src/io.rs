//! Graph serialisation: a plain edge-list text format and a DIMACS-like
//! variant, so spanners and workloads can be exchanged with external tools.
//!
//! Edge-list format (`.el`): first line `n m`, then one `u v` pair per
//! line. DIMACS format: `p edge <n> <m>` header and `e <u+1> <v+1>` lines
//! (DIMACS is 1-indexed).

use crate::graph::{Graph, GraphBuilder};
use std::io::{BufRead, Write};

/// Errors arising while parsing a graph file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the content (message describes it).
    Format(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Write the edge-list format.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "{} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(w, "{} {}", e.u, e.v)?;
    }
    Ok(())
}

/// Read the edge-list format.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<Graph, ParseError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseError::Format("empty input".into()))??;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::Format("bad node count".into()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::Format("bad edge count".into()))?;
    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut count = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u32 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseError::Format(format!("bad edge line: {trimmed}")))?;
        let v: u32 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseError::Format(format!("bad edge line: {trimmed}")))?;
        if u as usize >= n || v as usize >= n {
            return Err(ParseError::Format(format!("edge ({u}, {v}) out of range")));
        }
        if u == v {
            return Err(ParseError::Format(format!("self-loop at {u}")));
        }
        builder.add_edge(u, v);
        count += 1;
    }
    if count != m {
        return Err(ParseError::Format(format!(
            "expected {m} edges, found {count}"
        )));
    }
    Ok(builder.build())
}

/// Write the DIMACS format (1-indexed).
pub fn write_dimacs<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "p edge {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(w, "e {} {}", e.u + 1, e.v + 1)?;
    }
    Ok(())
}

/// Read the DIMACS format (1-indexed; `c` comment lines allowed).
pub fn read_dimacs<R: BufRead>(r: R) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut n = 0usize;
    for line in r.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("p edge") {
            let mut parts = rest.split_whitespace();
            n = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError::Format("bad p line".into()))?;
            let m: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError::Format("bad p line".into()))?;
            builder = Some(GraphBuilder::with_capacity(n, m));
        } else if let Some(rest) = trimmed.strip_prefix('e') {
            let b = builder
                .as_mut()
                .ok_or_else(|| ParseError::Format("edge before p line".into()))?;
            let mut parts = rest.split_whitespace();
            let u: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError::Format(format!("bad e line: {trimmed}")))?;
            let v: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError::Format(format!("bad e line: {trimmed}")))?;
            if u == 0 || v == 0 || u as usize > n || v as usize > n {
                return Err(ParseError::Format(format!("edge ({u}, {v}) out of range")));
            }
            if u == v {
                return Err(ParseError::Format(format!("self-loop at {u}")));
            }
            b.add_edge(u - 1, v - 1);
        } else {
            return Err(ParseError::Format(format!("unrecognised line: {trimmed}")));
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| ParseError::Format("missing p line".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sample() -> Graph {
        Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("p edge 4 4"));
        assert!(text.contains("e 1 2"));
        let parsed = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn edge_list_allows_comments_and_blanks() {
        let text = "3 2\n# comment\n0 1\n\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_rejects_bad_counts() {
        let text = "3 5\n0 1\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn edge_list_rejects_out_of_range() {
        let text = "2 1\n0 5\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn edge_list_rejects_self_loop() {
        let text = "2 1\n1 1\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn dimacs_rejects_edge_before_header() {
        let text = "e 1 2\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(ParseError::Format(_))
        ));
    }

    #[test]
    fn dimacs_skips_comments() {
        let text = "c hi\np edge 3 1\nc mid\ne 1 3\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::empty(5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(read_edge_list(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn error_display() {
        let e = ParseError::Format("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
