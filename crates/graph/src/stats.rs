//! Degree statistics and structural summaries used by experiment reports.

use crate::graph::{Graph, NodeId};

/// Summary of a graph's degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (= 2m/n).
    pub mean: f64,
    /// Population standard deviation of the degree sequence.
    pub std_dev: f64,
}

/// Compute degree statistics; `None` for the empty graph.
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    if g.n() == 0 {
        return None;
    }
    let degrees: Vec<usize> = (0..g.n()).map(|u| g.degree(u as NodeId)).collect();
    let min = degrees.iter().copied().min().unwrap_or(0);
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mean = degrees.iter().sum::<usize>() as f64 / g.n() as f64;
    let var = degrees
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / g.n() as f64;
    Some(DegreeStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    })
}

/// Edge density `m / (n choose 2)`; `None` when `n < 2`.
pub fn density(g: &Graph) -> Option<f64> {
    if g.n() < 2 {
        return None;
    }
    let possible = g.n() as f64 * (g.n() as f64 - 1.0) / 2.0;
    Some(g.m() as f64 / possible)
}

/// Number of edges between node sets `S` and `T` counted as in the expander
/// mixing lemma (Lemma 3 of the paper): ordered pairs `(s, t) ∈ S × T` with
/// `{s, t} ∈ E`, so edges inside `S ∩ T` count twice.
pub fn edges_between(g: &Graph, s: &[NodeId], t: &[NodeId]) -> usize {
    let mut in_t = vec![false; g.n()];
    for &x in t {
        in_t[x as usize] = true;
    }
    s.iter()
        .map(|&u| g.neighbors(u).iter().filter(|&&w| in_t[w as usize]).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn stats_on_star() {
        let g = Graph::from_edges(5, (1u32..5).map(|i| (0, i)));
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn stats_on_regular_graph_zero_stddev() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn empty_graph_has_no_stats() {
        assert!(degree_stats(&Graph::empty(0)).is_none());
        assert!(density(&Graph::empty(1)).is_none());
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = Graph::from_edges(4, (0..4u32).flat_map(|i| (i + 1..4).map(move |j| (i, j))));
        assert!((density(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_between_counts_ordered_pairs() {
        // Triangle 0-1-2: S = {0,1}, T = {1,2}.
        // Pairs: (0,1) edge ✓, (0,2) edge ✓, (1,1) no self-loop, (1,2) edge ✓.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(edges_between(&g, &[0, 1], &[1, 2]), 3);
        // Mixing-lemma convention: e(S, S) = 2·|E(S)|.
        assert_eq!(edges_between(&g, &[0, 1, 2], &[0, 1, 2]), 6);
    }
}
