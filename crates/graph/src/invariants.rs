//! Runtime contract checks for the data structures the spanner and routing
//! algorithms exchange.
//!
//! Every check comes in two forms:
//!
//! * a **fallible** `check_*` function returning `Result<(), InvariantError>`
//!   that always runs — property tests and callers that want to *reject*
//!   bad inputs use these;
//! * an **asserting** `assert_*` wrapper that is a no-op unless contracts
//!   are [`enabled`] (debug builds, or any build with the
//!   `strict-invariants` feature) and panics with the violation otherwise —
//!   algorithm entry/exit boundaries use these.
//!
//! The contracts mirror what the paper's proofs assume: CSR well-formedness
//! and adjacency symmetry for every input graph, node-disjointness for the
//! matchings Algorithm 2 decomposes routings into (Theorem 1), and routing
//! validity (endpoints, edge existence, congestion accounting) for every
//! substitute routing whose congestion stretch β we report (Section 2).

use crate::graph::{Graph, NodeId};
use crate::paths::Path;

/// A violated contract: which check failed and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantError {
    /// The check that failed (e.g. `"csr_well_formed"`).
    pub check: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl std::fmt::Display for InvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant `{}` violated: {}", self.check, self.detail)
    }
}

impl std::error::Error for InvariantError {}

/// True when the asserting wrappers actually check: debug builds, or any
/// build with the `strict-invariants` feature enabled.
#[inline]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "strict-invariants"))
}

fn err(check: &'static str, detail: String) -> Result<(), InvariantError> {
    Err(InvariantError { check, detail })
}

/// The CSR arrays are structurally sound: offsets are monotone and span
/// `adj` exactly, neighbour ids are in range, every row is strictly sorted
/// (no duplicates, no self-loops), and the canonical edge list matches the
/// adjacency (`2m` directed slots, each edge present in both rows).
pub fn check_csr_well_formed(g: &Graph) -> Result<(), InvariantError> {
    const CHECK: &str = "csr_well_formed";
    let n = g.n();
    if g.offsets.len() != n + 1 {
        return err(
            CHECK,
            format!("offsets.len() = {} for n = {n}", g.offsets.len()),
        );
    }
    if g.offsets[0] != 0 || g.offsets[n] != g.adj.len() {
        return err(
            CHECK,
            format!(
                "offsets span [{}, {}] but adj.len() = {}",
                g.offsets[0],
                g.offsets[n],
                g.adj.len()
            ),
        );
    }
    if g.offsets.windows(2).any(|w| w[0] > w[1]) {
        return err(CHECK, "offsets are not monotone".to_string());
    }
    if g.adj.len() != 2 * g.m() {
        return err(
            CHECK,
            format!("adj.len() = {} but m = {}", g.adj.len(), g.m()),
        );
    }
    for u in 0..n {
        let row = &g.adj.as_slice()[g.offsets[u]..g.offsets[u + 1]];
        if row.iter().any(|&w| w as usize >= n) {
            return err(CHECK, format!("row {u} has a neighbour out of range"));
        }
        if row.windows(2).any(|w| w[0] >= w[1]) {
            return err(CHECK, format!("row {u} is not strictly sorted"));
        }
        if row.binary_search(&(u as NodeId)).is_ok() {
            return err(CHECK, format!("row {u} contains a self-loop"));
        }
    }
    if g.edges.as_slice().windows(2).any(|w| w[0] >= w[1]) {
        return err(CHECK, "edge list is not strictly sorted".to_string());
    }
    for e in g.edges.as_slice() {
        if !g.has_edge(e.u, e.v) {
            return err(
                CHECK,
                format!("edge ({}, {}) missing from adjacency", e.u, e.v),
            );
        }
    }
    Ok(())
}

/// Adjacency symmetry: `w ∈ N(u)` iff `u ∈ N(w)` — the undirectedness the
/// detour arguments (3-hop paths `u → x → y → v`) silently rely on.
pub fn check_adjacency_symmetric(g: &Graph) -> Result<(), InvariantError> {
    const CHECK: &str = "adjacency_symmetric";
    for u in 0..g.n() as NodeId {
        for &w in g.neighbors(u) {
            if g.neighbors(w).binary_search(&u).is_err() {
                return err(CHECK, format!("{w} ∈ N({u}) but {u} ∉ N({w})"));
            }
        }
    }
    Ok(())
}

/// Degree regularity: every node has the same degree — the Δ-regularity
/// hypothesis of Theorems 2 and 3. Returns the common degree.
pub fn check_degree_regular(g: &Graph) -> Result<usize, InvariantError> {
    const CHECK: &str = "degree_regular";
    let delta = g.max_degree();
    for u in 0..g.n() as NodeId {
        let d = g.degree(u);
        if d != delta {
            return Err(InvariantError {
                check: CHECK,
                detail: format!("node {u} has degree {d}, expected {delta}"),
            });
        }
    }
    Ok(delta)
}

/// Subgraph containment: every edge of `h` is an edge of `g` and the node
/// sets agree — spanner constructions must only *remove* edges.
pub fn check_subgraph(h: &Graph, g: &Graph) -> Result<(), InvariantError> {
    const CHECK: &str = "subgraph";
    if h.n() != g.n() {
        return err(CHECK, format!("node counts differ: {} vs {}", h.n(), g.n()));
    }
    if !h.is_subgraph_of(g) {
        return err(
            CHECK,
            "spanner contains an edge absent from the host".to_string(),
        );
    }
    Ok(())
}

/// Matching node-disjointness: no node appears in two pairs — what makes
/// the per-level matchings of Algorithm 2 routable with unit congestion.
pub fn check_matching_disjoint(n: usize, pairs: &[(NodeId, NodeId)]) -> Result<(), InvariantError> {
    const CHECK: &str = "matching_disjoint";
    let mut seen = vec![false; n];
    for &(u, v) in pairs {
        if u == v {
            return err(CHECK, format!("pair ({u}, {v}) is a self-pair"));
        }
        for x in [u, v] {
            let Some(slot) = seen.get_mut(x as usize) else {
                return err(CHECK, format!("node {x} out of range for n = {n}"));
            };
            if *slot {
                return err(CHECK, format!("node {x} appears in two pairs"));
            }
            *slot = true;
        }
    }
    Ok(())
}

/// Endpoint discipline alone: one path per pair, each path running from
/// its pair's source to its destination. For call sites where the host
/// graph is not in scope (e.g. behind an `EdgeRouter`-style trait).
pub fn check_routing_endpoints(
    pairs: &[(NodeId, NodeId)],
    paths: &[Path],
) -> Result<(), InvariantError> {
    const CHECK: &str = "routing_endpoints";
    if pairs.len() != paths.len() {
        return err(
            CHECK,
            format!("{} paths for {} pairs", paths.len(), pairs.len()),
        );
    }
    for (k, (&(u, v), p)) in pairs.iter().zip(paths).enumerate() {
        if p.source() != u || p.destination() != v {
            return err(
                CHECK,
                format!(
                    "path {k} runs {} → {} but pair {k} is ({u}, {v})",
                    p.source(),
                    p.destination()
                ),
            );
        }
    }
    Ok(())
}

/// Routing validity against a pair list: one path per pair, each path runs
/// from its pair's source to its destination, and every hop is an edge of
/// `g`. This is the precondition for a routing's congestion profile to be
/// a meaningful β numerator (Section 2).
pub fn check_routing_valid(
    g: &Graph,
    pairs: &[(NodeId, NodeId)],
    paths: &[Path],
) -> Result<(), InvariantError> {
    const CHECK: &str = "routing_valid";
    check_routing_endpoints(pairs, paths)?;
    for (k, p) in paths.iter().enumerate() {
        for (a, b) in p.hops() {
            if !g.has_edge(a, b) {
                return err(CHECK, format!("path {k} uses non-edge ({a}, {b})"));
            }
        }
    }
    Ok(())
}

/// Congestion-accounting consistency: a claimed node-congestion profile
/// matches a recount of path/node incidences (each path counts once per
/// node, however often it revisits it) — the `C(P, v)` of Section 2.
pub fn check_congestion_profile(
    n: usize,
    paths: &[Path],
    claimed: &[u32],
) -> Result<(), InvariantError> {
    const CHECK: &str = "congestion_profile";
    if claimed.len() != n {
        return err(
            CHECK,
            format!("profile has {} entries for n = {n}", claimed.len()),
        );
    }
    let mut recount = vec![0u32; n];
    let mut touched: Vec<NodeId> = Vec::new();
    for p in paths {
        touched.clear();
        touched.extend_from_slice(p.nodes());
        touched.sort_unstable();
        touched.dedup();
        for &v in &touched {
            let Some(slot) = recount.get_mut(v as usize) else {
                return err(
                    CHECK,
                    format!("path visits node {v} out of range for n = {n}"),
                );
            };
            *slot += 1;
        }
    }
    if recount != claimed {
        let witness = recount
            .iter()
            .zip(claimed)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return err(
            CHECK,
            format!(
                "profile mismatch at node {witness}: claimed {}, recounted {}",
                claimed[witness], recount[witness]
            ),
        );
    }
    Ok(())
}

/// Panic with the violation. Factored out so the asserting wrappers stay
/// panic-free in the linter's eyes except for this one audited site.
#[inline(never)]
#[cold]
fn fail(context: &str, e: &InvariantError) -> ! {
    panic!("{context}: {e}") // xtask: allow(no_panic) — contract violation is a caller bug
}

/// Assert the full graph contract (CSR well-formedness + adjacency
/// symmetry) at an algorithm boundary. No-op unless [`enabled`].
#[inline]
pub fn assert_graph_contract(g: &Graph, context: &str) {
    if enabled() {
        if let Err(e) = check_csr_well_formed(g) {
            fail(context, &e);
        }
        if let Err(e) = check_adjacency_symmetric(g) {
            fail(context, &e);
        }
    }
}

/// Assert that `h` is a subgraph of `g` (spanner exit contract).
/// No-op unless [`enabled`].
#[inline]
pub fn assert_subgraph(h: &Graph, g: &Graph, context: &str) {
    if enabled() {
        if let Err(e) = check_subgraph(h, g) {
            fail(context, &e);
        }
    }
}

/// Assert matching node-disjointness. No-op unless [`enabled`].
#[inline]
pub fn assert_matching_disjoint(n: usize, pairs: &[(NodeId, NodeId)], context: &str) {
    if enabled() {
        if let Err(e) = check_matching_disjoint(n, pairs) {
            fail(context, &e);
        }
    }
}

/// Assert routing validity. No-op unless [`enabled`].
#[inline]
pub fn assert_routing_valid(g: &Graph, pairs: &[(NodeId, NodeId)], paths: &[Path], context: &str) {
    if enabled() {
        if let Err(e) = check_routing_valid(g, pairs, paths) {
            fail(context, &e);
        }
    }
}

/// Assert endpoint discipline only. No-op unless [`enabled`].
#[inline]
pub fn assert_routing_endpoints(pairs: &[(NodeId, NodeId)], paths: &[Path], context: &str) {
    if enabled() {
        if let Err(e) = check_routing_endpoints(pairs, paths) {
            fail(context, &e);
        }
    }
}

/// Assert congestion-profile consistency. No-op unless [`enabled`].
#[inline]
pub fn assert_congestion_profile(n: usize, paths: &[Path], claimed: &[u32], context: &str) {
    if enabled() {
        if let Err(e) = check_congestion_profile(n, paths, claimed) {
            fail(context, &e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path(nodes: &[NodeId]) -> Path {
        Path::new(nodes.to_vec())
    }

    #[test]
    fn well_formed_graph_passes_all_graph_checks() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(check_csr_well_formed(&g).is_ok());
        assert!(check_adjacency_symmetric(&g).is_ok());
        assert_eq!(check_degree_regular(&g), Ok(2));
        assert_graph_contract(&g, "test");
    }

    #[test]
    fn irregular_graph_fails_regularity() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        assert!(check_degree_regular(&g).is_err());
    }

    #[test]
    fn subgraph_check() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
        let h = Graph::from_edges(3, vec![(0, 1)]);
        assert!(check_subgraph(&h, &g).is_ok());
        let not_sub = Graph::from_edges(4, vec![(0, 3)]);
        assert!(check_subgraph(&not_sub, &g).is_err());
    }

    #[test]
    fn matching_disjointness() {
        assert!(check_matching_disjoint(4, &[(0, 1), (2, 3)]).is_ok());
        assert!(check_matching_disjoint(4, &[(0, 1), (1, 2)]).is_err());
        assert!(check_matching_disjoint(4, &[(0, 0)]).is_err());
        assert!(check_matching_disjoint(2, &[(0, 5)]).is_err());
    }

    #[test]
    fn routing_validity_accepts_and_rejects() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let pairs = [(0, 2), (3, 3)];
        let good = vec![path(&[0, 1, 2]), path(&[3])];
        assert!(check_routing_valid(&g, &pairs, &good).is_ok());
        // Wrong endpoint.
        let wrong_end = vec![path(&[0, 1]), path(&[3])];
        assert!(check_routing_valid(&g, &pairs, &wrong_end).is_err());
        // Hop that is not an edge.
        let non_edge = vec![path(&[0, 2]), path(&[3])];
        assert!(check_routing_valid(&g, &pairs, &non_edge).is_err());
        // Count mismatch.
        assert!(check_routing_valid(&g, &pairs, &good[..1]).is_err());
    }

    #[test]
    fn congestion_profile_consistency() {
        let paths = vec![path(&[0, 1, 2]), path(&[1, 2, 1])];
        // Node 1 and 2: path 0 once each + path 1 once each (revisits
        // collapse); node 0 only in path 0.
        assert!(check_congestion_profile(3, &paths, &[1, 2, 2]).is_ok());
        assert!(check_congestion_profile(3, &paths, &[1, 2, 1]).is_err());
        assert!(check_congestion_profile(2, &paths, &[1, 2]).is_err());
    }
}
