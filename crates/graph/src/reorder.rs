//! Cache-locality node reorderings.
//!
//! The serving layer walks spanner adjacency rows and per-edge detour rows
//! whose memory order is the node id order; relabeling nodes so that
//! BFS-adjacent nodes get nearby ids turns those walks into near-sequential
//! scans. [`rcm_order`] is the classic Reverse Cuthill–McKee bandwidth
//! reduction; [`degree_order`] is the cheaper degree-bucket fallback. Both
//! return the permutation as `int_of_ext` (`int_of_ext[old] = new`), the
//! form the v2 artifact stores and the oracle's wire boundary applies.
//!
//! Reordering is semantics-free for routing: the paper's routing
//! decomposition is indifferent to vertex names, so a relabeled artifact
//! serves routes equivalent (same stretch, same congestion bounds) to the
//! original — see the differential replay tests in `tests/`.

use crate::graph::{Graph, NodeId};

/// Reverse Cuthill–McKee ordering of `g`, returned as `int_of_ext`.
///
/// Each connected component is traversed breadth-first from a
/// minimum-degree start node, visiting neighbours in increasing degree
/// order; the concatenated visit order is then reversed. Deterministic:
/// ties break on node id.
pub fn rcm_order(g: &Graph) -> Vec<NodeId> {
    let n = g.n();
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Component starts: scan nodes in (degree, id) order so each
    // component is entered at a minimum-degree node.
    let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
    by_degree.sort_by_key(|&u| (g.degree(u), u));
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    let mut row: Vec<NodeId> = Vec::new();
    for &start in &by_degree {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            row.clear();
            row.extend(
                g.neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&w| !visited[w as usize]),
            );
            row.sort_by_key(|&w| (g.degree(w), w));
            for &w in &row {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    invert_order(&order)
}

/// Degree-bucket ordering: nodes sorted by `(degree, id)`, returned as
/// `int_of_ext`. Cheaper than RCM and still groups the hub rows together.
pub fn degree_order(g: &Graph) -> Vec<NodeId> {
    let n = g.n();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&u| (g.degree(u), u));
    invert_order(&order)
}

/// Turn a visit order (`order[new] = old`) into `int_of_ext`
/// (`int_of_ext[old] = new`).
fn invert_order(order: &[NodeId]) -> Vec<NodeId> {
    let mut int_of_ext = vec![0 as NodeId; order.len()];
    for (new, &old) in order.iter().enumerate() {
        int_of_ext[old as usize] = new as NodeId;
    }
    int_of_ext
}

/// CSR bandwidth: the maximum `|u - w|` over edges `{u, w}`; the quantity
/// RCM minimises heuristically. Exposed for tests and benchmarks.
pub fn bandwidth(g: &Graph) -> usize {
    g.edges()
        .iter()
        .map(|e| (e.v - e.u) as usize)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[NodeId]) -> bool {
        let mut seen = vec![false; p.len()];
        p.iter().all(|&x| {
            let ok = (x as usize) < seen.len() && !seen[x as usize];
            if ok {
                seen[x as usize] = true;
            }
            ok
        })
    }

    #[test]
    fn rcm_is_a_permutation_and_reduces_path_bandwidth() {
        // A path graph labeled in scrambled order has large bandwidth; RCM
        // recovers the near-optimal labeling.
        let n = 50usize;
        let scramble: Vec<NodeId> = (0..n as NodeId).map(|i| (i * 17) % n as NodeId).collect();
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (scramble[i], scramble[i + 1])).collect();
        let g = Graph::from_edges(n, edges);
        let perm = rcm_order(&g);
        assert!(is_permutation(&perm));
        let relabeled = g.relabel(&perm).unwrap();
        assert!(bandwidth(&relabeled) <= 2, "rcm should flatten a path");
        assert!(bandwidth(&relabeled) < bandwidth(&g));
    }

    #[test]
    fn rcm_covers_disconnected_components() {
        let g = Graph::from_edges(6, vec![(0, 1), (2, 3), (4, 5)]);
        let perm = rcm_order(&g);
        assert!(is_permutation(&perm));
        let r = g.relabel(&perm).unwrap();
        assert_eq!(r.m(), g.m());
    }

    #[test]
    fn degree_order_is_a_permutation() {
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (3, 4)]);
        let perm = degree_order(&g);
        assert!(is_permutation(&perm));
        // The hub (node 0, degree 3) must come last in the visit order.
        assert_eq!(perm[0], 4);
    }

    #[test]
    fn orders_are_deterministic() {
        let g = Graph::from_edges(
            8,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
        );
        assert_eq!(rcm_order(&g), rcm_order(&g));
        assert_eq!(degree_order(&g), degree_order(&g));
    }

    #[test]
    fn empty_and_trivial_graphs() {
        assert!(rcm_order(&Graph::empty(0)).is_empty());
        assert_eq!(rcm_order(&Graph::empty(3)).len(), 3);
        assert_eq!(bandwidth(&Graph::empty(3)), 0);
    }
}
