//! Compact undirected simple graphs in CSR form.
//!
//! [`Graph`] is immutable once built: neighbour lists live in one contiguous
//! array, per-node slices are sorted (so adjacency tests are binary
//! searches and common-neighbour counts are linear merges), and the edge
//! list is kept in canonical `(u < v)` lexicographic order so edges have
//! stable integer ids — spanner constructions index per-edge state by id.

use crate::bitset::BitSet;
use crate::shared::{SharedSlice, SliceStore};

/// Node identifier: an index in `0..n`.
pub type NodeId = u32;

/// Errors from fallible graph construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge with equal endpoints was supplied.
    SelfLoop(NodeId),
    /// An endpoint was outside `0..n`.
    OutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The graph's node count.
        n: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::OutOfRange { node, n } => {
                write!(f, "node {node} out of range for n = {n}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected edge in canonical form (`u < v`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Build a canonical edge from two distinct endpoints (order-insensitive).
    ///
    /// # Panics
    /// Panics if `a == b` (self-loops are not representable).
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "self-loops are not allowed");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            // xtask: allow(no_panic) — documented under # Panics
            panic!(
                "node {x} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// True if `x` is one of the endpoints.
    #[inline]
    pub fn touches(&self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }
}

/// Incremental builder for [`Graph`]; duplicate edges are deduplicated at
/// [`GraphBuilder::build`] time.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Start a graph on `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-size the edge buffer.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Add an undirected edge. Order of endpoints is irrelevant; duplicates
    /// are removed when building.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "edge ({a}, {b}) out of range for n = {}",
            self.n
        );
        self.edges.push(Edge::new(a, b));
        self
    }

    /// Fallible [`GraphBuilder::add_edge`]: returns an error instead of
    /// panicking on self-loops or out-of-range endpoints (for callers
    /// handling untrusted input, e.g. file parsers).
    pub fn try_add_edge(&mut self, a: NodeId, b: NodeId) -> Result<&mut Self, GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let n = self.n;
        for x in [a, b] {
            if x as usize >= n {
                return Err(GraphError::OutOfRange { node: x, n });
            }
        }
        self.edges.push(Edge::new(a, b));
        Ok(self)
    }

    /// Number of edges currently buffered (duplicates included).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalise into an immutable CSR graph.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_canonical_edges(self.n, self.edges)
    }
}

/// An immutable undirected simple graph in CSR form.
///
/// The two large payload arrays (`adj`, `edges`) are [`SliceStore`]s:
/// owned in the common case, or borrowed views into a mapped artifact
/// buffer on the zero-copy serving path (see [`Graph::from_shared_csr`]).
/// Equality is over the logical structure, so an owned graph and a view
/// over identical bytes compare equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// CSR row offsets: neighbours of `u` are `adj[offsets[u]..offsets[u+1]]`.
    /// `pub(crate)` so [`crate::invariants`] can audit the raw structure.
    /// Always owned: `n + 1` words, converted and validated at construction.
    pub(crate) offsets: Vec<usize>,
    /// Concatenated, per-node-sorted neighbour lists.
    pub(crate) adj: SliceStore<NodeId>,
    /// Canonical edge list, sorted lexicographically; index = edge id.
    pub(crate) edges: SliceStore<Edge>,
}

impl Graph {
    /// Build from an iterator of (possibly unordered, possibly duplicated)
    /// endpoint pairs.
    ///
    /// ```
    /// use dcspan_graph::Graph;
    /// let g = Graph::from_edges(3, vec![(0, 1), (1, 0), (1, 2)]);
    /// assert_eq!(g.m(), 2); // duplicates collapse
    /// assert!(g.has_edge(2, 1));
    /// assert_eq!(g.neighbors(1), &[0, 2]);
    /// ```
    pub fn from_edges<I>(n: usize, iter: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (a, b) in iter {
            builder.add_edge(a, b);
        }
        builder.build()
    }

    /// Fallible [`Graph::from_edges`]: first invalid pair aborts the build.
    pub fn try_from_edges<I>(n: usize, iter: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (a, b) in iter {
            builder.try_add_edge(a, b)?;
        }
        Ok(builder.build())
    }

    /// Build from already-canonical, sorted, deduplicated edges (the
    /// binary decoder in [`crate::io`] re-validates and reuses this).
    pub(crate) fn from_canonical_edges(n: usize, edges: Vec<Edge>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be sorted+dedup"
        );
        let mut degree = vec![0usize; n];
        for e in &edges {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as NodeId; acc];
        for e in &edges {
            adj[cursor[e.u as usize]] = e.v;
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize]] = e.u;
            cursor[e.v as usize] += 1;
        }
        // Canonical edge order already guarantees each node's list is pushed
        // in increasing order of the *other* endpoint only for the `u` side;
        // the `v` side sees smaller ids first too (edges sorted by (u,v)),
        // but interleaving can break order, so sort each row.
        for u in 0..n {
            adj[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Graph {
            n,
            offsets,
            adj: adj.into(),
            edges: edges.into(),
        }
    }

    /// Assemble a graph whose adjacency and edge arrays are shared views
    /// into an external buffer (the zero-copy artifact path), validating the
    /// full CSR contract before handing out a `Graph`:
    ///
    /// - `offsets` has `n + 1` entries, starts at 0, is monotone, and ends
    ///   at `adj.len()`;
    /// - every adjacency row is strictly increasing with entries in `0..n`
    ///   and no self-entry;
    /// - the edge list is strictly increasing canonical (`u < v`, endpoints
    ///   in range) with `adj.len() == 2 · edges.len()`;
    /// - per-node degrees derived from the edge list match the row widths,
    ///   and each edge appears in both endpoint rows — together with the
    ///   strict row ordering this pins the adjacency array to be exactly
    ///   the edge incidences, so the view is as trustworthy as a rebuild.
    pub fn from_shared_csr(
        n: usize,
        offsets: &[u32],
        adj: SharedSlice<NodeId>,
        edges: SharedSlice<Edge>,
    ) -> Result<Graph, String> {
        {
            let adj = (*adj).as_ref();
            let edges = (*edges).as_ref();
            if offsets.len() != n + 1 {
                return Err(format!(
                    "offset array has {} entries, expected n + 1 = {}",
                    offsets.len(),
                    n + 1
                ));
            }
            if offsets[0] != 0 {
                return Err(format!("first offset is {}, expected 0", offsets[0]));
            }
            if let Some(w) = offsets.windows(2).find(|w| w[0] > w[1]) {
                return Err(format!("offsets decrease: {} then {}", w[0], w[1]));
            }
            let last = offsets[n] as usize;
            if last != adj.len() {
                return Err(format!(
                    "final offset {last} does not match adjacency length {}",
                    adj.len()
                ));
            }
            if adj.len() != 2 * edges.len() {
                return Err(format!(
                    "adjacency length {} is not twice the edge count {}",
                    adj.len(),
                    edges.len()
                ));
            }
            let mut degree = vec![0usize; n];
            for (i, e) in edges.iter().enumerate() {
                if e.u >= e.v {
                    return Err(format!("edge {i} ({}, {}) violates u < v", e.u, e.v));
                }
                if e.v as usize >= n {
                    return Err(format!(
                        "edge {i} ({}, {}) out of range for n = {n}",
                        e.u, e.v
                    ));
                }
                if i > 0 && edges[i - 1] >= *e {
                    return Err(format!(
                        "edge list not strictly increasing at ({}, {})",
                        e.u, e.v
                    ));
                }
                degree[e.u as usize] += 1;
                degree[e.v as usize] += 1;
            }
            for u in 0..n {
                let row = &adj[offsets[u] as usize..offsets[u + 1] as usize];
                if row.len() != degree[u] {
                    return Err(format!(
                        "node {u} has row width {} but degree {} in the edge list",
                        row.len(),
                        degree[u]
                    ));
                }
                for pair in row.windows(2) {
                    if pair[0] >= pair[1] {
                        return Err(format!("row of node {u} not strictly increasing"));
                    }
                }
                if let Some(&w) = row.iter().find(|&&w| w as usize >= n || w as usize == u) {
                    return Err(format!("row of node {u} holds invalid neighbour {w}"));
                }
            }
            for e in edges {
                let row_u =
                    &adj[offsets[e.u as usize] as usize..offsets[e.u as usize + 1] as usize];
                let row_v =
                    &adj[offsets[e.v as usize] as usize..offsets[e.v as usize + 1] as usize];
                if row_u.binary_search(&e.v).is_err() || row_v.binary_search(&e.u).is_err() {
                    return Err(format!(
                        "edge ({}, {}) missing from an endpoint's adjacency row",
                        e.u, e.v
                    ));
                }
            }
        }
        Ok(Graph {
            n,
            offsets: offsets.iter().map(|&o| o as usize).collect(),
            adj: SliceStore::Shared(adj),
            edges: SliceStore::Shared(edges),
        })
    }

    /// New graph with nodes renamed through the bijection `int_of_ext`
    /// (`int_of_ext[old] = new`). The result is an isomorphic graph in
    /// canonical form; edge ids are re-derived from the relabeled order.
    pub fn relabel(&self, int_of_ext: &[NodeId]) -> Result<Graph, String> {
        if int_of_ext.len() != self.n {
            return Err(format!(
                "permutation has {} entries, expected n = {}",
                int_of_ext.len(),
                self.n
            ));
        }
        let mut seen = vec![false; self.n];
        for &p in int_of_ext {
            if p as usize >= self.n || seen[p as usize] {
                return Err(format!("permutation is not a bijection at value {p}"));
            }
            seen[p as usize] = true;
        }
        let mut edges: Vec<Edge> = self
            .edges()
            .iter()
            .map(|e| Edge::new(int_of_ext[e.u as usize], int_of_ext[e.v as usize]))
            .collect();
        edges.sort_unstable();
        Ok(Graph::from_canonical_edges(self.n, edges))
    }

    /// An empty graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph::from_canonical_edges(n, Vec::new())
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n as NodeId
    }

    /// Sorted neighbour slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        // xtask: allow(checked_index) — this IS the checked accessor
        &self.adj.as_slice()[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Raw CSR row offsets (`n + 1` entries); exposed for the artifact
    /// encoder, which persists the CSR arrays verbatim.
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw concatenated adjacency array (`2m` entries, per-row sorted);
    /// exposed for the artifact encoder.
    #[inline]
    pub fn csr_adjacency(&self) -> &[NodeId] {
        self.adj.as_slice()
    }

    /// True when the payload arrays are borrowed views into a shared
    /// buffer (the zero-copy artifact path) rather than owned heap.
    pub fn uses_shared_storage(&self) -> bool {
        self.adj.is_shared() || self.edges.is_shared()
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        // xtask: allow(checked_index) — this IS the checked accessor
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Adjacency test (binary search over the sorted neighbour slice).
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        // Search the smaller adjacency list.
        let (x, y) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(x).binary_search(&y).is_ok()
    }

    /// Canonical edge list (sorted; index = edge id).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        self.edges.as_slice()
    }

    /// Stable id of edge `{a, b}` if present.
    pub fn edge_id(&self, a: NodeId, b: NodeId) -> Option<usize> {
        if a == b {
            return None;
        }
        let e = Edge::new(a, b);
        self.edges.as_slice().binary_search(&e).ok()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|u| self.degree(u as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree.
    pub fn min_degree(&self) -> usize {
        (0..self.n)
            .map(|u| self.degree(u as NodeId))
            .min()
            .unwrap_or(0)
    }

    /// True if all nodes have the same degree.
    pub fn is_regular(&self) -> bool {
        self.n == 0 || self.max_degree() == self.min_degree()
    }

    /// Number of common neighbours of `a` and `b` (linear merge of the two
    /// sorted neighbour slices).
    pub fn common_neighbors_count(&self, a: NodeId, b: NodeId) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let na = self.neighbors(a);
        let nb = self.neighbors(b);
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Collect the common neighbours of `a` and `b` into `out` (cleared
    /// first), in ascending node order. Allocation-free when `out` has
    /// capacity — the variant hot loops reuse a scratch buffer with.
    pub fn common_neighbors_into(&self, a: NodeId, b: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let (mut i, mut j) = (0usize, 0usize);
        let na = self.neighbors(a);
        let nb = self.neighbors(b);
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(na[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Collect the common neighbours of `a` and `b`. Thin allocating
    /// wrapper over [`Graph::common_neighbors_into`].
    pub fn common_neighbors(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.common_neighbors_into(a, b, &mut out);
        out
    }

    /// Fill `bits` with the neighbourhood of `u` (`bits` must have capacity ≥ n).
    pub fn neighbor_bitset_into(&self, u: NodeId, bits: &mut BitSet) {
        bits.clear();
        for &w in self.neighbors(u) {
            bits.insert(w as usize);
        }
    }

    /// New graph with the same node set keeping only edges where `pred` holds.
    pub fn filter_edges<F>(&self, mut pred: F) -> Graph
    where
        F: FnMut(usize, Edge) -> bool,
    {
        let kept: Vec<Edge> = self
            .edges()
            .iter()
            .enumerate()
            .filter(|(id, e)| pred(*id, **e))
            .map(|(_, e)| *e)
            .collect();
        Graph::from_canonical_edges(self.n, kept)
    }

    /// New graph with the same node set whose edge set is the union of
    /// `self`'s edges and `extra`.
    pub fn with_extra_edges<I>(&self, extra: I) -> Graph
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut edges = self.edges().to_vec();
        edges.extend(extra);
        edges.sort_unstable();
        edges.dedup();
        Graph::from_canonical_edges(self.n, edges)
    }

    /// True if every edge of `self` is also an edge of `other` (node counts
    /// must match — spanners share the node set by definition).
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.n == other.n && self.edges().iter().all(|e| other.has_edge(e.u, e.v))
    }

    /// Sum of degrees (= 2m); sanity helper used in tests.
    pub fn degree_sum(&self) -> usize {
        self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // 0-1, 1-2, 0-2 triangle; 3 pendant on 0.
        Graph::from_edges(4, vec![(0, 1), (2, 1), (2, 0), (0, 3)])
    }

    #[test]
    fn edge_canonicalisation() {
        let e = Edge::new(5, 2);
        assert_eq!((e.u, e.v), (2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
        assert!(e.touches(2) && e.touches(5) && !e.touches(3));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let _ = Edge::new(1, 2).other(9);
    }

    #[test]
    fn builder_dedups_and_sorts() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 0), (2, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.edges(), &[Edge::new(0, 1), Edge::new(1, 2)]);
    }

    #[test]
    fn csr_neighbors_sorted() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn degrees_and_regularity() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!(!g.is_regular());

        let cycle = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(cycle.is_regular());
    }

    #[test]
    fn has_edge_and_edge_id() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.edge_id(1, 0), Some(0));
        assert_eq!(g.edge_id(3, 0), Some(2));
        assert_eq!(g.edge_id(1, 3), None);
    }

    #[test]
    fn common_neighbors_merge() {
        let g = triangle_plus_pendant();
        assert_eq!(g.common_neighbors_count(0, 1), 1); // node 2
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
        assert_eq!(g.common_neighbors_count(0, 3), 0);
        // K4: every pair has 2 common neighbours.
        let k4 = Graph::from_edges(4, (0..4).flat_map(|i| (i + 1..4).map(move |j| (i, j))));
        assert_eq!(k4.common_neighbors_count(0, 3), 2);
    }

    #[test]
    fn common_neighbors_into_reuses_and_clears() {
        let g = triangle_plus_pendant();
        let mut buf = vec![99, 98, 97]; // stale contents must be cleared
        g.common_neighbors_into(0, 1, &mut buf);
        assert_eq!(buf, vec![2]);
        g.common_neighbors_into(0, 3, &mut buf);
        assert!(buf.is_empty());
        g.common_neighbors_into(1, 2, &mut buf);
        assert_eq!(buf, g.common_neighbors(1, 2));
    }

    #[test]
    fn filter_and_union_roundtrip() {
        let g = triangle_plus_pendant();
        let h = g.filter_edges(|_, e| !(e.u == 0 && e.v == 1));
        assert_eq!(h.m(), g.m() - 1);
        assert!(h.is_subgraph_of(&g));
        assert!(!g.is_subgraph_of(&h));
        let restored = h.with_extra_edges([Edge::new(0, 1)]);
        assert_eq!(restored, g);
    }

    #[test]
    fn neighbor_bitset() {
        let g = triangle_plus_pendant();
        let mut bits = BitSet::new(g.n());
        g.neighbor_bitset_into(0, &mut bits);
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        g.neighbor_bitset_into(3, &mut bits);
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.is_subgraph_of(&triangle_plus_pendant().with_extra_edges([])));
    }

    #[test]
    fn from_shared_csr_matches_owned_build() {
        use std::sync::Arc;
        let g = triangle_plus_pendant();
        let offsets: Vec<u32> = g.csr_offsets().iter().map(|&o| o as u32).collect();
        let adj: crate::shared::SharedSlice<NodeId> = Arc::new(g.csr_adjacency().to_vec());
        let edges: crate::shared::SharedSlice<Edge> = Arc::new(g.edges().to_vec());
        let view = Graph::from_shared_csr(g.n(), &offsets, adj, edges).unwrap();
        assert!(view.uses_shared_storage());
        assert!(!g.uses_shared_storage());
        assert_eq!(view, g);
        assert_eq!(view.neighbors(0), g.neighbors(0));
        assert_eq!(view.edge_id(3, 0), g.edge_id(3, 0));
        assert_eq!(view.clone(), g);
    }

    #[test]
    fn from_shared_csr_rejects_inconsistent_parts() {
        use std::sync::Arc;
        let g = triangle_plus_pendant();
        let offsets: Vec<u32> = g.csr_offsets().iter().map(|&o| o as u32).collect();
        let adj = || -> crate::shared::SharedSlice<NodeId> { Arc::new(g.csr_adjacency().to_vec()) };
        let edges = || -> crate::shared::SharedSlice<Edge> { Arc::new(g.edges().to_vec()) };

        // Wrong offset count.
        assert!(Graph::from_shared_csr(g.n(), &offsets[1..], adj(), edges()).is_err());
        // Final offset disagrees with the adjacency length.
        let mut bad = offsets.clone();
        bad[g.n()] += 1;
        assert!(Graph::from_shared_csr(g.n(), &bad, adj(), edges()).is_err());
        // Adjacency entry tampered: row no longer matches the edge list.
        let mut tampered = g.csr_adjacency().to_vec();
        tampered[0] = 2;
        let t: crate::shared::SharedSlice<NodeId> = Arc::new(tampered);
        assert!(Graph::from_shared_csr(g.n(), &offsets, t, edges()).is_err());
        // Edge list out of canonical order.
        let mut swapped = g.edges().to_vec();
        swapped.swap(0, 1);
        let s: crate::shared::SharedSlice<Edge> = Arc::new(swapped);
        assert!(Graph::from_shared_csr(g.n(), &offsets, adj(), s).is_err());
    }

    #[test]
    fn relabel_produces_isomorphic_graph() {
        let g = triangle_plus_pendant();
        let perm = [2u32, 0, 3, 1]; // int_of_ext
        let r = g.relabel(&perm).unwrap();
        assert_eq!(r.n(), g.n());
        assert_eq!(r.m(), g.m());
        for e in g.edges() {
            assert!(r.has_edge(perm[e.u as usize], perm[e.v as usize]));
        }
        assert_eq!(r.degree(perm[0] as NodeId), g.degree(0));
        // Identity permutation is a no-op.
        assert_eq!(g.relabel(&[0, 1, 2, 3]).unwrap(), g);
        // Non-bijections are rejected.
        assert!(g.relabel(&[0, 0, 1, 2]).is_err());
        assert!(g.relabel(&[0, 1, 2, 9]).is_err());
        assert!(g.relabel(&[0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn try_add_edge_reports_errors() {
        let mut b = GraphBuilder::new(3);
        assert!(b.try_add_edge(0, 1).is_ok());
        assert_eq!(b.try_add_edge(1, 1).unwrap_err(), GraphError::SelfLoop(1));
        assert_eq!(
            b.try_add_edge(0, 7).unwrap_err(),
            GraphError::OutOfRange { node: 7, n: 3 }
        );
        assert_eq!(b.build().m(), 1);
    }

    #[test]
    fn try_from_edges_roundtrip_and_error() {
        let g = Graph::try_from_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.m(), 2);
        let err = Graph::try_from_edges(3, vec![(0, 1), (2, 2)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop(2));
        assert!(err.to_string().contains("self-loop"));
        let err2 = Graph::try_from_edges(2, vec![(0, 3)]).unwrap_err();
        assert!(err2.to_string().contains("out of range"));
    }
}
