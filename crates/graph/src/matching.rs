//! Matchings: Hopcroft–Karp maximum bipartite matching and a greedy
//! maximal matching.
//!
//! The expander construction (Theorem 2 / Lemma 4 of the paper) needs, for
//! every routed edge `{u, v}` outside the spanner, a **maximum matching
//! between the neighbourhoods `N(u)` and `N(v)`** — its guaranteed size
//! `Δ(1 − λn/Δ²)` is what makes enough 3-hop replacement paths available.
//! [`max_bipartite_matching`] computes it exactly with Hopcroft–Karp in
//! `O(E√V)`.

use crate::graph::{Graph, NodeId};
use crate::FxHashMap;

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Maximum matching between the node sets `left` and `right` using only
/// edges of `g` that join a left node to a right node.
///
/// The two sets may overlap: a node occurring in both acts as two distinct
/// endpoints (one per side), which matches the paper's usage where
/// `N(u) ∩ N(v)` can be non-empty. A node never matches itself because the
/// graph is simple. Duplicate entries within one side are ignored.
///
/// Returns the matched pairs as `(left_node, right_node)`.
///
/// ```
/// use dcspan_graph::Graph;
/// use dcspan_graph::matching::max_bipartite_matching;
/// // Greedy would stall at 1 here; Hopcroft–Karp finds the augmenting path.
/// let g = Graph::from_edges(4, vec![(0, 2), (0, 3), (1, 2)]);
/// let m = max_bipartite_matching(&g, &[0, 1], &[2, 3]);
/// assert_eq!(m.len(), 2);
/// ```
pub fn max_bipartite_matching(
    g: &Graph,
    left: &[NodeId],
    right: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    // Deduplicate and index-compress each side.
    let mut left_nodes = left.to_vec();
    left_nodes.sort_unstable();
    left_nodes.dedup();
    let mut right_nodes = right.to_vec();
    right_nodes.sort_unstable();
    right_nodes.dedup();

    let mut right_index: FxHashMap<NodeId, u32> = FxHashMap::default();
    for (i, &r) in right_nodes.iter().enumerate() {
        right_index.insert(r, i as u32);
    }

    // Bipartite adjacency: for each left node, the right indices it can pair
    // with. Iterate the smaller of (its neighbourhood, right set).
    let adj: Vec<Vec<u32>> = left_nodes
        .iter()
        .map(|&l| {
            let mut row = Vec::new();
            if g.degree(l) <= right_nodes.len() {
                for &w in g.neighbors(l) {
                    if let Some(&ri) = right_index.get(&w) {
                        row.push(ri);
                    }
                }
            } else {
                for (ri, &r) in right_nodes.iter().enumerate() {
                    if g.has_edge(l, r) {
                        row.push(ri as u32);
                    }
                }
            }
            row
        })
        .collect();

    let nl = left_nodes.len();
    let nr = right_nodes.len();
    let mut match_l = vec![NIL; nl]; // left i → right index
    let mut match_r = vec![NIL; nr]; // right j → left index
    let mut dist = vec![INF; nl];

    // Hopcroft–Karp: repeat (BFS layering over free left nodes, then DFS
    // augmentation along shortest alternating paths) until no augmenting
    // path exists.
    loop {
        // BFS phase.
        let mut queue = std::collections::VecDeque::new();
        for i in 0..nl {
            if match_l[i] == NIL {
                dist[i] = 0;
                queue.push_back(i as u32);
            } else {
                dist[i] = INF;
            }
        }
        let mut found_free = false;
        while let Some(i) = queue.pop_front() {
            let di = dist[i as usize];
            for &j in &adj[i as usize] {
                let owner = match_r[j as usize];
                if owner == NIL {
                    found_free = true;
                } else if dist[owner as usize] == INF {
                    dist[owner as usize] = di + 1;
                    queue.push_back(owner);
                }
            }
        }
        if !found_free {
            break;
        }
        // DFS phase.
        fn try_augment(
            i: u32,
            adj: &[Vec<u32>],
            match_l: &mut [u32],
            match_r: &mut [u32],
            dist: &mut [u32],
        ) -> bool {
            for idx in 0..adj[i as usize].len() {
                let j = adj[i as usize][idx];
                let owner = match_r[j as usize];
                let ok = if owner == NIL {
                    true
                } else if dist[owner as usize] == dist[i as usize] + 1 {
                    try_augment(owner, adj, match_l, match_r, dist)
                } else {
                    false
                };
                if ok {
                    match_l[i as usize] = j;
                    match_r[j as usize] = i;
                    return true;
                }
            }
            dist[i as usize] = INF;
            false
        }
        for i in 0..nl as u32 {
            if match_l[i as usize] == NIL {
                try_augment(i, &adj, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }

    (0..nl)
        .filter(|&i| match_l[i] != NIL)
        .map(|i| (left_nodes[i], right_nodes[match_l[i] as usize]))
        .collect()
}

/// Greedy maximal (not maximum) matching over the whole graph: scan edges
/// in canonical order, keep an edge iff both endpoints are still free.
/// Guaranteed to be within factor 2 of maximum.
pub fn greedy_maximal_matching(g: &Graph) -> Vec<crate::graph::Edge> {
    let mut used = vec![false; g.n()];
    let mut matching = Vec::new();
    for &e in g.edges() {
        if !used[e.u as usize] && !used[e.v as usize] {
            used[e.u as usize] = true;
            used[e.v as usize] = true;
            matching.push(e);
        }
    }
    matching
}

/// Check that `pairs` is a valid matching between `left` and `right` in `g`:
/// every pair is an edge, and no endpoint is reused on its side.
pub fn is_valid_bipartite_matching(
    g: &Graph,
    left: &[NodeId],
    right: &[NodeId],
    pairs: &[(NodeId, NodeId)],
) -> bool {
    let left_set: crate::FxHashSet<NodeId> = left.iter().copied().collect();
    let right_set: crate::FxHashSet<NodeId> = right.iter().copied().collect();
    let mut used_l = crate::FxHashSet::default();
    let mut used_r = crate::FxHashSet::default();
    pairs.iter().all(|&(l, r)| {
        left_set.contains(&l)
            && right_set.contains(&r)
            && g.has_edge(l, r)
            && used_l.insert(l)
            && used_r.insert(r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn perfect_matching_on_bipartite_cycle() {
        // C6 with sides {0,2,4} and {1,3,5} has a perfect matching of size 3.
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let m = max_bipartite_matching(&g, &[0, 2, 4], &[1, 3, 5]);
        assert_eq!(m.len(), 3);
        assert!(is_valid_bipartite_matching(&g, &[0, 2, 4], &[1, 3, 5], &m));
    }

    #[test]
    fn augmenting_path_needed() {
        // Classic instance where greedy can stall at 1 but maximum is 2:
        // left {0,1}, right {2,3}; edges 0-2, 0-3, 1-2.
        let g = Graph::from_edges(4, vec![(0, 2), (0, 3), (1, 2)]);
        let m = max_bipartite_matching(&g, &[0, 1], &[2, 3]);
        assert_eq!(m.len(), 2);
        assert!(is_valid_bipartite_matching(&g, &[0, 1], &[2, 3], &m));
    }

    #[test]
    fn empty_sides() {
        let g = Graph::from_edges(3, vec![(0, 1)]);
        assert!(max_bipartite_matching(&g, &[], &[0, 1]).is_empty());
        assert!(max_bipartite_matching(&g, &[0], &[]).is_empty());
    }

    #[test]
    fn no_cross_edges() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let m = max_bipartite_matching(&g, &[0, 1], &[2, 3]);
        assert!(m.is_empty());
    }

    #[test]
    fn overlapping_sides_no_self_match() {
        // Star: centre 0 with leaves 1..4, plus edge 1-2.
        // left = {1,2}, right = {1,2}: a node in both sides acts as one
        // endpoint per side, so both (1→2) and (2→1) can be matched; the
        // maximum is 2 and no pair ever matches a node to itself.
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let m = max_bipartite_matching(&g, &[1, 2], &[1, 2]);
        assert_eq!(m.len(), 2);
        for &(l, r) in &m {
            assert_ne!(l, r);
            assert!(g.has_edge(l, r));
        }
    }

    #[test]
    fn duplicates_in_input_sets() {
        let g = Graph::from_edges(4, vec![(0, 2), (1, 3)]);
        let m = max_bipartite_matching(&g, &[0, 0, 1, 1], &[2, 3, 3]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn matches_size_of_complete_bipartite() {
        // K_{3,5}: maximum matching is 3.
        let edges: Vec<(u32, u32)> = (0u32..3)
            .flat_map(|l| (3u32..8).map(move |r| (l, r)))
            .collect();
        let g = Graph::from_edges(8, edges);
        let left = [0, 1, 2];
        let right = [3, 4, 5, 6, 7];
        let m = max_bipartite_matching(&g, &left, &right);
        assert_eq!(m.len(), 3);
        assert!(is_valid_bipartite_matching(&g, &left, &right, &m));
    }

    #[test]
    fn greedy_maximal_is_maximal() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let m = greedy_maximal_matching(&g);
        // Maximality: every edge shares an endpoint with the matching.
        let mut used = [false; 6];
        for e in &m {
            assert!(!used[e.u as usize] && !used[e.v as usize]);
            used[e.u as usize] = true;
            used[e.v as usize] = true;
        }
        for e in g.edges() {
            assert!(used[e.u as usize] || used[e.v as usize]);
        }
    }

    #[test]
    fn is_valid_rejects_bad_matchings() {
        let g = Graph::from_edges(4, vec![(0, 2), (0, 3), (1, 3)]);
        let left = [0, 1];
        let right = [2, 3];
        // Reused left endpoint.
        assert!(!is_valid_bipartite_matching(
            &g,
            &left,
            &right,
            &[(0, 2), (0, 3)]
        ));
        // Non-edge.
        assert!(!is_valid_bipartite_matching(&g, &left, &right, &[(1, 2)]));
        // Endpoint outside side.
        assert!(!is_valid_bipartite_matching(&g, &left, &right, &[(2, 3)]));
    }
}
