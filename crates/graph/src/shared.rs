//! Owned-or-borrowed backing storage for flat CSR payload arrays.
//!
//! [`SliceStore`] lets [`crate::graph::Graph`] and [`crate::csr::CsrTable`]
//! keep their existing value semantics (clone, compare, debug) while
//! optionally borrowing their large payload arrays from a reference-counted
//! backing buffer — the zero-copy path used when an oracle is served
//! straight out of a mapped artifact file. Equality, hashing-adjacent
//! operations, and iteration all go through [`SliceStore::as_slice`], so an
//! owned table and a view over identical bytes are indistinguishable to
//! callers.
//!
//! The borrowed arm holds an `Arc<dyn AsRef<[T]>>`: the provider (e.g. the
//! `dcspan-store` mapped-artifact section handles) keeps the backing buffer
//! alive for as long as any view exists, and this crate never needs to know
//! whether the bytes live in an `mmap`, an aligned heap block, or a plain
//! `Vec`.

use std::sync::Arc;

/// A reference-counted handle to a slice whose bytes are owned elsewhere.
///
/// `Vec<T>` implements `AsRef<[T]>`, so an owned fallback copy can be
/// shared through the same type as a true zero-copy section view.
pub type SharedSlice<T> = Arc<dyn AsRef<[T]> + Send + Sync>;

/// Backing storage for a flat array: an owned `Vec` or a shared view.
pub enum SliceStore<T: 'static> {
    /// Heap storage owned by the containing structure.
    Owned(Vec<T>),
    /// Borrowed view into a reference-counted backing buffer.
    Shared(SharedSlice<T>),
}

impl<T> SliceStore<T> {
    /// The stored elements, regardless of backing.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            SliceStore::Owned(v) => v.as_slice(),
            SliceStore::Shared(s) => (**s).as_ref(),
        }
    }

    /// Number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// True when the backing is a shared view rather than an owned `Vec`.
    pub fn is_shared(&self) -> bool {
        matches!(self, SliceStore::Shared(_))
    }

    /// Bytes of heap memory attributable to *this* structure (a shared
    /// view costs its holder nothing beyond the `Arc`).
    pub fn heap_bytes(&self) -> usize {
        match self {
            SliceStore::Owned(v) => v.len() * std::mem::size_of::<T>(),
            SliceStore::Shared(_) => 0,
        }
    }
}

impl<T: Clone> SliceStore<T> {
    /// Extract an owned `Vec`, copying when the backing is shared.
    pub fn into_vec(self) -> Vec<T> {
        match self {
            SliceStore::Owned(v) => v,
            SliceStore::Shared(s) => (*s).as_ref().to_vec(),
        }
    }
}

impl<T> From<Vec<T>> for SliceStore<T> {
    fn from(v: Vec<T>) -> Self {
        SliceStore::Owned(v)
    }
}

impl<T> Default for SliceStore<T> {
    fn default() -> Self {
        SliceStore::Owned(Vec::new())
    }
}

impl<T: Clone> Clone for SliceStore<T> {
    fn clone(&self) -> Self {
        match self {
            SliceStore::Owned(v) => SliceStore::Owned(v.clone()),
            // Cloning a view clones the handle, not the bytes.
            SliceStore::Shared(s) => SliceStore::Shared(Arc::clone(s)),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SliceStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: PartialEq> PartialEq for SliceStore<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for SliceStore<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_and_shared_compare_equal() {
        let owned: SliceStore<u32> = vec![1, 2, 3].into();
        let shared: SliceStore<u32> = SliceStore::Shared(Arc::new(vec![1u32, 2, 3]));
        assert_eq!(owned, shared);
        assert!(!owned.is_shared());
        assert!(shared.is_shared());
        assert_eq!(owned.heap_bytes(), 12);
        assert_eq!(shared.heap_bytes(), 0);
    }

    #[test]
    fn clone_of_shared_is_cheap_handle_clone() {
        let backing: Arc<Vec<u32>> = Arc::new(vec![5, 6]);
        let view: SliceStore<u32> = SliceStore::Shared(backing.clone());
        let copy = view.clone();
        assert_eq!(Arc::strong_count(&backing), 3);
        assert_eq!(copy.as_slice(), &[5, 6]);
    }

    #[test]
    fn into_vec_copies_shared() {
        let shared: SliceStore<u32> = SliceStore::Shared(Arc::new(vec![9u32, 8]));
        assert_eq!(shared.into_vec(), vec![9, 8]);
        let owned: SliceStore<u32> = vec![7].into();
        assert_eq!(owned.into_vec(), vec![7]);
    }

    #[test]
    fn debug_formats_as_slice() {
        let s: SliceStore<u32> = vec![1, 2].into();
        assert_eq!(format!("{s:?}"), "[1, 2]");
    }
}
