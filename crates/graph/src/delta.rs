//! Edge mutation batches, overlay views, and blast-radius extraction.
//!
//! Incremental maintenance treats a graph change as a *batch* of
//! [`EdgeMutation`]s applied with sequential set semantics: inserting an
//! edge that is already present, or removing one that is absent, is a
//! tolerated no-op, and an insert followed by a remove of the same edge
//! cancels. The net effect of a batch is captured by a [`MutationDiff`]
//! (edges added, edges removed — both canonical and sorted), which is what
//! every downstream incremental pass keys on.
//!
//! The paper's construction is structurally local: an edge's support
//! status depends only on common-neighbour counts among its endpoints'
//! neighbourhoods, and a detour row on 2/3-hop reachability between its
//! endpoints. [`blast_radius`] extracts exactly the node region a batch
//! can influence — the mutated endpoints `M`, their closed 1-hop
//! neighbourhood `N¹[M]`, and the closed 2-hop neighbourhood `N²[M]`, all
//! over the *union* of the old and new graphs (an influence that exists in
//! either version must be chased).

use crate::bitset::BitSet;
use crate::graph::{Edge, Graph, GraphError, NodeId};
use crate::FxHashSet;

/// A single edge mutation in the node-id space of the graph it targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeMutation {
    /// Insert the undirected edge `{u, v}` (no-op if already present).
    Insert(NodeId, NodeId),
    /// Remove the undirected edge `{u, v}` (no-op if absent).
    Remove(NodeId, NodeId),
}

impl EdgeMutation {
    /// The mutation's endpoints as written (not canonicalised).
    pub fn endpoints(self) -> (NodeId, NodeId) {
        match self {
            EdgeMutation::Insert(u, v) | EdgeMutation::Remove(u, v) => (u, v),
        }
    }

    /// True for [`EdgeMutation::Insert`].
    pub fn is_insert(self) -> bool {
        matches!(self, EdgeMutation::Insert(..))
    }

    /// The canonical edge this mutation targets, validating the endpoints
    /// against a graph on `n` nodes.
    pub fn edge(self, n: usize) -> Result<Edge, GraphError> {
        let (u, v) = self.endpoints();
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        for node in [u, v] {
            if node as usize >= n {
                return Err(GraphError::OutOfRange { node, n });
            }
        }
        Ok(Edge::new(u, v))
    }
}

/// The net effect of a mutation batch: edges present only after, and edges
/// present only before. Both lists are canonical (`u < v`) and sorted, so
/// they diff and splice deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MutationDiff {
    /// Edges in the new graph that were not in the old one.
    pub added: Vec<Edge>,
    /// Edges in the old graph that are not in the new one.
    pub removed: Vec<Edge>,
}

impl MutationDiff {
    /// True when the batch had no net effect.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of net edge changes.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// The diff between two graphs on the same node set, computed
    /// directly from their canonical edge lists (two-pointer merge).
    pub fn between(old: &Graph, new: &Graph) -> MutationDiff {
        let (a, b) = (old.edges(), new.edges());
        let mut diff = MutationDiff::default();
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    diff.removed.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    diff.added.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        diff.removed.extend_from_slice(&a[i..]);
        diff.added.extend_from_slice(&b[j..]);
        diff
    }
}

/// A mutable overlay over an immutable CSR [`Graph`]: the base graph plus
/// a set of pending inserts and removes, queryable without materialising a
/// new CSR. Used to stage a batch, answer adjacency questions mid-batch,
/// and then [`GraphOverlay::materialize`] once.
#[derive(Clone, Debug)]
pub struct GraphOverlay<'a> {
    base: &'a Graph,
    added: FxHashSet<Edge>,
    removed: FxHashSet<Edge>,
}

impl<'a> GraphOverlay<'a> {
    /// Start an overlay with no pending mutations.
    pub fn new(base: &'a Graph) -> Self {
        GraphOverlay {
            base,
            added: FxHashSet::default(),
            removed: FxHashSet::default(),
        }
    }

    /// The underlying immutable graph.
    pub fn base(&self) -> &'a Graph {
        self.base
    }

    /// Number of nodes (overlays never change the node set).
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// Number of edges in the overlaid graph.
    pub fn m(&self) -> usize {
        self.base.m() + self.added.len() - self.removed.len()
    }

    /// Whether `{a, b}` is an edge of the overlaid graph.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let e = Edge::new(a, b);
        if self.added.contains(&e) {
            return true;
        }
        if self.removed.contains(&e) {
            return false;
        }
        self.base.has_edge(a, b)
    }

    /// Degree of `u` in the overlaid graph.
    pub fn degree(&self, u: NodeId) -> usize {
        let mut d = self.base.degree(u);
        for e in &self.added {
            if e.touches(u) {
                d += 1;
            }
        }
        for e in &self.removed {
            if e.touches(u) {
                d -= 1;
            }
        }
        d
    }

    /// Apply one mutation with set semantics (no-ops tolerated), after
    /// validating its endpoints.
    pub fn apply(&mut self, mutation: EdgeMutation) -> Result<(), GraphError> {
        let e = mutation.edge(self.base.n())?;
        let in_base = self.base.has_edge(e.u, e.v);
        if mutation.is_insert() {
            if in_base {
                self.removed.remove(&e);
            } else {
                self.added.insert(e);
            }
        } else if in_base {
            self.removed.insert(e);
        } else {
            self.added.remove(&e);
        }
        Ok(())
    }

    /// The net effect of all mutations applied so far.
    pub fn diff(&self) -> MutationDiff {
        let mut added: Vec<Edge> = self.added.iter().copied().collect();
        let mut removed: Vec<Edge> = self.removed.iter().copied().collect();
        added.sort_unstable();
        removed.sort_unstable();
        MutationDiff { added, removed }
    }

    /// Materialise the overlaid graph as a fresh CSR [`Graph`].
    pub fn materialize(&self) -> Graph {
        if self.added.is_empty() && self.removed.is_empty() {
            return self.base.clone();
        }
        self.base
            .filter_edges(|_, e| !self.removed.contains(&e))
            .with_extra_edges(self.added.iter().copied())
    }
}

/// Apply a mutation batch to `g` with sequential set semantics and return
/// the mutated graph together with the batch's net [`MutationDiff`].
///
/// Fails with a typed [`GraphError`] on the first self-loop or
/// out-of-range endpoint; no-op inserts/removes are tolerated and an
/// insert-then-remove of the same edge cancels exactly.
pub fn apply_mutations(
    g: &Graph,
    batch: &[EdgeMutation],
) -> Result<(Graph, MutationDiff), GraphError> {
    let mut overlay = GraphOverlay::new(g);
    for &m in batch {
        overlay.apply(m)?;
    }
    Ok((overlay.materialize(), overlay.diff()))
}

/// The node region a mutation batch can influence, over `G_old ∪ G_new`.
#[derive(Clone, Debug)]
pub struct BlastRadius {
    /// `M`: endpoints of net-changed edges, sorted and deduplicated.
    pub touched: Vec<NodeId>,
    /// `N¹[M]`: `M` plus every neighbour (in either graph version) of a
    /// node in `M`. An edge's support status can change only if one of its
    /// endpoints lies here.
    pub one_hop: BitSet,
    /// `N²[M]`: `N¹[M]` plus its neighbours. A pair's common-neighbour
    /// count or detour row can change only if an endpoint lies here.
    pub two_hop: BitSet,
}

impl BlastRadius {
    /// True when neither endpoint of `{u, v}` lies in `N¹[M]`.
    pub fn edge_outside_one_hop(&self, u: NodeId, v: NodeId) -> bool {
        !self.one_hop.contains(u as usize) && !self.one_hop.contains(v as usize)
    }
}

/// Grow `region` by one hop in `g`: insert every neighbour of every
/// currently-set node. `seeds` lists the set nodes to expand from.
fn expand_one_hop(g: &Graph, seeds: &[NodeId], region: &mut BitSet) {
    for &u in seeds {
        for &w in g.neighbors(u) {
            region.insert(w as usize);
        }
    }
}

/// Compute the [`BlastRadius`] of `diff` over the union of `old` and
/// `new`. Both graphs must share the node set; the diff is the output of
/// [`apply_mutations`] or [`MutationDiff::between`] for that pair.
pub fn blast_radius(old: &Graph, new: &Graph, diff: &MutationDiff) -> BlastRadius {
    debug_assert_eq!(old.n(), new.n(), "blast radius requires one node set");
    let n = old.n();
    let mut touched: Vec<NodeId> = diff
        .added
        .iter()
        .chain(diff.removed.iter())
        .flat_map(|e| [e.u, e.v])
        .collect();
    touched.sort_unstable();
    touched.dedup();

    let mut one_hop = BitSet::new(n);
    for &u in &touched {
        one_hop.insert(u as usize);
    }
    expand_one_hop(old, &touched, &mut one_hop);
    expand_one_hop(new, &touched, &mut one_hop);

    let mut two_hop = one_hop.clone();
    let frontier: Vec<NodeId> = one_hop.iter().map(|i| i as NodeId).collect();
    expand_one_hop(old, &frontier, &mut two_hop);
    expand_one_hop(new, &frontier, &mut two_hop);

    BlastRadius {
        touched,
        one_hop,
        two_hop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn apply_insert_and_remove() {
        let g = path4();
        let batch = [EdgeMutation::Insert(4, 5), EdgeMutation::Remove(0, 1)];
        let (g2, diff) = apply_mutations(&g, &batch).unwrap();
        assert!(g2.has_edge(4, 5));
        assert!(!g2.has_edge(0, 1));
        assert_eq!(g2.m(), g.m());
        assert_eq!(diff.added, vec![Edge::new(4, 5)]);
        assert_eq!(diff.removed, vec![Edge::new(0, 1)]);
        assert_eq!(diff, MutationDiff::between(&g, &g2));
    }

    #[test]
    fn no_ops_are_tolerated() {
        let g = path4();
        let batch = [
            EdgeMutation::Insert(0, 1), // already present
            EdgeMutation::Remove(0, 5), // absent
            EdgeMutation::Insert(2, 5), // new...
            EdgeMutation::Remove(5, 2), // ...cancelled (either orientation)
        ];
        let (g2, diff) = apply_mutations(&g, &batch).unwrap();
        assert_eq!(g2, g);
        assert!(diff.is_empty());
        assert_eq!(diff.len(), 0);
    }

    #[test]
    fn remove_then_insert_cancels() {
        let g = path4();
        let batch = [EdgeMutation::Remove(1, 2), EdgeMutation::Insert(2, 1)];
        let (g2, diff) = apply_mutations(&g, &batch).unwrap();
        assert_eq!(g2, g);
        assert!(diff.is_empty());
    }

    #[test]
    fn typed_errors_on_bad_endpoints() {
        let g = path4();
        assert!(matches!(
            apply_mutations(&g, &[EdgeMutation::Insert(3, 3)]),
            Err(GraphError::SelfLoop(3))
        ));
        assert!(matches!(
            apply_mutations(&g, &[EdgeMutation::Remove(0, 99)]),
            Err(GraphError::OutOfRange { node: 99, n: 6 })
        ));
    }

    #[test]
    fn overlay_answers_adjacency_mid_batch() {
        let g = path4();
        let mut ov = GraphOverlay::new(&g);
        ov.apply(EdgeMutation::Insert(0, 5)).unwrap();
        ov.apply(EdgeMutation::Remove(2, 3)).unwrap();
        assert!(ov.has_edge(0, 5));
        assert!(!ov.has_edge(2, 3));
        assert!(ov.has_edge(1, 2));
        assert_eq!(ov.m(), g.m());
        assert_eq!(ov.degree(5), 1);
        assert_eq!(ov.degree(3), 1);
        assert_eq!(
            ov.materialize(),
            apply_mutations(
                &g,
                &[EdgeMutation::Insert(0, 5), EdgeMutation::Remove(2, 3),]
            )
            .unwrap()
            .0
        );
    }

    #[test]
    fn blast_radius_covers_both_versions() {
        // Path 0-1-2-3-4 plus isolated 5; remove {2,3}, insert {4,5}.
        let g = path4();
        let batch = [EdgeMutation::Remove(2, 3), EdgeMutation::Insert(4, 5)];
        let (g2, diff) = apply_mutations(&g, &batch).unwrap();
        let br = blast_radius(&g, &g2, &diff);
        assert_eq!(br.touched, vec![2, 3, 4, 5]);
        // N¹[M] = {1,2,3,4,5}: 1 neighbours 2, and 5 joins via the new
        // edge {4,5} (union semantics chase influence in either version).
        for node in [1, 2, 3, 4, 5] {
            assert!(br.one_hop.contains(node), "N¹ missing {node}");
        }
        // 0 is two hops from 2: in N² but not N¹.
        assert!(!br.one_hop.contains(0));
        assert!(br.two_hop.contains(0));
        assert!(br.edge_outside_one_hop(0, 0));
        assert!(!br.edge_outside_one_hop(0, 1));
    }

    #[test]
    fn empty_diff_has_empty_radius() {
        let g = path4();
        let diff = MutationDiff::default();
        let br = blast_radius(&g, &g, &diff);
        assert!(br.touched.is_empty());
        assert_eq!(br.one_hop.len(), 0);
        assert_eq!(br.two_hop.len(), 0);
    }
}
