//! A fixed-capacity bitset over `u64` words.
//!
//! Used for dense membership tests (e.g. "is `x` a neighbour of `u`?" during
//! support counting, where the neighbourhood is re-queried Θ(Δ²) times) and
//! as the visited set in BFS. For those access patterns a flat bit array
//! beats hash sets by a wide margin.

/// A fixed-size set of `usize` values in `0..capacity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Create an empty bitset able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of values the set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `index`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        debug_assert!(index < self.capacity, "bit index out of range");
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Remove `index`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        debug_assert!(index < self.capacity, "bit index out of range");
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        debug_assert!(index < self.capacity, "bit index out of range");
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Remove all elements (keeps capacity).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over the set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Number of elements present in both sets (capacities may differ).
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(!s.contains(63));
        assert!(s.insert(63));
        assert!(!s.insert(63));
        assert!(s.contains(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(300);
        for &i in &[5usize, 0, 299, 64, 128, 63] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 128, 299]);
    }

    #[test]
    fn clear_and_is_empty() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn intersection_len_counts_common() {
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        for i in (0..128).step_by(2) {
            a.insert(i);
        }
        for i in (0..128).step_by(3) {
            b.insert(i);
        }
        // Multiples of 6 in 0..128: 0,6,...,126 → 22 values.
        assert_eq!(a.intersection_len(&b), 22);
    }

    #[test]
    fn union_with_merges() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        b.insert(69);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(69));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn capacity_not_multiple_of_64() {
        let mut s = BitSet::new(65);
        s.insert(64);
        assert!(s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![64]);
    }
}
