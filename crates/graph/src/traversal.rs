//! Breadth-first traversal: exact distances, shortest paths, components.
//!
//! All graphs in this workspace are unweighted, so BFS gives exact
//! distances. Distance stretch measurements (Definition 1 of the paper)
//! compare `d_H(u,v)` against `d_G(u,v)` edge by edge, which reduces to the
//! primitives here.

use crate::graph::{Graph, NodeId};

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances; `UNREACHABLE` for disconnected nodes.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS truncated at `radius` hops; nodes farther than `radius` keep
/// `UNREACHABLE`. Used by bounded-hop detour searches.
pub fn bfs_distances_bounded(g: &Graph, source: NodeId, radius: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == radius {
            continue;
        }
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS parents for shortest-path extraction; `None` for the source and for
/// unreachable nodes.
pub fn bfs_parents(g: &Graph, source: NodeId) -> Vec<Option<NodeId>> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut parent = vec![None; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                parent[w as usize] = Some(u);
                queue.push_back(w);
            }
        }
    }
    parent
}

/// Exact distance between one pair (early-exit bidirectional-free BFS).
pub fn distance(g: &Graph, s: NodeId, t: NodeId) -> Option<u32> {
    if s == t {
        return Some(0);
    }
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[s as usize] = 0;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                if w == t {
                    return Some(du + 1);
                }
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    None
}

/// One shortest path from `s` to `t` as a node sequence (inclusive), or
/// `None` if `t` is unreachable.
pub fn shortest_path(g: &Graph, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
    if s == t {
        return Some(vec![s]);
    }
    let parent = bfs_parents(g, s);
    parent[t as usize]?;
    let mut path = vec![t];
    let mut cur = t;
    while let Some(p) = parent[cur as usize] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], s);
    Some(path)
}

/// Connected-component labels (0-based, in order of discovery) and the
/// number of components.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let mut label = vec![u32::MAX; g.n()];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..g.n() as NodeId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// True if the graph is connected (vacuously true for n ≤ 1).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    let dist = bfs_distances(g, 0);
    dist.iter().all(|&d| d != UNREACHABLE)
}

/// Eccentricity of `source` (max finite BFS distance); `None` if some node
/// is unreachable.
pub fn eccentricity(g: &Graph, source: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, source);
    let mut max = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact diameter by running BFS from every node. Quadratic; intended for
/// the modest graph sizes used in experiments and tests.
pub fn diameter(g: &Graph) -> Option<u32> {
    let mut best = 0;
    for s in 0..g.n() as NodeId {
        best = best.max(eccentricity(g, s)?);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = path_graph(6);
        let d = bfs_distances_bounded(&g, 0, 2);
        assert_eq!(d[..3], [0, 1, 2]);
        assert!(d[3..].iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn pairwise_distance_and_unreachable() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        assert_eq!(distance(&g, 0, 1), Some(1));
        assert_eq!(distance(&g, 0, 3), None);
        assert_eq!(distance(&g, 2, 2), Some(0));
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = path_graph(5);
        let p = shortest_path(&g, 0, 4).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
        assert_eq!(shortest_path(&g, 3, 3).unwrap(), vec![3]);
        let disconnected = Graph::from_edges(4, vec![(0, 1)]);
        assert!(shortest_path(&disconnected, 0, 3).is_none());
    }

    #[test]
    fn shortest_path_is_shortest_on_cycle() {
        // 6-cycle: distance 0→3 is 3 either way.
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.len() as u32 - 1, distance(&g, 0, 3).unwrap());
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path_graph(4)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, 0), Some(4));
        assert_eq!(eccentricity(&g, 2), Some(2));
        assert_eq!(diameter(&g), Some(4));
        let disconnected = Graph::from_edges(3, vec![(0, 1)]);
        assert_eq!(eccentricity(&disconnected, 0), None);
        assert_eq!(diameter(&disconnected), None);
    }
}
