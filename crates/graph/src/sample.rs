//! Bernoulli edge sampling.
//!
//! Both spanner constructions of the paper start by keeping each edge
//! independently with some probability (`1/n^ε` in Theorem 2, `Δ'/Δ` in
//! Algorithm 1). Sampling here is **per-edge-id deterministic**: whether
//! edge `id` survives depends only on `(seed, id)`, so parallel callers and
//! the distributed LOCAL-model implementation reproduce the exact same
//! subgraph.

use crate::graph::Graph;
use crate::rng::derive_seed;

/// Decide whether edge `id` survives sampling with probability `p` under
/// `seed`. Deterministic in `(seed, id)`.
#[inline]
pub fn edge_survives(seed: u64, id: usize, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
    // Map the derived 64-bit value to [0, 1).
    let x = derive_seed(seed, id as u64) >> 11; // top 53 bits
    let unit = x as f64 * (1.0 / (1u64 << 53) as f64);
    unit < p
}

/// Decide whether edge `{u, v}` survives sampling with probability `p`
/// under `seed`, keyed by the **endpoint pair** rather than an edge id.
///
/// This variant needs no global edge numbering, which is what lets the
/// distributed LOCAL-model implementation make the identical decision as a
/// sequential run from the shared seed alone.
#[inline]
pub fn edge_survives_pair(seed: u64, u: crate::NodeId, v: crate::NodeId, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    let key = ((a as u64) << 32) | b as u64;
    let x = derive_seed(seed ^ 0xD15C_0DE5_EED5_EED5, key) >> 11;
    let unit = x as f64 * (1.0 / (1u64 << 53) as f64);
    unit < p
}

/// Pair-keyed survival mask aligned with `g.edges()` (see
/// [`edge_survives_pair`]).
pub fn sample_mask_pair_keyed(g: &Graph, p: f64, seed: u64) -> Vec<bool> {
    g.edges()
        .iter()
        .map(|e| edge_survives_pair(seed, e.u, e.v, p))
        .collect()
}

/// Subgraph of `g` (same node set) keeping each edge by the pair-keyed
/// rule of [`edge_survives_pair`]. Because survival depends only on
/// `(seed, {u, v})` — never on the edge's position in the edge list — the
/// decision for an edge is stable across graph mutations, which is what
/// makes incremental re-sampling a per-edge-local operation.
pub fn sample_subgraph_pair_keyed(g: &Graph, p: f64, seed: u64) -> Graph {
    g.filter_edges(|_, e| edge_survives_pair(seed, e.u, e.v, p))
}

/// The set of surviving edge ids when each edge of `g` is kept independently
/// with probability `p`.
pub fn sample_edge_ids(g: &Graph, p: f64, seed: u64) -> Vec<usize> {
    (0..g.m())
        .filter(|&id| edge_survives(seed, id, p))
        .collect()
}

/// Subgraph of `g` (same node set) keeping each edge independently with
/// probability `p`.
pub fn sample_subgraph(g: &Graph, p: f64, seed: u64) -> Graph {
    g.filter_edges(|id, _| edge_survives(seed, id, p))
}

/// Boolean survival mask aligned with `g.edges()`.
pub fn sample_mask(g: &Graph, p: f64, seed: u64) -> Vec<bool> {
    (0..g.m()).map(|id| edge_survives(seed, id, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn complete(n: usize) -> Graph {
        Graph::from_edges(
            n,
            (0..n as u32).flat_map(|i| (i + 1..n as u32).map(move |j| (i, j))),
        )
    }

    #[test]
    fn extreme_probabilities() {
        let g = complete(20);
        assert_eq!(sample_subgraph(&g, 1.0, 3).m(), g.m());
        assert_eq!(sample_subgraph(&g, 0.0, 3).m(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = complete(30);
        let a = sample_edge_ids(&g, 0.5, 42);
        let b = sample_edge_ids(&g, 0.5, 42);
        assert_eq!(a, b);
        let c = sample_edge_ids(&g, 0.5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn mask_and_ids_agree() {
        let g = complete(15);
        let ids = sample_edge_ids(&g, 0.3, 7);
        let mask = sample_mask(&g, 0.3, 7);
        let from_mask: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ids, from_mask);
    }

    #[test]
    fn subgraph_is_subgraph() {
        let g = complete(25);
        let h = sample_subgraph(&g, 0.4, 9);
        assert!(h.is_subgraph_of(&g));
        assert_eq!(h.n(), g.n());
    }

    #[test]
    fn empirical_rate_close_to_p() {
        // K_200 has 19900 edges; with p = 0.25 the sample mean should be
        // within a few standard deviations (σ ≈ 0.003) of p.
        let g = complete(200);
        let kept = sample_edge_ids(&g, 0.25, 1234).len() as f64;
        let rate = kept / g.m() as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} too far from 0.25");
    }

    #[test]
    fn per_edge_decisions_look_independent_across_ids() {
        // Adjacent edge ids should not be correlated: count agreement of
        // consecutive decisions; for p = 0.5 it should be near 50%.
        let g = complete(150);
        let mask = sample_mask(&g, 0.5, 5);
        let agree = mask.windows(2).filter(|w| w[0] == w[1]).count() as f64;
        let frac = agree / (mask.len() - 1) as f64;
        assert!((frac - 0.5).abs() < 0.03, "consecutive agreement {frac}");
    }
}
