//! Proper edge colouring.
//!
//! Algorithm 2 of the paper (decomposition of a routing into matchings)
//! colours the edges of each level subgraph `G_k` with `m_k ≤ d_k + 1`
//! colours; each colour class is a matching. The `d_k + 1` bound is exactly
//! Vizing's theorem, realised here by the **Misra–Gries** algorithm
//! ([`misra_gries_edge_coloring`], `O(nm)`). A cheaper greedy variant with
//! at most `2Δ − 1` colours ([`greedy_edge_coloring`]) is provided as an
//! ablation — it only changes the constant in Lemma 22's congestion bound.

use crate::graph::{Graph, NodeId};

/// A proper edge colouring: `color[edge_id]` ∈ `0..num_colors`, and no two
/// edges sharing an endpoint have the same colour.
#[derive(Clone, Debug)]
pub struct EdgeColoring {
    /// Colour per edge id (aligned with `Graph::edges()`).
    pub color: Vec<u32>,
    /// Number of colours used (max colour + 1).
    pub num_colors: u32,
}

impl EdgeColoring {
    /// Group edge ids by colour: `classes()[c]` is the matching of colour `c`.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_colors as usize];
        for (id, &c) in self.color.iter().enumerate() {
            out[c as usize].push(id);
        }
        out
    }
}

/// Verify that `coloring` is a proper edge colouring of `g`.
pub fn is_proper_edge_coloring(g: &Graph, coloring: &EdgeColoring) -> bool {
    if coloring.color.len() != g.m() {
        return false;
    }
    if g.m() == 0 {
        return true;
    }
    if coloring.color.iter().any(|&c| c >= coloring.num_colors) {
        return false;
    }
    // For each node, colours of incident edges must be pairwise distinct.
    let mut seen: Vec<u32> = vec![u32::MAX; coloring.num_colors as usize];
    for u in 0..g.n() as NodeId {
        for &w in g.neighbors(u) {
            let id = g.edge_id(u, w).expect("neighbour implies edge"); // xtask: allow(no_panic) — w came from neighbors(u)
            let c = coloring.color[id] as usize;
            if seen[c] == u {
                return false;
            }
            seen[c] = u;
        }
    }
    true
}

/// Greedy proper edge colouring: scan edges in canonical order, give each
/// the smallest colour unused at both endpoints. Uses at most `2Δ − 1`
/// colours.
pub fn greedy_edge_coloring(g: &Graph) -> EdgeColoring {
    let delta = g.max_degree();
    let palette = (2 * delta).saturating_sub(1).max(1);
    // used[u * palette + c] == edge id+1 if colour c used at u.
    let mut used = vec![false; g.n() * palette];
    let mut color = vec![0u32; g.m()];
    let mut max_color = 0u32;
    for (id, e) in g.edges().iter().enumerate() {
        let base_u = e.u as usize * palette;
        let base_v = e.v as usize * palette;
        let c = (0..palette)
            .find(|&c| !used[base_u + c] && !used[base_v + c])
            .expect("2Δ−1 colours always suffice greedily"); // xtask: allow(no_panic) — pigeonhole: 2Δ−1 colours, ≤ 2Δ−2 blocked
        used[base_u + c] = true;
        used[base_v + c] = true;
        color[id] = c as u32;
        max_color = max_color.max(c as u32);
    }
    EdgeColoring {
        color,
        num_colors: if g.m() == 0 { 0 } else { max_color + 1 },
    }
}

const NONE: u32 = u32::MAX;

/// State for the Misra–Gries colouring: an incidence table
/// `at[u][c] = edge id` (or `NONE`) for colours `0..=Δ`.
struct MgState {
    palette: usize,
    /// `at[u * palette + c]` = edge id coloured `c` at `u`, or `NONE`.
    at: Vec<u32>,
    /// Colour per edge id, or `NONE` if uncoloured.
    color: Vec<u32>,
}

impl MgState {
    fn new(n: usize, m: usize, palette: usize) -> Self {
        MgState {
            palette,
            at: vec![NONE; n * palette],
            color: vec![NONE; m],
        }
    }

    #[inline]
    fn edge_at(&self, u: NodeId, c: u32) -> u32 {
        self.at[u as usize * self.palette + c as usize]
    }

    #[inline]
    fn is_free(&self, u: NodeId, c: u32) -> bool {
        self.edge_at(u, c) == NONE
    }

    fn free_color(&self, u: NodeId) -> u32 {
        (0..self.palette as u32)
            .find(|&c| self.is_free(u, c))
            .expect("a node of degree ≤ Δ always has a free colour among Δ+1") // xtask: allow(no_panic) — pigeonhole: Δ+1 colours, degree ≤ Δ
    }

    fn set(&mut self, g: &Graph, id: u32, c: u32) {
        let e = g.edges()[id as usize];
        debug_assert!(self.is_free(e.u, c) && self.is_free(e.v, c));
        self.at[e.u as usize * self.palette + c as usize] = id;
        self.at[e.v as usize * self.palette + c as usize] = id;
        self.color[id as usize] = c;
    }

    fn unset(&mut self, g: &Graph, id: u32) {
        let c = self.color[id as usize];
        debug_assert_ne!(c, NONE);
        let e = g.edges()[id as usize];
        self.at[e.u as usize * self.palette + c as usize] = NONE;
        self.at[e.v as usize * self.palette + c as usize] = NONE;
        self.color[id as usize] = NONE;
    }
}

/// Misra–Gries edge colouring: proper colouring with at most `Δ + 1`
/// colours in `O(nm)` time.
///
/// ```
/// use dcspan_graph::Graph;
/// use dcspan_graph::coloring::{misra_gries_edge_coloring, is_proper_edge_coloring};
/// // C5 has Δ = 2 but needs 3 colours (odd cycle).
/// let g = Graph::from_edges(5, (0u32..5).map(|i| (i, (i + 1) % 5)));
/// let col = misra_gries_edge_coloring(&g);
/// assert!(is_proper_edge_coloring(&g, &col));
/// assert_eq!(col.num_colors, 3);
/// ```
pub fn misra_gries_edge_coloring(g: &Graph) -> EdgeColoring {
    let delta = g.max_degree();
    if g.m() == 0 {
        return EdgeColoring {
            color: Vec::new(),
            num_colors: 0,
        };
    }
    let palette = delta + 1;
    let mut st = MgState::new(g.n(), g.m(), palette);

    for id in 0..g.m() as u32 {
        color_one_edge(g, &mut st, id);
    }

    let max_color = st.color.iter().copied().max().unwrap_or(0);
    EdgeColoring {
        color: st.color,
        num_colors: max_color + 1,
    }
}

/// Colour the single edge `id = (u, v)` using a Vizing fan at `u`.
fn color_one_edge(g: &Graph, st: &mut MgState, id: u32) {
    let e = g.edges()[id as usize];
    let (u, v) = (e.u, e.v);

    // The fan/inversion step always succeeds per Vizing's theorem; the loop
    // guards against implementation slips by retrying from a fresh fan (the
    // coloring state only ever stays proper), and panics rather than spin.
    for _attempt in 0..g.n().max(8) {
        // Build a maximal fan F of u with F[0] = v: each next fan node w is a
        // neighbour of u whose edge (u, w) is coloured with a colour free on
        // the previous fan node.
        let mut fan: Vec<NodeId> = vec![v];
        let mut in_fan = crate::FxHashSet::default();
        in_fan.insert(v);
        loop {
            let last = *fan.last().unwrap(); // xtask: allow(no_panic) — fan starts non-empty
            let mut extended = false;
            for &w in g.neighbors(u) {
                if w == v || in_fan.contains(&w) {
                    continue;
                }
                let wid = g.edge_id(u, w).expect("neighbour implies edge") as u32; // xtask: allow(no_panic) — w came from neighbors(u)
                let wc = st.color[wid as usize];
                if wc != NONE && st.is_free(last, wc) {
                    fan.push(w);
                    in_fan.insert(w);
                    extended = true;
                    break;
                }
            }
            if !extended {
                break;
            }
        }

        let c = st.free_color(u);
        let d = st.free_color(*fan.last().unwrap()); // xtask: allow(no_panic) — fan starts non-empty

        if c != d {
            invert_cd_path(g, st, u, c, d);
        }
        // After inversion (or if c == d), d is free on u.
        debug_assert!(st.is_free(u, d));

        // Find the shortest fan prefix F[0..=k] that is still a fan under the
        // (possibly updated) colouring and whose tip has d free; rotate it.
        let mut prefix_ok = true;
        for k in 0..fan.len() {
            if k > 0 {
                // Fan property for the prefix: colour of (u, F[k]) free on F[k-1].
                let kid = g.edge_id(u, fan[k]).unwrap() as u32; // xtask: allow(no_panic) — fan[k] is a neighbour of u
                let kc = st.color[kid as usize];
                if kc == NONE || !st.is_free(fan[k - 1], kc) {
                    prefix_ok = false;
                }
            }
            if !prefix_ok {
                break;
            }
            if st.is_free(fan[k], d) {
                rotate_fan(g, st, u, &fan[..=k]);
                let tip_id = g.edge_id(u, fan[k]).unwrap() as u32; // xtask: allow(no_panic) — fan[k] is a neighbour of u
                debug_assert_eq!(st.color[tip_id as usize], NONE);
                st.set(g, tip_id, d);
                return;
            }
        }
        // No admissible prefix found (should not happen); retry with the
        // updated colouring — the inversion changed the neighbourhood, so the
        // next fan differs.
    }
    // xtask: allow(no_panic) — guards against an impossible state
    panic!("Misra–Gries failed to colour edge {id}; colouring state is inconsistent");
}

/// Invert the maximal alternating cd-path starting at `u`: its first edge is
/// coloured `d` (colour `c` is free at `u`), subsequent edges alternate
/// `c, d, …`. Swapping `c` and `d` along the path keeps the colouring proper
/// and makes `d` free at `u`.
fn invert_cd_path(g: &Graph, st: &mut MgState, u: NodeId, c: u32, d: u32) {
    debug_assert!(st.is_free(u, c));
    // Collect the path of edge ids.
    let mut path = Vec::new();
    let mut cur = u;
    let mut col = d;
    loop {
        let eid = st.edge_at(cur, col);
        if eid == NONE {
            break;
        }
        path.push(eid);
        cur = g.edges()[eid as usize].other(cur);
        col = if col == d { c } else { d };
    }
    // Uncolour then recolour with swapped colours.
    for &eid in &path {
        st.unset(g, eid);
    }
    let mut col = c; // first edge was d, becomes c
    for &eid in &path {
        st.set(g, eid, col);
        col = if col == d { c } else { d };
    }
}

/// Rotate the fan prefix: shift each fan edge's colour one step towards the
/// fan tip and leave the tip edge uncoloured.
fn rotate_fan(g: &Graph, st: &mut MgState, u: NodeId, fan: &[NodeId]) {
    for j in 0..fan.len() - 1 {
        let id_j = g.edge_id(u, fan[j]).unwrap() as u32; // xtask: allow(no_panic) — fan nodes are neighbours of u
        let id_j1 = g.edge_id(u, fan[j + 1]).unwrap() as u32; // xtask: allow(no_panic) — fan nodes are neighbours of u
        let next_color = st.color[id_j1 as usize];
        debug_assert_ne!(next_color, NONE);
        if st.color[id_j as usize] != NONE {
            st.unset(g, id_j);
        }
        st.unset(g, id_j1);
        st.set(g, id_j, next_color);
    }
    // Tip edge (u, fan.last()) is now uncoloured.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in i + 1..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((i, j));
                }
            }
        }
        Graph::from_edges(n, edges)
    }

    #[test]
    fn greedy_is_proper_and_bounded() {
        for seed in 0..5 {
            let g = random_graph(30, 0.3, seed);
            let col = greedy_edge_coloring(&g);
            assert!(is_proper_edge_coloring(&g, &col));
            assert!((col.num_colors as usize) < 2 * g.max_degree());
        }
    }

    #[test]
    fn misra_gries_is_proper_and_delta_plus_one() {
        for seed in 0..10 {
            let g = random_graph(25, 0.4, seed);
            let col = misra_gries_edge_coloring(&g);
            assert!(is_proper_edge_coloring(&g, &col), "seed {seed}");
            assert!(
                col.num_colors as usize <= g.max_degree() + 1,
                "seed {seed}: used {} colours for Δ = {}",
                col.num_colors,
                g.max_degree()
            );
        }
    }

    #[test]
    fn misra_gries_on_complete_graphs() {
        for n in 2..9 {
            let edges: Vec<(u32, u32)> = (0..n as u32)
                .flat_map(|i| (i + 1..n as u32).map(move |j| (i, j)))
                .collect();
            let g = Graph::from_edges(n, edges);
            let col = misra_gries_edge_coloring(&g);
            assert!(is_proper_edge_coloring(&g, &col));
            assert!(col.num_colors as usize <= n); // Δ+1 = n for K_n
        }
    }

    #[test]
    fn misra_gries_on_path_uses_two_colors() {
        let g = Graph::from_edges(6, (0u32..5).map(|i| (i, i + 1)));
        let col = misra_gries_edge_coloring(&g);
        assert!(is_proper_edge_coloring(&g, &col));
        assert!(col.num_colors <= 3); // Δ+1 = 3; optimal is 2
    }

    #[test]
    fn odd_cycle_needs_three() {
        // C5 has Δ = 2 but chromatic index 3: exercises the Vizing fan.
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let col = misra_gries_edge_coloring(&g);
        assert!(is_proper_edge_coloring(&g, &col));
        assert_eq!(col.num_colors, 3);
    }

    #[test]
    fn star_uses_delta_colors() {
        let g = Graph::from_edges(7, (1u32..7).map(|i| (0, i)));
        let col = misra_gries_edge_coloring(&g);
        assert!(is_proper_edge_coloring(&g, &col));
        assert_eq!(col.num_colors, 6);
    }

    #[test]
    fn empty_graph_zero_colors() {
        let g = Graph::empty(4);
        let col = misra_gries_edge_coloring(&g);
        assert_eq!(col.num_colors, 0);
        assert!(is_proper_edge_coloring(&g, &col));
        let col = greedy_edge_coloring(&g);
        assert_eq!(col.num_colors, 0);
    }

    #[test]
    fn classes_are_matchings() {
        let g = random_graph(20, 0.5, 7);
        let col = misra_gries_edge_coloring(&g);
        for class in col.classes() {
            let mut used = vec![false; g.n()];
            for id in class {
                let e = g.edges()[id];
                assert!(!used[e.u as usize] && !used[e.v as usize]);
                used[e.u as usize] = true;
                used[e.v as usize] = true;
            }
        }
    }

    #[test]
    fn verifier_rejects_improper() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let bad = EdgeColoring {
            color: vec![0, 0],
            num_colors: 1,
        };
        assert!(!is_proper_edge_coloring(&g, &bad));
        let wrong_len = EdgeColoring {
            color: vec![0],
            num_colors: 1,
        };
        assert!(!is_proper_edge_coloring(&g, &wrong_len));
        let out_of_range = EdgeColoring {
            color: vec![0, 5],
            num_colors: 2,
        };
        assert!(!is_proper_edge_coloring(&g, &out_of_range));
    }
}
