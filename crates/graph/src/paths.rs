//! Walks in a graph, used as routing paths.
//!
//! The paper's routings are sets of paths; a [`Path`] here is a node
//! sequence where consecutive nodes must be adjacent in the graph the path
//! is validated against. Paths may in general revisit nodes (substitute
//! routings built from per-edge detours can), which is why congestion
//! counting deduplicates node visits per path (see `dcspan-routing`).

use crate::graph::{Graph, NodeId};

/// A walk `v₀, v₁, …, v_l` through a graph. Length = number of edges = `l`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Create a path from a non-empty node sequence.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or two consecutive nodes are equal.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a path needs at least one node");
        assert!(
            nodes.windows(2).all(|w| w[0] != w[1]),
            "consecutive path nodes must differ"
        );
        Path { nodes }
    }

    /// The single-node path (length 0).
    pub fn trivial(v: NodeId) -> Self {
        Path { nodes: vec![v] }
    }

    /// The node sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// First node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    #[inline]
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().unwrap() // xtask: allow(no_panic) — Path is non-empty by construction
    }

    /// Number of edges (`l(p)` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True for a single-node path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Iterate over the edges of the path as `(from, to)` pairs.
    pub fn hops(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// True if every hop is an edge of `g`.
    pub fn is_valid_in(&self, g: &Graph) -> bool {
        self.hops().all(|(a, b)| g.has_edge(a, b))
    }

    /// True if no node repeats.
    pub fn is_simple(&self) -> bool {
        let mut seen = crate::FxHashSet::default();
        self.nodes.iter().all(|&v| seen.insert(v))
    }

    /// Build a new path by replacing every hop through `detour`: hop
    /// `(a, b)` becomes the node sequence `detour(a, b)` (which must start
    /// at `a` and end at `b`). Used to assemble substitute routings from
    /// per-edge replacement paths.
    ///
    /// # Panics
    /// Panics if a detour does not connect its hop's endpoints.
    pub fn splice<F>(&self, mut detour: F) -> Path
    where
        F: FnMut(NodeId, NodeId) -> Vec<NodeId>,
    {
        if self.is_empty() {
            return self.clone();
        }
        let mut nodes = vec![self.source()];
        for (a, b) in self.hops() {
            let seg = detour(a, b);
            assert!(
                seg.first() == Some(&a) && seg.last() == Some(&b),
                "detour for ({a}, {b}) must start at {a} and end at {b}"
            );
            nodes.extend_from_slice(&seg[1..]);
        }
        Path::new(nodes)
    }

    /// The set of distinct nodes visited (used for node-congestion
    /// accounting: a path contributes at most 1 to each node it touches).
    pub fn distinct_nodes(&self) -> Vec<NodeId> {
        let mut sorted = self.nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn c5() -> Graph {
        Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn basic_accessors() {
        let p = Path::new(vec![0, 1, 2]);
        assert_eq!(p.source(), 0);
        assert_eq!(p.destination(), 2);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.hops().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(7);
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.source(), 7);
        assert_eq!(p.destination(), 7);
        assert!(p.is_valid_in(&c5())); // no hops → vacuously valid
        assert!(p.is_valid_in(&Graph::empty(8)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty() {
        let _ = Path::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "consecutive path nodes")]
    fn rejects_stutter() {
        let _ = Path::new(vec![0, 0, 1]);
    }

    #[test]
    fn validity() {
        let g = c5();
        assert!(Path::new(vec![0, 1, 2, 3]).is_valid_in(&g));
        assert!(!Path::new(vec![0, 2]).is_valid_in(&g));
    }

    #[test]
    fn simplicity_and_distinct_nodes() {
        let simple = Path::new(vec![0, 1, 2]);
        assert!(simple.is_simple());
        let walk = Path::new(vec![0, 1, 0, 4]);
        assert!(!walk.is_simple());
        assert_eq!(walk.distinct_nodes(), vec![0, 1, 4]);
    }

    #[test]
    fn splice_replaces_hops() {
        // Replace each hop (a,b) with a 3-hop detour a → a+10? Use concrete:
        // in C5, replace (0,1) by 0-4-3-2-1 style? Keep it simple with a map.
        let p = Path::new(vec![0, 1, 2]);
        let spliced = p.splice(|a, b| {
            if (a, b) == (0, 1) {
                vec![0, 4, 1]
            } else {
                vec![a, b]
            }
        });
        assert_eq!(spliced.nodes(), &[0, 4, 1, 2]);
        assert_eq!(spliced.len(), 3);
    }

    #[test]
    #[should_panic(expected = "must start at")]
    fn splice_rejects_bad_detour() {
        let p = Path::new(vec![0, 1]);
        let _ = p.splice(|_, _| vec![0, 3]);
    }

    #[test]
    fn splice_on_trivial_is_identity() {
        let p = Path::trivial(3);
        let q = p.splice(|_, _| unreachable!());
        assert_eq!(p, q);
    }
}
