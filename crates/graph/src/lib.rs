//! # dcspan-graph
//!
//! Graph substrate for the `dcspan` workspace: a compact CSR-backed
//! undirected simple graph, plus the combinatorial kernels that the
//! DC-spanner constructions of Busch–Kowalski–Robinson (SPAA 2024) rely on:
//!
//! * breadth-first traversal and exact distances ([`traversal`]),
//! * maximum bipartite matching via Hopcroft–Karp ([`matching`]),
//! * proper edge colouring with `Δ+1` colours via Misra–Gries and a fast
//!   greedy `2Δ−1` fallback ([`coloring`]),
//! * Bernoulli edge sampling used by both spanner algorithms ([`sample`]),
//! * fixed-size bitsets and a fast integer hasher used throughout
//!   ([`bitset`], [`hash`]),
//! * the degree-adaptive triangle/intersection kernel behind every
//!   common-neighbour hot path ([`intersect`]): merge / galloping /
//!   word-parallel popcount with threshold early-exit, plus the
//!   pair-deduplicated support table,
//! * generic CSR-packed jagged tables for precomputed per-edge indexes
//!   ([`csr`]), with owned-or-borrowed payload storage ([`shared`]) so the
//!   same types serve zero-copy out of mapped artifact buffers,
//! * cache-locality node reorderings (Reverse Cuthill–McKee and
//!   degree-bucket) for relabeled artifacts ([`reorder`]),
//! * runtime contract checks at algorithm boundaries ([`invariants`]),
//!   active in debug builds or under the `strict-invariants` feature.
//!
//! Everything here is implemented from scratch; there are no third-party
//! graph or linear-algebra dependencies.
//!
//! ## Conventions
//!
//! * Nodes are `u32` indices in `0..n`.
//! * Graphs are undirected and simple (no self-loops, no parallel edges).
//! * All randomised routines take explicit seeds and are deterministic for a
//!   fixed seed, independent of thread scheduling.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitset;
pub mod coloring;
pub mod csr;
pub mod delta;
pub mod graph;
pub mod hash;
pub mod intersect;
pub mod invariants;
pub mod io;
pub mod matching;
pub mod paths;
pub mod reorder;
pub mod rng;
pub mod sample;
pub mod shared;
pub mod stats;
pub mod traversal;

pub use bitset::BitSet;
pub use csr::CsrTable;
pub use delta::{
    apply_mutations, blast_radius, BlastRadius, EdgeMutation, GraphOverlay, MutationDiff,
};
pub use graph::{Edge, Graph, GraphBuilder, GraphError, NodeId};
pub use intersect::{IntersectKernel, StrongPairTable};
pub use io::{decode_seq, encode_seq, ByteReader, CodecError, FixedCodec};
pub use paths::Path;
pub use shared::{SharedSlice, SliceStore};

/// Convenience alias for hash maps keyed by small integers.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, hash::FxBuildHasher>;
/// Convenience alias for hash sets of small integers.
pub type FxHashSet<K> = std::collections::HashSet<K, hash::FxBuildHasher>;
