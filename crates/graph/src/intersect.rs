//! The shared triangle/intersection kernel: degree-adaptive
//! common-neighbour counting with threshold early-exit.
//!
//! Every common-neighbour hot path in the workspace — the Algorithm 1
//! support test, 3-detour survival counting, detour enumeration, and the
//! serving-side `DetourIndex` build — reduces to the same primitive:
//! *"how large is `N(a) ∩ N(b)`?"*, usually compared against a threshold.
//! [`IntersectKernel`] answers it with the cheapest applicable strategy:
//!
//! * **linear merge** of the two sorted neighbour slices (the baseline,
//!   best when the degrees are short and similar),
//! * **galloping search** — iterate the shorter list, exponential +
//!   binary search in the longer — when the degrees are skewed,
//! * **word-parallel popcount** over pinned neighbourhood bit-rows
//!   (`u64` AND + `count_ones`, 64 candidates per instruction) when the
//!   graph is dense enough that both neighbour lists are longer than the
//!   bit-row.
//!
//! Thresholded queries ([`IntersectKernel::count_at_least`]) additionally
//! **early-exit** in both directions: success as soon as the running count
//! reaches the threshold (so `count > a` stops after `a + 1` hits instead
//! of completing the count), and failure as soon as the elements still
//! unscanned cannot close the gap.
//!
//! [`StrongPairTable`] layers pair deduplication on top: for a fixed
//! threshold `a` it computes, **once per unordered base pair `{u, z}`**,
//! whether `|N(u) ∩ N(z)| > a` — whereas the naive support sweep recomputes
//! that count once per common neighbour of `u` and `z`. All strategies are
//! exact; callers see bit-identical results to the naive merge.

use crate::bitset::BitSet;
use crate::graph::{Graph, NodeId};
use rayon::prelude::*;

/// Skew ratio at which galloping search beats the linear merge:
/// gallop when `|small| * GALLOP_SKEW < |large|`.
const GALLOP_SKEW: usize = 8;

/// Cost factor of the word-parallel path: one bit-row costs
/// `words_per_row` word ops; prefer it when the merge would touch more
/// than `WORD_COST_FACTOR * words_per_row` list elements.
const WORD_COST_FACTOR: usize = 3;

/// Upper bound on the memory spent pinning every neighbourhood as a
/// bit-row (64 MiB — n ≲ 23k nodes).
const DENSE_ROWS_BUDGET_BYTES: usize = 64 << 20;

/// Every neighbourhood of a graph pinned as a fixed-stride bit matrix:
/// row `u` holds bit `z` iff `z ∈ N(u)`.
struct RowBits {
    /// Words per row (`⌈n / 64⌉`); row `u` is `words[u·stride..(u+1)·stride]`.
    stride: usize,
    words: Vec<u64>,
}

impl RowBits {
    /// Pin all rows of `g` (parallel over rows; rows are concatenated in
    /// node order, so the result is schedule-independent).
    fn build(g: &Graph) -> RowBits {
        let n = g.n();
        let stride = n.div_ceil(64).max(1);
        let rows: Vec<Vec<u64>> = (0..n as u32)
            .into_par_iter()
            .map(|u| {
                let mut row = vec![0u64; stride];
                for &z in g.neighbors(u) {
                    row[z as usize / 64] |= 1u64 << (z as usize % 64);
                }
                row
            })
            .collect();
        let mut words = Vec::with_capacity(n * stride);
        for row in rows {
            words.extend_from_slice(&row);
        }
        RowBits { stride, words }
    }

    /// The bit-row of node `u`.
    #[inline]
    fn row(&self, u: NodeId) -> &[u64] {
        let start = u as usize * self.stride;
        &self.words[start..start + self.stride]
    }
}

/// Degree-adaptive common-neighbour kernel over one graph.
///
/// [`IntersectKernel::new`] pins every neighbourhood as a bit-row when the
/// graph is small/dense enough for the word-parallel path to pay off;
/// [`IntersectKernel::lean`] skips the pinning for one-off queries. Both
/// return exactly the counts the naive sorted merge would.
pub struct IntersectKernel<'g> {
    g: &'g Graph,
    rows: Option<RowBits>,
}

impl<'g> IntersectKernel<'g> {
    /// Kernel with automatic strategy selection: bit-rows are pinned iff
    /// they fit the memory budget *and* some pair of neighbour lists is
    /// long enough for the word-parallel path to ever be chosen.
    pub fn new(g: &'g Graph) -> Self {
        let n = g.n();
        let stride = n.div_ceil(64).max(1);
        let bytes = n.saturating_mul(stride).saturating_mul(8);
        let word_path_reachable = 2 * g.max_degree() > WORD_COST_FACTOR * stride;
        let rows =
            (bytes <= DENSE_ROWS_BUDGET_BYTES && word_path_reachable).then(|| RowBits::build(g));
        IntersectKernel { g, rows }
    }

    /// Kernel without pinned bit-rows (merge/gallop only) — zero setup
    /// cost, for callers issuing a handful of queries.
    pub fn lean(g: &'g Graph) -> Self {
        IntersectKernel { g, rows: None }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Whether the word-parallel bit-row path is available.
    #[inline]
    pub fn has_dense_rows(&self) -> bool {
        self.rows.is_some()
    }

    /// Exact `|N(a) ∩ N(b)|` — adaptive equivalent of
    /// [`Graph::common_neighbors_count`].
    pub fn count(&self, a: NodeId, b: NodeId) -> usize {
        let (small, large) = ordered(self.g.neighbors(a), self.g.neighbors(b));
        if small.is_empty() {
            return 0;
        }
        if small.len() * GALLOP_SKEW < large.len() {
            return gallop_count(small, large);
        }
        if let Some(rows) = &self.rows {
            if small.len() + large.len() > WORD_COST_FACTOR * rows.stride {
                return words_count(rows.row(a), rows.row(b));
            }
        }
        merge_count(small, large)
    }

    /// Threshold early-exit test: `|N(a) ∩ N(b)| ≥ k`. Stops scanning as
    /// soon as `k` hits are found *or* the unscanned remainder cannot
    /// reach `k`. `k = 0` is vacuously true.
    pub fn count_at_least(&self, a: NodeId, b: NodeId, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        let (small, large) = ordered(self.g.neighbors(a), self.g.neighbors(b));
        if small.len() < k {
            return false;
        }
        if small.len() * GALLOP_SKEW < large.len() {
            return gallop_at_least(small, large, k);
        }
        if let Some(rows) = &self.rows {
            if small.len() + large.len() > WORD_COST_FACTOR * rows.stride {
                return words_at_least(rows.row(a), rows.row(b), k);
            }
        }
        merge_at_least(small, large, k)
    }

    /// Collect `N(a) ∩ N(b)` into `out` (cleared first), in ascending
    /// node order — adaptive equivalent of [`Graph::common_neighbors`].
    pub fn common_into(&self, a: NodeId, b: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let (small, large) = ordered(self.g.neighbors(a), self.g.neighbors(b));
        if small.is_empty() {
            return;
        }
        // Membership scan against the longer side's bit-row: O(|small|)
        // probes, and ascending because `small` is sorted.
        if let Some(rows) = &self.rows {
            let large_node = if small.len() == self.g.degree(a) {
                b
            } else {
                a
            };
            let row = rows.row(large_node);
            for &x in small {
                if row[x as usize / 64] & (1u64 << (x as usize % 64)) != 0 {
                    out.push(x);
                }
            }
            return;
        }
        if small.len() * GALLOP_SKEW < large.len() {
            gallop_collect(small, large, out);
            return;
        }
        merge_collect(small, large, out);
    }
}

/// Order two slices by length (shorter first).
#[inline]
fn ordered<'a>(x: &'a [NodeId], y: &'a [NodeId]) -> (&'a [NodeId], &'a [NodeId]) {
    if x.len() <= y.len() {
        (x, y)
    } else {
        (y, x)
    }
}

/// Linear-merge exact count over two sorted slices.
fn merge_count(na: &[NodeId], nb: &[NodeId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Linear merge with two-sided early exit: true iff ≥ `k` matches.
fn merge_at_least(na: &[NodeId], nb: &[NodeId], k: usize) -> bool {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < na.len() && j < nb.len() {
        // Failure exit: even matching every remaining element falls short.
        if count + (na.len() - i).min(nb.len() - j) < k {
            return false;
        }
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                if count >= k {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
    }
    false
}

/// Lowest index in (sorted) `hay[from..]` whose value is ≥ `needle`,
/// found by exponential probing then binary search — `O(log gap)` rather
/// than `O(log |hay|)` when consecutive needles land close together.
#[inline]
fn gallop_to(hay: &[NodeId], from: usize, needle: NodeId) -> usize {
    let mut hi = from + 1;
    while hi < hay.len() && hay[hi] < needle {
        hi = from + 2 * (hi - from);
    }
    let hi = hi.min(hay.len());
    let lo = from + (hi - from) / 2; // last probe known < needle (or `from`)
    lo + hay[lo..hi].partition_point(|&x| x < needle)
}

/// Galloping exact count: iterate `small`, search forward in `large`.
fn gallop_count(small: &[NodeId], large: &[NodeId]) -> usize {
    let (mut pos, mut count) = (0usize, 0usize);
    for &x in small {
        if pos >= large.len() {
            break;
        }
        pos = gallop_to(large, pos, x);
        if pos < large.len() && large[pos] == x {
            count += 1;
            pos += 1;
        }
    }
    count
}

/// Galloping with two-sided early exit: true iff ≥ `k` matches.
fn gallop_at_least(small: &[NodeId], large: &[NodeId], k: usize) -> bool {
    let (mut pos, mut count) = (0usize, 0usize);
    for (idx, &x) in small.iter().enumerate() {
        if count + (small.len() - idx) < k || pos >= large.len() {
            return false;
        }
        pos = gallop_to(large, pos, x);
        if pos < large.len() && large[pos] == x {
            count += 1;
            if count >= k {
                return true;
            }
            pos += 1;
        }
    }
    false
}

/// Word-parallel exact count: AND + popcount over two bit-rows.
fn words_count(ra: &[u64], rb: &[u64]) -> usize {
    ra.iter()
        .zip(rb)
        .map(|(a, b)| (a & b).count_ones() as usize)
        .sum()
}

/// Word-parallel with success early exit: true iff ≥ `k` bits in common.
fn words_at_least(ra: &[u64], rb: &[u64], k: usize) -> bool {
    let mut count = 0usize;
    for (a, b) in ra.iter().zip(rb) {
        count += (a & b).count_ones() as usize;
        if count >= k {
            return true;
        }
    }
    false
}

/// Merge-collect (ascending) — mirrors [`merge_count`].
fn merge_collect(na: &[NodeId], nb: &[NodeId], out: &mut Vec<NodeId>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(na[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Gallop-collect (ascending) — mirrors [`gallop_count`].
fn gallop_collect(small: &[NodeId], large: &[NodeId], out: &mut Vec<NodeId>) {
    let mut pos = 0usize;
    for &x in small {
        if pos >= large.len() {
            break;
        }
        pos = gallop_to(large, pos, x);
        if pos < large.len() && large[pos] == x {
            out.push(x);
            pos += 1;
        }
    }
}

/// True iff at least `k` elements of the sorted `list` are members of
/// `bits`, with two-sided early exit — the "scan a neighbour list against
/// a pinned neighbourhood bitset" primitive for callers that hold one
/// side as a [`BitSet`].
pub fn members_at_least(bits: &BitSet, list: &[NodeId], k: usize) -> bool {
    if k == 0 {
        return true;
    }
    let mut count = 0usize;
    for (idx, &x) in list.iter().enumerate() {
        if count + (list.len() - idx) < k {
            return false;
        }
        if bits.contains(x as usize) {
            count += 1;
            if count >= k {
                return true;
            }
        }
    }
    false
}

/// The pair-deduplicated support table for a fixed strength `a`: records,
/// for every unordered pair `{u, z}` with at least one common neighbour,
/// whether the pair is **strong** — `|N(u) ∩ N(z)| > a` (i.e. the base
/// `{u, z}` is `(a+1)`-supported in the Section 4 terminology).
///
/// Built once per support sweep; each base pair's count is computed
/// exactly once (per-node wedge batches, parallel over the smaller
/// endpoint), instead of once per common neighbour as in the naive
/// per-edge sweep. Pairs with no common neighbour are never strong for
/// any `a ≥ 0` and are not stored.
pub struct StrongPairTable {
    lookup: PairLookup,
}

/// Dense `n × n` bit-matrix when it fits, CSR partner lists otherwise.
enum PairLookup {
    /// `bits[u·stride + z/64]` holds bit `z%64` iff `{u, z}` is strong
    /// (stored symmetrically; O(1) lookup).
    Dense { stride: usize, bits: Vec<u64> },
    /// Row `u` = sorted strong partners `z > u` (canonical orientation;
    /// lookup is a binary search).
    Sparse {
        offsets: Vec<usize>,
        partners: Vec<NodeId>,
    },
}

impl StrongPairTable {
    /// Compute the table for threshold `a` over `kernel`'s graph.
    /// Parallel over nodes; deterministic (rows are packed in node order).
    pub fn build(kernel: &IntersectKernel<'_>, a: usize) -> StrongPairTable {
        let g = kernel.graph();
        let n = g.n();
        let threshold = a.saturating_add(1);
        // Wedge sweep: the 2-hop partners of `u` are exactly the `z` seen
        // through some common neighbour `v`; dedup with a scratch bitset
        // so each pair {u, z} (canonically z > u) is counted once.
        // Parallelism is over node *chunks* so the scratch bitset is
        // allocated once per task, not once per node; chunk boundaries
        // never affect the output (rows are collected in node order).
        let tasks = rayon::current_num_threads().saturating_mul(8).max(1);
        let chunk = n.div_ceil(tasks).max(1);
        let chunks: Vec<Vec<Vec<NodeId>>> = (0..n.div_ceil(chunk))
            .into_par_iter()
            .map(|c| {
                let mut seen = BitSet::new(n);
                let mut cands: Vec<NodeId> = Vec::new();
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(n);
                let mut out = Vec::with_capacity(hi - lo);
                for u in lo as u32..hi as u32 {
                    cands.clear();
                    for &v in g.neighbors(u) {
                        for &z in g.neighbors(v) {
                            if z > u && seen.insert(z as usize) {
                                cands.push(z);
                            }
                        }
                    }
                    cands.sort_unstable();
                    let mut strong = Vec::new();
                    for &z in &cands {
                        seen.remove(z as usize);
                        if kernel.count_at_least(u, z, threshold) {
                            strong.push(z);
                        }
                    }
                    out.push(strong);
                }
                out
            })
            .collect();
        let rows: Vec<Vec<NodeId>> = chunks.into_iter().flatten().collect();
        let stride = n.div_ceil(64).max(1);
        let dense_bytes = n.saturating_mul(stride).saturating_mul(8);
        let lookup = if dense_bytes <= DENSE_ROWS_BUDGET_BYTES {
            let mut bits = vec![0u64; n * stride];
            for (u, row) in rows.iter().enumerate() {
                for &z in row {
                    bits[u * stride + z as usize / 64] |= 1u64 << (z as usize % 64);
                    bits[z as usize * stride + u / 64] |= 1u64 << (u % 64);
                }
            }
            PairLookup::Dense { stride, bits }
        } else {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut partners = Vec::new();
            offsets.push(0);
            for row in &rows {
                partners.extend_from_slice(row);
                offsets.push(partners.len());
            }
            PairLookup::Sparse { offsets, partners }
        };
        StrongPairTable { lookup }
    }

    /// Is the base pair `{u, z}` strong (`|N(u) ∩ N(z)| > a`)?
    /// `u = z` is never strong (a base needs two distinct endpoints).
    #[inline]
    pub fn is_strong(&self, u: NodeId, z: NodeId) -> bool {
        if u == z {
            return false;
        }
        let (lo, hi) = (u.min(z), u.max(z));
        match &self.lookup {
            PairLookup::Dense { stride, bits } => {
                bits[lo as usize * stride + hi as usize / 64] & (1u64 << (hi as usize % 64)) != 0
            }
            PairLookup::Sparse { offsets, partners } => partners
                [offsets[lo as usize]..offsets[lo as usize + 1]]
                .binary_search(&hi)
                .is_ok(),
        }
    }

    /// Number of strong pairs stored.
    pub fn strong_pairs(&self) -> usize {
        match &self.lookup {
            // Symmetric storage ⇒ every pair is two bits.
            PairLookup::Dense { bits, .. } => {
                bits.iter().map(|w| w.count_ones() as usize).sum::<usize>() / 2
            }
            PairLookup::Sparse { partners, .. } => partners.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn complete(n: usize) -> Graph {
        Graph::from_edges(
            n,
            (0..n as u32).flat_map(|i| (i + 1..n as u32).map(move |j| (i, j))),
        )
    }

    /// A skewed graph: hub 0 adjacent to everyone, plus a sparse cycle.
    fn hub_cycle(n: usize) -> Graph {
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        for i in 1..n as u32 {
            let j = if i + 1 < n as u32 { i + 1 } else { 1 };
            if i != j {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, edges)
    }

    #[test]
    fn strategies_agree_with_merge_reference() {
        for g in [complete(40), hub_cycle(150)] {
            let lean = IntersectKernel::lean(&g);
            let full = IntersectKernel::new(&g);
            for a in 0..g.n() as u32 {
                for b in 0..g.n() as u32 {
                    let reference = g.common_neighbors_count(a, b);
                    assert_eq!(lean.count(a, b), reference, "lean count ({a},{b})");
                    assert_eq!(full.count(a, b), reference, "full count ({a},{b})");
                    for k in [0, 1, 2, reference, reference + 1, g.n()] {
                        assert_eq!(
                            lean.count_at_least(a, b, k),
                            reference >= k,
                            "lean at_least ({a},{b},{k})"
                        );
                        assert_eq!(
                            full.count_at_least(a, b, k),
                            reference >= k,
                            "full at_least ({a},{b},{k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn common_into_matches_reference_in_order() {
        for g in [complete(24), hub_cycle(80)] {
            let lean = IntersectKernel::lean(&g);
            let full = IntersectKernel::new(&g);
            let mut buf = Vec::new();
            for a in 0..g.n() as u32 {
                for b in 0..g.n() as u32 {
                    let reference = g.common_neighbors(a, b);
                    lean.common_into(a, b, &mut buf);
                    assert_eq!(buf, reference, "lean into ({a},{b})");
                    full.common_into(a, b, &mut buf);
                    assert_eq!(buf, reference, "full into ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn dense_rows_gate_on_shape() {
        // K40 is dense: word path reachable.
        assert!(IntersectKernel::new(&complete(40)).has_dense_rows());
        // A path graph has tiny degrees: never worth pinning.
        let path = Graph::from_edges(300, (0u32..299).map(|i| (i, i + 1)));
        assert!(!IntersectKernel::new(&path).has_dense_rows());
        assert!(!IntersectKernel::lean(&complete(40)).has_dense_rows());
    }

    #[test]
    fn gallop_to_finds_lower_bound() {
        let hay: Vec<NodeId> = vec![2, 3, 5, 9, 14, 20, 21, 40];
        for from in 0..hay.len() {
            for needle in 0..45u32 {
                let expect = hay.partition_point(|&x| x < needle).max(from);
                assert_eq!(
                    gallop_to(&hay, from, needle),
                    expect,
                    "from {from} needle {needle}"
                );
            }
        }
    }

    #[test]
    fn members_at_least_early_exits_correctly() {
        let mut bits = BitSet::new(100);
        for i in (0..100).step_by(3) {
            bits.insert(i);
        }
        let list: Vec<NodeId> = (0..50).collect();
        let members = list.iter().filter(|&&x| x % 3 == 0).count();
        for k in 0..members + 3 {
            assert_eq!(members_at_least(&bits, &list, k), members >= k, "k={k}");
        }
        assert!(members_at_least(&bits, &[], 0));
        assert!(!members_at_least(&bits, &[], 1));
    }

    #[test]
    fn strong_pair_table_matches_naive_pairs() {
        for g in [complete(12), hub_cycle(40)] {
            for a in [0usize, 1, 2, 5] {
                let kernel = IntersectKernel::new(&g);
                let table = StrongPairTable::build(&kernel, a);
                let mut expected = 0usize;
                for u in 0..g.n() as u32 {
                    for z in 0..g.n() as u32 {
                        let strong = u != z && g.common_neighbors_count(u, z) > a;
                        assert_eq!(table.is_strong(u, z), strong, "({u},{z}) a={a}");
                        if strong && u < z {
                            expected += 1;
                        }
                    }
                }
                assert_eq!(table.strong_pairs(), expected, "a={a}");
            }
        }
    }

    #[test]
    fn strong_pair_table_huge_threshold_is_empty() {
        let g = complete(10);
        let kernel = IntersectKernel::lean(&g);
        let table = StrongPairTable::build(&kernel, usize::MAX);
        assert_eq!(table.strong_pairs(), 0);
        assert!(!table.is_strong(0, 1));
        assert!(!table.is_strong(3, 3));
    }
}
