//! Deterministic seed derivation for parallel loops.
//!
//! Parallel constructions (edge sampling, per-edge replacement-path choice,
//! seed sweeps) must produce the same output regardless of how rayon
//! schedules work items. The pattern used throughout the workspace is: hash
//! the master seed together with the item index through SplitMix64 and use
//! the result to seed a local PRNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator: a high-quality 64-bit mixer.
///
/// SplitMix64 is the standard seeding mixer (Steele, Lea, Flood 2014); it is
/// a bijection on `u64` with excellent avalanche behaviour, so consecutive
/// item indices yield statistically independent-looking streams.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive an independent sub-seed for work item `index` under `master`.
#[inline]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    // Two rounds: one to spread the index, one to mix it with the master.
    splitmix64(master ^ splitmix64(index.wrapping_add(0xa076_1d64_78bd_642f)))
}

/// Build a small fast RNG for work item `index` under `master`.
#[inline]
pub fn item_rng(master: u64, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_bijective_on_sample() {
        let outputs: HashSet<u64> = (0..100_000u64).map(splitmix64).collect();
        assert_eq!(outputs.len(), 100_000);
    }

    #[test]
    fn derive_seed_distinct_across_indices() {
        let seeds: HashSet<u64> = (0..10_000u64).map(|i| derive_seed(7, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn derive_seed_distinct_across_masters() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
    }

    #[test]
    fn item_rng_reproducible() {
        let a: Vec<u64> = {
            let mut rng = item_rng(99, 3);
            (0..16).map(|_| rng.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = item_rng(99, 3);
            (0..16).map(|_| rng.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn item_rng_streams_differ() {
        let mut r0 = item_rng(99, 0);
        let mut r1 = item_rng(99, 1);
        let a: Vec<u64> = (0..8).map(|_| r0.gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        assert_ne!(a, b);
    }
}
