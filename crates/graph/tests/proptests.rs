//! Property-based tests for the graph substrate.

use dcspan_graph::coloring::{
    greedy_edge_coloring, is_proper_edge_coloring, misra_gries_edge_coloring,
};
use dcspan_graph::invariants::{
    check_congestion_profile, check_matching_disjoint, check_routing_valid,
};
use dcspan_graph::matching::{
    greedy_maximal_matching, is_valid_bipartite_matching, max_bipartite_matching,
};
use dcspan_graph::traversal::{bfs_distances, connected_components, shortest_path, UNREACHABLE};
use dcspan_graph::{BitSet, ByteReader, Graph, NodeId, Path};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random graph on `n ∈ [2, 24]` nodes with arbitrary edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges)
            .prop_map(move |pairs| Graph::from_edges(n, pairs.into_iter().filter(|(a, b)| a != b)))
    })
}

proptest! {
    #[test]
    fn bitset_agrees_with_hashset_model(ops in proptest::collection::vec((0usize..100, proptest::bool::ANY), 0..200)) {
        let mut bits = BitSet::new(100);
        let mut model: HashSet<usize> = HashSet::new();
        for (x, insert) in ops {
            if insert {
                prop_assert_eq!(bits.insert(x), model.insert(x));
            } else {
                prop_assert_eq!(bits.remove(x), model.remove(&x));
            }
        }
        prop_assert_eq!(bits.len(), model.len());
        let mut expected: Vec<usize> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(bits.iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn io_edge_list_roundtrips(g in arb_graph()) {
        let mut buf = Vec::new();
        dcspan_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let parsed = dcspan_graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn io_dimacs_roundtrips(g in arb_graph()) {
        let mut buf = Vec::new();
        dcspan_graph::io::write_dimacs(&g, &mut buf).unwrap();
        let parsed = dcspan_graph::io::read_dimacs(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn io_parsers_reject_duplicate_edges_consistently(g in arb_graph()) {
        // Appending any existing edge (in either orientation) to a written
        // file must be rejected by both text parsers, not silently deduped.
        let Some(e) = g.edges().first().copied() else { return Ok(()) };

        let mut el = Vec::new();
        dcspan_graph::io::write_edge_list(&g, &mut el).unwrap();
        let mut text = format!("{} {}\n", g.n(), g.m() + 1);
        text.push_str(std::str::from_utf8(&el).unwrap().split_once('\n').unwrap().1);
        text.push_str(&format!("{} {}\n", e.v, e.u));
        prop_assert!(dcspan_graph::io::read_edge_list(text.as_bytes()).is_err());

        let mut dm = Vec::new();
        dcspan_graph::io::write_dimacs(&g, &mut dm).unwrap();
        let mut text = format!("p edge {} {}\n", g.n(), g.m() + 1);
        text.push_str(std::str::from_utf8(&dm).unwrap().split_once('\n').unwrap().1);
        text.push_str(&format!("e {} {}\n", e.v + 1, e.u + 1));
        prop_assert!(dcspan_graph::io::read_dimacs(text.as_bytes()).is_err());
    }

    #[test]
    fn graph_codec_roundtrips_bit_identically(g in arb_graph()) {
        let mut buf = Vec::new();
        g.encode_into(&mut buf);
        let mut r = ByteReader::new(&buf);
        let decoded = Graph::decode_from(&mut r).unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(&decoded, &g);
        // Re-encoding the decoded graph reproduces the exact bytes.
        let mut buf2 = Vec::new();
        decoded.encode_into(&mut buf2);
        prop_assert_eq!(buf2, buf);
    }

    #[test]
    fn graph_codec_never_panics_on_corruption(g in arb_graph(), flip in 0usize..4096, bit in 0u8..8) {
        let mut buf = Vec::new();
        g.encode_into(&mut buf);
        // Single-bit flip anywhere: decode returns Ok or a typed error,
        // and on Ok the result re-encodes to the mutated bytes (i.e. the
        // flip produced a different but valid graph).
        let i = flip % buf.len();
        buf[i] ^= 1 << bit;
        let mut r = ByteReader::new(&buf);
        if let Ok(decoded) = Graph::decode_from(&mut r) {
            if r.is_empty() {
                let mut buf2 = Vec::new();
                decoded.encode_into(&mut buf2);
                prop_assert_eq!(buf2, buf);
            }
        }
        // Every strict prefix must fail with a typed error, never panic.
        for cut in 0..buf.len().min(64) {
            let mut r = ByteReader::new(&buf[..cut]);
            let _ = Graph::decode_from(&mut r);
        }
    }

    #[test]
    fn csr_codec_roundtrips(rows in proptest::collection::vec(proptest::collection::vec((0u32..50, 0u32..50), 0..6), 0..10)) {
        let t = dcspan_graph::CsrTable::from_rows(rows);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let mut r = ByteReader::new(&buf);
        let decoded = dcspan_graph::CsrTable::<(u32, u32)>::decode_from(&mut r).unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(decoded, t);
    }

    #[test]
    fn sampling_partitions_edges(g in arb_graph(), seed in 0u64..100) {
        // kept ∪ dropped = all edges, disjointly, for any probability.
        let kept = dcspan_graph::sample::sample_subgraph(&g, 0.5, seed);
        let dropped = g.filter_edges(|id, _| !dcspan_graph::sample::edge_survives(seed, id, 0.5));
        prop_assert_eq!(kept.m() + dropped.m(), g.m());
        for e in kept.edges() {
            prop_assert!(!dropped.has_edge(e.u, e.v));
        }
    }

    #[test]
    fn csr_is_consistent(g in arb_graph()) {
        // Degree sum equals 2m and neighbour lists are mutual and sorted.
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
        for u in 0..g.n() as NodeId {
            let ns = g.neighbors(u);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &w in ns {
                prop_assert!(g.neighbors(w).contains(&u));
                prop_assert!(g.has_edge(u, w));
            }
        }
    }

    #[test]
    fn edge_ids_roundtrip(g in arb_graph()) {
        for (id, e) in g.edges().iter().enumerate() {
            prop_assert_eq!(g.edge_id(e.u, e.v), Some(id));
            prop_assert_eq!(g.edge_id(e.v, e.u), Some(id));
        }
    }

    #[test]
    fn bfs_distances_satisfy_edge_lipschitz(g in arb_graph()) {
        // |d(s,u) − d(s,w)| ≤ 1 across every edge (u,w), and d respects
        // reachability symmetry.
        let d = bfs_distances(&g, 0);
        for e in g.edges() {
            let du = d[e.u as usize];
            let dv = d[e.v as usize];
            prop_assert_eq!(du == UNREACHABLE, dv == UNREACHABLE);
            if du != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
    }

    #[test]
    fn shortest_path_matches_distance(g in arb_graph(), t in 0u32..24) {
        let t = t % g.n() as u32;
        let d = bfs_distances(&g, 0);
        match shortest_path(&g, 0, t) {
            Some(p) => {
                prop_assert_eq!(p.len() as u32 - 1, d[t as usize]);
                for w in p.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
                prop_assert_eq!(p[0], 0u32);
                prop_assert_eq!(*p.last().unwrap(), t);
            }
            None => prop_assert_eq!(d[t as usize], UNREACHABLE),
        }
    }

    #[test]
    fn components_agree_with_bfs(g in arb_graph()) {
        let (labels, count) = connected_components(&g);
        prop_assert!(count >= 1);
        prop_assert_eq!(labels.iter().copied().max().unwrap() as usize + 1, count);
        // Two nodes have the same label iff BFS from one reaches the other.
        let d = bfs_distances(&g, 0);
        for u in 0..g.n() {
            prop_assert_eq!(labels[u] == labels[0], d[u] != UNREACHABLE);
        }
    }

    #[test]
    fn misra_gries_proper_with_delta_plus_one(g in arb_graph()) {
        let col = misra_gries_edge_coloring(&g);
        prop_assert!(is_proper_edge_coloring(&g, &col));
        if g.m() > 0 {
            prop_assert!(col.num_colors as usize <= g.max_degree() + 1);
        }
    }

    #[test]
    fn greedy_coloring_proper(g in arb_graph()) {
        let col = greedy_edge_coloring(&g);
        prop_assert!(is_proper_edge_coloring(&g, &col));
        if g.m() > 0 {
            prop_assert!(col.num_colors as usize <= (2 * g.max_degree()).saturating_sub(1).max(1));
        }
    }

    #[test]
    fn hopcroft_karp_valid_and_maximal(g in arb_graph()) {
        // Split nodes into even/odd sides; HK must return a valid matching
        // that is at least as large as a greedy one (maximum ≥ maximal).
        let left: Vec<NodeId> = (0..g.n() as u32).filter(|u| u % 2 == 0).collect();
        let right: Vec<NodeId> = (0..g.n() as u32).filter(|u| u % 2 == 1).collect();
        let m = max_bipartite_matching(&g, &left, &right);
        prop_assert!(is_valid_bipartite_matching(&g, &left, &right, &m));

        // Greedy baseline.
        let mut used_l = std::collections::HashSet::new();
        let mut used_r = std::collections::HashSet::new();
        let mut greedy = 0usize;
        for &l in &left {
            for &r in g.neighbors(l) {
                if r % 2 == 1 && !used_r.contains(&r) && !used_l.contains(&l) {
                    used_l.insert(l);
                    used_r.insert(r);
                    greedy += 1;
                    break;
                }
            }
        }
        prop_assert!(m.len() >= greedy);
    }

    #[test]
    fn matchings_are_node_disjoint(g in arb_graph()) {
        // Both matching algorithms must satisfy the Algorithm 2 contract:
        // no node appears in two pairs.
        let left: Vec<NodeId> = (0..g.n() as u32).filter(|u| u % 2 == 0).collect();
        let right: Vec<NodeId> = (0..g.n() as u32).filter(|u| u % 2 == 1).collect();
        let hk = max_bipartite_matching(&g, &left, &right);
        prop_assert!(check_matching_disjoint(g.n(), &hk).is_ok());

        let greedy: Vec<(NodeId, NodeId)> =
            greedy_maximal_matching(&g).into_iter().map(|e| (e.u, e.v)).collect();
        prop_assert!(check_matching_disjoint(g.n(), &greedy).is_ok());
    }

    #[test]
    fn shortest_path_routings_satisfy_routing_validity(g in arb_graph()) {
        // Route every reachable pair (s, t) with s < t by BFS shortest
        // paths; the invariant checker must accept the whole routing.
        let mut pairs = Vec::new();
        let mut paths = Vec::new();
        for s in 0..g.n() as NodeId {
            let d = bfs_distances(&g, s);
            for t in (s + 1)..g.n() as NodeId {
                if d[t as usize] == UNREACHABLE {
                    continue;
                }
                if let Some(p) = shortest_path(&g, s, t) {
                    pairs.push((s, t));
                    paths.push(Path::new(p));
                }
            }
        }
        prop_assert!(check_routing_valid(&g, &pairs, &paths).is_ok());

        // And the serial congestion recount must match a naive profile.
        let mut profile = vec![0u32; g.n()];
        for p in &paths {
            let mut nodes: Vec<NodeId> = p.nodes().to_vec();
            nodes.sort_unstable();
            nodes.dedup();
            for v in nodes {
                profile[v as usize] += 1;
            }
        }
        prop_assert!(check_congestion_profile(g.n(), &paths, &profile).is_ok());
        if let Some(v) = profile.iter().position(|&c| c > 0) {
            profile[v] -= 1;
            prop_assert!(check_congestion_profile(g.n(), &paths, &profile).is_err());
        }
    }

    #[test]
    fn mutated_routings_are_rejected(g in arb_graph()) {
        // Take the first routable pair and mutate the routing two ways:
        // retarget the pair (wrong endpoint) and delete a traversed edge
        // from the graph (missing edge). Both must be rejected.
        let mut found = None;
        'outer: for s in 0..g.n() as NodeId {
            for t in (s + 1)..g.n() as NodeId {
                if let Some(p) = shortest_path(&g, s, t) {
                    found = Some((s, t, p));
                    break 'outer;
                }
            }
        }
        let Some((s, t, p)) = found else { return Ok(()) };
        let paths = vec![Path::new(p)];
        prop_assert!(check_routing_valid(&g, &[(s, t)], &paths).is_ok());

        // Wrong endpoint: the pair now names a different destination.
        let wrong_t = (0..g.n() as NodeId).find(|&w| w != t);
        if let Some(w) = wrong_t {
            prop_assert!(check_routing_valid(&g, &[(s, w)], &paths).is_err());
        }

        // Missing edge: remove the first hop's edge from the graph.
        let (a, b) = (paths[0].nodes()[0], paths[0].nodes()[1]);
        let g2 = g.filter_edges(|_, e| !(e.u == a.min(b) && e.v == a.max(b)));
        prop_assert!(check_routing_valid(&g2, &[(s, t)], &paths).is_err());
    }
}
