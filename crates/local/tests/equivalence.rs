//! Property test: the distributed Algorithm 1 equals the sequential one
//! across random graphs, parameters, seeds, and thread counts.

use dcspan_core::regular::{build_regular_spanner_pair_sampled, RegularSpannerParams};
use dcspan_gen::regular::random_regular;
use dcspan_local::distributed_regular_spanner;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_equals_sequential(
        half_n in 8usize..28,
        delta in 4usize..10,
        seed in 0u64..500,
        threads in 1usize..5,
    ) {
        let n = 2 * half_n;
        let delta = delta.min(n - 2);
        let g = random_regular(n, delta, seed);
        let mut params = RegularSpannerParams::calibrated(n, delta);
        params.safe_reinsert = false;
        let dist = distributed_regular_spanner(&g, params, seed ^ 0x5555, threads);
        let seq = build_regular_spanner_pair_sampled(&g, params, seed ^ 0x5555);
        prop_assert_eq!(dist.rounds, 5);
        prop_assert!(dist.endpoints_agree);
        prop_assert_eq!(dist.h, seq.h);
    }

    #[test]
    fn flooding_volume_is_bounded_by_edge_flooding(
        half_n in 8usize..20,
        seed in 0u64..100,
    ) {
        // Per flooding round, each node sends its fresh facts to each
        // neighbour: total ≤ Δ · (total facts) = Δ · m per round, and the
        // first round is exactly one fact per directed edge.
        let n = 2 * half_n;
        let delta = 6usize;
        let g = random_regular(n, delta, seed);
        let mut params = RegularSpannerParams::calibrated(n, delta);
        params.safe_reinsert = false;
        let out = distributed_regular_spanner(&g, params, seed, 2);
        prop_assert_eq!(out.round_stats[0].messages, 0);
        prop_assert_eq!(out.round_stats[1].messages, 2 * g.m());
        for s in &out.round_stats {
            prop_assert!(s.max_inbox <= delta);
        }
    }
}
