//! A distributed **Baswana–Sen 3-spanner** in the LOCAL model — the
//! classical distance-only baseline, implemented as a 4-round per-node
//! program (Baswana–Sen is the textbook example of an O(k)-round LOCAL
//! spanner; having it next to the distributed Algorithm 1 lets experiments
//! compare the two constructions under identical simulator accounting).
//!
//! Round structure for `k = 2`:
//!
//! | round | action |
//! |-------|--------|
//! | 0 | each node decides from the shared seed whether it is a *sampled* centre (prob `n^{-1/2}`) and broadcasts the decision |
//! | 1 | unsampled nodes join an adjacent sampled centre through one edge, or — with no sampled neighbour — keep one edge to every neighbour; everyone broadcasts its cluster id |
//! | 2 | every clustered node keeps one edge into each *adjacent foreign cluster*; chosen edges are announced |
//! | 3 | delivery of the final announcements |

use crate::sim::{LocalSimulator, NodeProgram, RoundStats};
use dcspan_graph::rng::derive_seed;
use dcspan_graph::{FxHashMap, Graph, NodeId};

const NONE: u32 = u32::MAX;

/// Message: either a sampling announcement, a cluster-id announcement, or
/// a final edge-keep notification.
#[derive(Clone, Copy, Debug)]
enum Msg {
    Sampled(bool),
    Cluster(u32),
    KeepEdge,
}

struct BsProgram {
    n: usize,
    seed: u64,
    sampled: bool,
    cluster: u32,
    /// Edges this node decided to keep (canonical pairs).
    kept: Vec<(NodeId, NodeId)>,
    /// Neighbour → sampled?
    nbr_sampled: FxHashMap<NodeId, bool>,
}

impl BsProgram {
    fn keep(&mut self, me: NodeId, w: NodeId) {
        let key = if me < w { (me, w) } else { (w, me) };
        self.kept.push(key);
    }
}

impl NodeProgram for BsProgram {
    type Msg = Msg;

    fn step(
        &mut self,
        me: NodeId,
        neighbors: &[NodeId],
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
    ) -> Vec<(NodeId, Self::Msg)> {
        match round {
            0 => {
                // Sample with probability n^{-1/2} from the shared seed.
                let p = (self.n as f64).powf(-0.5);
                let x = derive_seed(self.seed, me as u64) >> 11;
                self.sampled = (x as f64) * (1.0 / (1u64 << 53) as f64) < p;
                self.cluster = if self.sampled { me } else { NONE };
                neighbors
                    .iter()
                    .map(|&w| (w, Msg::Sampled(self.sampled)))
                    .collect()
            }
            1 => {
                for &(from, m) in inbox {
                    if let Msg::Sampled(s) = m {
                        self.nbr_sampled.insert(from, s);
                    }
                }
                if !self.sampled {
                    // Join the smallest-id sampled neighbour, if any.
                    let joined = neighbors
                        .iter()
                        .copied()
                        .filter(|w| *self.nbr_sampled.get(w).unwrap_or(&false))
                        .min();
                    match joined {
                        Some(c) => {
                            self.cluster = c;
                            self.keep(me, c);
                        }
                        None => {
                            // Unclustered: keep one edge per neighbouring
                            // cluster; at this phase clusters are single
                            // nodes, so that is every incident edge.
                            for &w in neighbors {
                                self.keep(me, w);
                            }
                            self.cluster = NONE;
                        }
                    }
                }
                neighbors
                    .iter()
                    .map(|&w| (w, Msg::Cluster(self.cluster)))
                    .collect()
            }
            2 => {
                // Keep one edge into each adjacent foreign cluster.
                if self.cluster != NONE {
                    let mut per_cluster: FxHashMap<u32, NodeId> = FxHashMap::default();
                    for &(from, m) in inbox {
                        if let Msg::Cluster(c) = m {
                            if c != NONE && c != self.cluster {
                                let slot = per_cluster.entry(c).or_insert(from);
                                *slot = (*slot).min(from);
                            }
                        }
                    }
                    let picks: Vec<NodeId> = per_cluster.values().copied().collect();
                    for w in &picks {
                        self.keep(me, *w);
                    }
                    return picks.into_iter().map(|w| (w, Msg::KeepEdge)).collect();
                }
                Vec::new()
            }
            3 => {
                // Record edges kept towards us so both endpoints agree.
                for &(from, m) in inbox {
                    if matches!(m, Msg::KeepEdge) {
                        self.keep(me, from);
                    }
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }
}

/// Result of the distributed Baswana–Sen run.
#[derive(Clone, Debug)]
pub struct DistributedBsResult {
    /// The spanner (union of per-node keep decisions).
    pub h: Graph,
    /// Rounds executed (constant: 4).
    pub rounds: usize,
    /// Per-round message stats.
    pub round_stats: Vec<RoundStats>,
}

/// Run the distributed Baswana–Sen 3-spanner.
pub fn distributed_baswana_sen(g: &Graph, seed: u64, threads: usize) -> DistributedBsResult {
    const ROUNDS: usize = 4;
    let mut programs: Vec<BsProgram> = (0..g.n())
        .map(|_| BsProgram {
            n: g.n(),
            seed,
            sampled: false,
            cluster: NONE,
            kept: Vec::new(),
            nbr_sampled: FxHashMap::default(),
        })
        .collect();
    let sim = LocalSimulator::with_threads(g, threads);
    let round_stats = sim.run(&mut programs, ROUNDS);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for p in &programs {
        edges.extend(p.kept.iter().copied());
    }
    DistributedBsResult {
        h: Graph::from_edges(g.n(), edges),
        rounds: ROUNDS,
        round_stats,
    }
}

/// Retrying wrapper: re-run with derived seeds until the output is a valid
/// 3-spanner (checked centrally), mirroring `baswana_sen_spanner_checked`.
pub fn distributed_baswana_sen_checked(
    g: &Graph,
    seed: u64,
    threads: usize,
    max_attempts: usize,
) -> Option<(DistributedBsResult, usize)> {
    for attempt in 0..max_attempts as u64 {
        let out = distributed_baswana_sen(g, derive_seed(seed, attempt), threads);
        let rep = dcspan_core::eval::distance_stretch_edges(g, &out.h, 3);
        if rep.overflow_pairs == 0 && rep.max_stretch <= 3.0 {
            return Some((out, attempt as usize + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_gen::classic::complete;
    use dcspan_gen::regular::random_regular;

    #[test]
    fn produces_a_valid_3_spanner_of_a_clique() {
        let g = complete(40);
        let (out, attempts) =
            distributed_baswana_sen_checked(&g, 5, 2, 20).expect("valid 3-spanner");
        assert!(out.h.is_subgraph_of(&g));
        assert!(out.h.m() < g.m(), "no sparsification: {}", out.h.m());
        assert!(attempts >= 1);
        assert_eq!(out.rounds, 4);
    }

    #[test]
    fn works_on_regular_expanders() {
        let g = random_regular(60, 20, 7);
        let (out, _) = distributed_baswana_sen_checked(&g, 9, 4, 20).expect("valid 3-spanner");
        // O(n^{3/2}) size with generous slack: 4·60^{1.5} ≈ 1859.
        assert!(out.h.m() <= 1859, "spanner too big: {}", out.h.m());
        let rep = dcspan_core::eval::distance_stretch_edges(&g, &out.h, 3);
        assert_eq!(rep.overflow_pairs, 0);
    }

    #[test]
    fn constant_rounds_and_deterministic() {
        let g = random_regular(30, 6, 3);
        let a = distributed_baswana_sen(&g, 11, 1);
        let b = distributed_baswana_sen(&g, 11, 4);
        assert_eq!(a.h, b.h, "thread count changed the output");
        assert_eq!(a.rounds, 4);
        // Round 1 delivers exactly one sampling message per directed edge.
        assert_eq!(a.round_stats[1].messages, 2 * g.m());
    }

    #[test]
    fn both_endpoints_know_kept_edges() {
        // The final notification round makes keep-decisions symmetric; the
        // union construction then never depends on who decided.
        let g = random_regular(24, 6, 13);
        let out = distributed_baswana_sen(&g, 17, 2);
        assert!(out.h.is_subgraph_of(&g));
        assert!(dcspan_graph::traversal::is_connected(&out.h));
    }
}
