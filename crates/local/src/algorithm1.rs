//! The distributed Algorithm 1 of **Section 7 / Corollary 3**: an
//! O(1)-round LOCAL algorithm computing the Δ-regular DC-spanner.
//!
//! Round structure (messages sent in round `r` arrive in round `r+1`):
//!
//! | round | action |
//! |-------|--------|
//! | 0     | every node decides the sample fate of its lower-endpoint edges from the shared seed and informs the other endpoint |
//! | 1–3   | flood all newly learned `(edge, sampled?)` facts — after three hops every node knows `G` and `G'` restricted to its 3-hop ball |
//! | 4     | decide locally which incident edges are `(a, b)`-supported; an edge enters `H` iff it was sampled or is unsupported; notify the neighbour |
//!
//! Five rounds, independent of `n` — and the output is **bit-identical**
//! to the sequential `build_regular_spanner_pair_sampled` of `dcspan-core`
//! under the same seed and parameters (enforced by tests).

use crate::sim::{LocalSimulator, NodeProgram, RoundStats};
use dcspan_core::regular::RegularSpannerParams;
use dcspan_core::support::is_supported_edge;
use dcspan_graph::sample::edge_survives_pair;
use dcspan_graph::{FxHashMap, Graph, NodeId};

/// A fact about one edge: endpoints (canonical) and whether it was sampled
/// into `G'`.
type Fact = (NodeId, NodeId, bool);

/// The per-node program.
struct SpannerProgram {
    n: usize,
    seed: u64,
    params: RegularSpannerParams,
    /// Everything this node knows: canonical edge → sampled?.
    known: FxHashMap<(NodeId, NodeId), bool>,
    /// Facts learned since the last broadcast (the flooding frontier).
    fresh: Vec<Fact>,
    /// Final decision: incident edges this node believes are in `H`.
    in_h: Vec<(NodeId, NodeId)>,
}

impl SpannerProgram {
    fn learn(&mut self, u: NodeId, v: NodeId, sampled: bool) {
        let key = if u < v { (u, v) } else { (v, u) };
        if self.known.insert(key, sampled).is_none() {
            self.fresh.push((key.0, key.1, sampled));
        }
    }

    /// The local view of `G` as a graph (over the global node-id space,
    /// which is standard knowledge in LOCAL).
    fn local_graph(&self) -> Graph {
        Graph::from_edges(self.n, self.known.keys().copied())
    }
}

impl NodeProgram for SpannerProgram {
    type Msg = Vec<Fact>;

    fn step(
        &mut self,
        me: NodeId,
        neighbors: &[NodeId],
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
    ) -> Vec<(NodeId, Self::Msg)> {
        // Ingest everything first.
        for (_, facts) in inbox {
            for &(u, v, s) in facts {
                self.learn(u, v, s);
            }
        }
        match round {
            0 => {
                // Decide sample fates for lower-endpoint edges; tell everyone
                // (the fact also reaches the other endpoint this way).
                for &w in neighbors {
                    if me < w {
                        let s = edge_survives_pair(self.seed, me, w, self.params.rho);
                        self.learn(me, w, s);
                    }
                }
                let batch = std::mem::take(&mut self.fresh);
                neighbors.iter().map(|&w| (w, batch.clone())).collect()
            }
            1..=3 => {
                // Flood newly learned facts.
                let batch = std::mem::take(&mut self.fresh);
                if batch.is_empty() {
                    Vec::new()
                } else {
                    neighbors.iter().map(|&w| (w, batch.clone())).collect()
                }
            }
            4 => {
                // Local supportedness decision on the 3-hop view.
                let view = self.local_graph();
                for &w in neighbors {
                    let key = if me < w { (me, w) } else { (w, me) };
                    let sampled = *self.known.get(&key).expect("own edge fact must be known"); // xtask: allow(no_panic) — round 1 stored every incident edge fact
                    let keep =
                        sampled || !is_supported_edge(&view, me, w, self.params.a, self.params.b);
                    if keep {
                        self.in_h.push(key);
                    }
                }
                // Notification round: confirm kept edges to the neighbours.
                self.in_h
                    .clone()
                    .into_iter()
                    .map(|(u, v)| {
                        let other = if u == me { v } else { u };
                        (other, vec![(u, v, true)])
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

/// Statistics and output of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedRunStats {
    /// The spanner assembled from the union of per-node decisions.
    pub h: Graph,
    /// Rounds executed (constant: 5).
    pub rounds: usize,
    /// Messages delivered per round.
    pub round_stats: Vec<RoundStats>,
    /// True if every edge decision was made identically by both endpoints.
    pub endpoints_agree: bool,
}

/// Run the distributed Algorithm 1 on `g` (`safe_reinsert` is ignored —
/// the LOCAL algorithm is the paper's version, whose 3-distance guarantee
/// is w.h.p.).
pub fn distributed_regular_spanner(
    g: &Graph,
    params: RegularSpannerParams,
    seed: u64,
    threads: usize,
) -> DistributedRunStats {
    const ROUNDS: usize = 5;
    let mut programs: Vec<SpannerProgram> = (0..g.n())
        .map(|_| SpannerProgram {
            n: g.n(),
            seed,
            params,
            known: FxHashMap::default(),
            fresh: Vec::new(),
            in_h: Vec::new(),
        })
        .collect();
    let sim = LocalSimulator::with_threads(g, threads);
    let round_stats = sim.run(&mut programs, ROUNDS);

    // Harvest: each edge should be claimed by both endpoints.
    let mut claims: FxHashMap<(NodeId, NodeId), usize> = FxHashMap::default();
    for p in &programs {
        for &key in &p.in_h {
            *claims.entry(key).or_insert(0) += 1;
        }
    }
    let endpoints_agree = claims.values().all(|&c| c == 2);
    let h = Graph::from_edges(g.n(), claims.keys().copied());
    DistributedRunStats {
        h,
        rounds: ROUNDS,
        round_stats,
        endpoints_agree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_core::regular::build_regular_spanner_pair_sampled;
    use dcspan_gen::regular::random_regular;

    fn params(n: usize, delta: usize) -> RegularSpannerParams {
        let mut p = RegularSpannerParams::calibrated(n, delta);
        p.safe_reinsert = false; // the LOCAL algorithm is the paper version
        p
    }

    #[test]
    fn matches_sequential_algorithm_exactly() {
        let g = random_regular(48, 16, 1);
        let p = params(48, 16);
        let seq = build_regular_spanner_pair_sampled(&g, p, 77);
        let dist = distributed_regular_spanner(&g, p, 77, 4);
        assert!(dist.endpoints_agree, "endpoints disagreed on some edge");
        assert_eq!(dist.h, seq.h, "distributed and sequential spanners differ");
    }

    #[test]
    fn constant_round_count() {
        for (n, d) in [(24usize, 8usize), (48, 12), (64, 16)] {
            let g = random_regular(n, d, 3);
            let out = distributed_regular_spanner(&g, params(n, d), 5, 2);
            assert_eq!(out.rounds, 5, "rounds must not grow with n");
        }
    }

    #[test]
    fn flooding_settles_before_decision_round() {
        // The fresh-facts frontier empties within 3 hops: the round-4
        // message volume is only the notification traffic (≤ 2m) and the
        // flooding volume peaks in the middle rounds.
        let g = random_regular(40, 10, 7);
        let out = distributed_regular_spanner(&g, params(40, 10), 9, 4);
        assert_eq!(out.round_stats[0].messages, 0);
        assert!(out.round_stats[1].messages > 0);
        assert!(out.endpoints_agree);
    }

    #[test]
    fn deterministic_across_thread_counts_and_seeds() {
        let g = random_regular(36, 12, 11);
        let p = params(36, 12);
        let a = distributed_regular_spanner(&g, p, 13, 1);
        let b = distributed_regular_spanner(&g, p, 13, 6);
        assert_eq!(a.h, b.h);
        let c = distributed_regular_spanner(&g, p, 14, 6);
        assert_ne!(a.h, c.h); // different seed ⇒ different sample (a.s.)
    }

    #[test]
    fn dense_graph_distributed_run() {
        // Theorem 3 regime: Δ ≥ n^{2/3} (n = 64 ⇒ Δ ≥ 16).
        let g = random_regular(64, 32, 15);
        let p = params(64, 32);
        let out = distributed_regular_spanner(&g, p, 21, 4);
        let seq = build_regular_spanner_pair_sampled(&g, p, 21);
        assert_eq!(out.h, seq.h);
        assert!(out.h.m() < g.m(), "no sparsification happened");
    }
}
