//! # dcspan-local
//!
//! A synchronous **LOCAL-model** message-passing simulator and the
//! distributed implementation of Algorithm 1 from Section 7 of the paper
//! (Corollary 3: an O(1)-round LOCAL algorithm computing the
//! `(3, O(log n))`-DC-spanner on Δ-regular graphs with `Δ ≥ n^{2/3}`).
//!
//! The simulator ([`sim`]) executes per-node programs in lockstep rounds —
//! nodes may only message their graph neighbours, messages sent in round
//! `r` arrive in round `r + 1`, and per-round node execution is
//! parallelised with crossbeam scoped threads (deterministically: inboxes
//! are sorted by sender).
//!
//! [`algorithm1`] implements the distributed spanner construction:
//! sample-and-inform, three rounds of 3-hop flooding, local supportedness
//! decisions, and one reinsertion-notification round — five rounds total,
//! independent of `n`. Its output is bit-identical to the sequential
//! Algorithm 1 of `dcspan-core` under the same seed, which the tests
//! enforce.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algorithm1;
pub mod baswana_sen;
pub mod programs;
pub mod sim;

pub use algorithm1::{distributed_regular_spanner, DistributedRunStats};
pub use sim::{LocalSimulator, NodeProgram, RoundStats};
