//! Reusable LOCAL-model building blocks: leader election by min-id
//! flooding, distributed BFS layering, and k-hop neighbourhood collection
//! (the primitive behind Section 7's "forward all information for 3
//! rounds").
//!
//! Besides being useful on their own, these exercise the simulator the
//! same way the distributed Algorithm 1 does, with independently checkable
//! outputs (BFS layers vs the sequential BFS, etc.).

use crate::sim::{LocalSimulator, NodeProgram};
use dcspan_graph::{FxHashSet, Graph, NodeId};

/// Leader election by min-id flooding.
pub struct MinIdFlood {
    best: NodeId,
    changed: bool,
}

impl MinIdFlood {
    /// Fresh instance (call once per node).
    pub fn new() -> Self {
        MinIdFlood {
            best: NodeId::MAX,
            changed: false,
        }
    }

    /// The smallest id heard so far (the leader after ≥ diameter rounds).
    pub fn leader(&self) -> NodeId {
        self.best
    }
}

impl Default for MinIdFlood {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeProgram for MinIdFlood {
    type Msg = NodeId;

    fn step(
        &mut self,
        me: NodeId,
        neighbors: &[NodeId],
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
    ) -> Vec<(NodeId, Self::Msg)> {
        if round == 0 {
            self.best = me;
            self.changed = true;
        }
        for &(_, v) in inbox {
            if v < self.best {
                self.best = v;
                self.changed = true;
            }
        }
        if std::mem::take(&mut self.changed) {
            neighbors.iter().map(|&w| (w, self.best)).collect()
        } else {
            Vec::new()
        }
    }
}

/// Distributed BFS from a fixed root: after `r` rounds every node within
/// `r − 1` hops knows its BFS distance.
pub struct DistributedBfs {
    root: NodeId,
    /// Discovered distance (`u32::MAX` = not yet reached).
    pub distance: u32,
    announced: bool,
}

impl DistributedBfs {
    /// Program instance for one node (same `root` everywhere).
    pub fn new(root: NodeId) -> Self {
        DistributedBfs {
            root,
            distance: u32::MAX,
            announced: false,
        }
    }
}

impl NodeProgram for DistributedBfs {
    type Msg = u32;

    fn step(
        &mut self,
        me: NodeId,
        neighbors: &[NodeId],
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
    ) -> Vec<(NodeId, Self::Msg)> {
        if round == 0 && me == self.root {
            self.distance = 0;
        }
        for &(_, d) in inbox {
            if d + 1 < self.distance {
                self.distance = d + 1;
            }
        }
        if self.distance != u32::MAX && !self.announced {
            self.announced = true;
            neighbors.iter().map(|&w| (w, self.distance)).collect()
        } else {
            Vec::new()
        }
    }
}

/// k-hop neighbourhood collection: every node floods edge facts for `k`
/// rounds and ends up knowing every edge with both endpoints within `k`
/// hops (and possibly more — flooding overshoots by design, exactly like
/// Section 7's Algorithm 1 implementation).
pub struct KHopCollect {
    /// Known edges (canonical pairs).
    pub known: FxHashSet<(NodeId, NodeId)>,
    fresh: Vec<(NodeId, NodeId)>,
}

impl KHopCollect {
    /// Fresh instance.
    pub fn new() -> Self {
        KHopCollect {
            known: FxHashSet::default(),
            fresh: Vec::new(),
        }
    }
}

impl Default for KHopCollect {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeProgram for KHopCollect {
    type Msg = Vec<(NodeId, NodeId)>;

    fn step(
        &mut self,
        me: NodeId,
        neighbors: &[NodeId],
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
    ) -> Vec<(NodeId, Self::Msg)> {
        for (_, facts) in inbox {
            for &(a, b) in facts {
                if self.known.insert((a, b)) {
                    self.fresh.push((a, b));
                }
            }
        }
        if round == 0 {
            for &w in neighbors {
                let key = if me < w { (me, w) } else { (w, me) };
                if self.known.insert(key) {
                    self.fresh.push(key);
                }
            }
        }
        let batch = std::mem::take(&mut self.fresh);
        if batch.is_empty() {
            Vec::new()
        } else {
            neighbors.iter().map(|&w| (w, batch.clone())).collect()
        }
    }
}

/// Run leader election; returns each node's elected leader after `rounds`.
pub fn elect_leader(g: &Graph, rounds: usize, threads: usize) -> Vec<NodeId> {
    let mut programs: Vec<MinIdFlood> = (0..g.n()).map(|_| MinIdFlood::new()).collect();
    LocalSimulator::with_threads(g, threads).run(&mut programs, rounds);
    programs.iter().map(MinIdFlood::leader).collect()
}

/// Run distributed BFS; returns each node's discovered distance.
pub fn distributed_bfs(g: &Graph, root: NodeId, rounds: usize, threads: usize) -> Vec<u32> {
    let mut programs: Vec<DistributedBfs> = (0..g.n()).map(|_| DistributedBfs::new(root)).collect();
    LocalSimulator::with_threads(g, threads).run(&mut programs, rounds);
    programs.iter().map(|p| p.distance).collect()
}

/// Run k-hop collection; returns each node's known edge set size.
pub fn khop_knowledge_sizes(g: &Graph, k: usize, threads: usize) -> Vec<usize> {
    let mut programs: Vec<KHopCollect> = (0..g.n()).map(|_| KHopCollect::new()).collect();
    // k flooding rounds + 1 for the final delivery.
    LocalSimulator::with_threads(g, threads).run(&mut programs, k + 1);
    programs.iter().map(|p| p.known.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_gen::regular::random_regular;
    use dcspan_graph::traversal::bfs_distances;

    #[test]
    fn leader_election_converges_to_zero() {
        let g = random_regular(30, 4, 1);
        let diam = dcspan_graph::traversal::diameter(&g).unwrap() as usize;
        let leaders = elect_leader(&g, diam + 2, 2);
        assert!(leaders.iter().all(|&l| l == 0));
    }

    #[test]
    fn distributed_bfs_matches_sequential() {
        let g = random_regular(40, 6, 2);
        let diam = dcspan_graph::traversal::diameter(&g).unwrap() as usize;
        let dist = distributed_bfs(&g, 7, diam + 2, 3);
        let expected = bfs_distances(&g, 7);
        assert_eq!(dist, expected);
    }

    #[test]
    fn distributed_bfs_partial_before_convergence() {
        // A path graph: after 3 rounds only nodes within 2 hops know.
        let g = Graph::from_edges(8, (0u32..7).map(|i| (i, i + 1)));
        let dist = distributed_bfs(&g, 0, 3, 1);
        assert_eq!(&dist[..3], &[0, 1, 2]);
        assert!(dist[4..].iter().all(|&d| d == u32::MAX));
    }

    #[test]
    fn khop_collection_covers_the_ball() {
        let g = random_regular(24, 4, 3);
        let sizes = khop_knowledge_sizes(&g, 3, 2);
        // After 3 flooding rounds each node knows at least its 2-ball's
        // edges; on an expander of this size that's most of the graph.
        for (v, &s) in sizes.iter().enumerate() {
            assert!(s >= g.degree(v as u32), "node {v} knows only {s} edges");
        }
        // And never more than the whole edge set.
        assert!(sizes.iter().all(|&s| s <= g.m()));
    }

    use dcspan_graph::Graph;
}
