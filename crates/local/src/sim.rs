//! The synchronous LOCAL-model simulator.
//!
//! Semantics (Peleg's LOCAL model): computation proceeds in synchronous
//! rounds; in each round every node (i) receives the messages its
//! neighbours sent in the previous round, (ii) performs arbitrary local
//! computation, and (iii) sends one message per incident edge (messages of
//! unbounded size — this is LOCAL, not CONGEST). The simulator additionally
//! *enforces* the communication graph: sending to a non-neighbour panics.
//!
//! Execution is deterministic: per-round node steps run in parallel
//! (crossbeam scoped threads over node chunks) but inboxes are assembled
//! in sender order, so programs observe a schedule-independent view.

use dcspan_graph::{Graph, NodeId};

/// A per-node LOCAL program.
///
/// One instance exists per node; the simulator calls [`NodeProgram::step`]
/// once per round with the node's inbox, and the program returns the
/// messages to send (delivered next round).
pub trait NodeProgram: Send {
    /// Message type exchanged between nodes (`Sync` because delivered
    /// inboxes are read by worker threads through shared references).
    type Msg: Clone + Send + Sync;

    /// Execute one round. `round` starts at 0 (empty inbox). Returned
    /// messages must address neighbours of `me` only.
    fn step(
        &mut self,
        me: NodeId,
        neighbors: &[NodeId],
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
    ) -> Vec<(NodeId, Self::Msg)>;
}

/// Per-round accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Messages delivered this round.
    pub messages: usize,
    /// Largest number of messages delivered to a single node this round
    /// (a CONGEST-flavoured measure: LOCAL allows it to be Δ, but tracking
    /// it shows where a bandwidth-limited model would hurt).
    pub max_inbox: usize,
}

/// The simulator: owns the communication graph and drives programs.
pub struct LocalSimulator<'a> {
    g: &'a Graph,
    /// Number of worker threads for per-round node execution.
    threads: usize,
}

impl<'a> LocalSimulator<'a> {
    /// Create a simulator over communication graph `g`.
    pub fn new(g: &'a Graph) -> Self {
        let threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZero::get)
            .min(8);
        LocalSimulator { g, threads }
    }

    /// Override the worker-thread count (1 = fully sequential).
    pub fn with_threads(g: &'a Graph, threads: usize) -> Self {
        assert!(threads >= 1);
        LocalSimulator { g, threads }
    }

    /// Run `rounds` synchronous rounds over one program instance per node.
    /// Returns per-round stats; final program states are left in `programs`
    /// for the caller to harvest outputs.
    pub fn run<P: NodeProgram>(&self, programs: &mut [P], rounds: usize) -> Vec<RoundStats> {
        let n = self.g.n();
        assert_eq!(programs.len(), n, "one program per node");
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut stats = Vec::with_capacity(rounds);

        for round in 0..rounds {
            let delivered: usize = inboxes.iter().map(Vec::len).sum();
            let max_inbox = inboxes.iter().map(Vec::len).max().unwrap_or(0);
            stats.push(RoundStats {
                messages: delivered,
                max_inbox,
            });

            // Step every node in parallel; collect outboxes.
            type Outbox<M> = Vec<(NodeId, M)>;
            let g = self.g;
            let chunk = n.div_ceil(self.threads).max(1);
            let mut outboxes: Vec<Outbox<P::Msg>> = Vec::with_capacity(n);
            {
                let prog_chunks: Vec<&mut [P]> = programs.chunks_mut(chunk).collect();
                let inbox_chunks: Vec<&[Outbox<P::Msg>]> = inboxes.chunks(chunk).collect();
                let results: Vec<Vec<Outbox<P::Msg>>> = crossbeam::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (ci, (progs, inbs)) in prog_chunks.into_iter().zip(inbox_chunks).enumerate()
                    {
                        let base = ci * chunk;
                        handles.push(scope.spawn(move |_| {
                            progs
                                .iter_mut()
                                .zip(inbs.iter())
                                .enumerate()
                                .map(|(off, (p, inbox))| {
                                    let me = (base + off) as NodeId;
                                    let out = p.step(me, g.neighbors(me), round, inbox);
                                    for (to, _) in &out {
                                        assert!(
                                            g.has_edge(me, *to),
                                            "LOCAL violation: node {me} sent to non-neighbour {to}"
                                        );
                                    }
                                    out
                                })
                                .collect::<Vec<_>>()
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| {
                            // Propagate a worker's original panic payload
                            // instead of masking it behind a generic unwrap.
                            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
                        })
                        .collect()
                })
                .unwrap_or_else(|e| std::panic::resume_unwind(e));
                for chunk_out in results {
                    outboxes.extend(chunk_out);
                }
            }

            // Deliver: assemble next-round inboxes in sender order.
            let mut next: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
            for (from, out) in outboxes.into_iter().enumerate() {
                for (to, msg) in out {
                    next[to as usize].push((from as NodeId, msg));
                }
            }
            inboxes = next;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcspan_graph::Graph;

    /// Flood the minimum node id seen so far (leader election by flooding).
    struct MinFlood {
        best: NodeId,
    }

    impl NodeProgram for MinFlood {
        type Msg = NodeId;

        fn step(
            &mut self,
            me: NodeId,
            neighbors: &[NodeId],
            round: usize,
            inbox: &[(NodeId, Self::Msg)],
        ) -> Vec<(NodeId, Self::Msg)> {
            if round == 0 {
                self.best = me;
            }
            let before = self.best;
            for &(_, v) in inbox {
                self.best = self.best.min(v);
            }
            if round == 0 || self.best < before {
                neighbors.iter().map(|&w| (w, self.best)).collect()
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn flooding_converges_within_diameter_rounds() {
        let g = Graph::from_edges(6, (0u32..5).map(|i| (i, i + 1)));
        let mut programs: Vec<MinFlood> = (0..6).map(|_| MinFlood { best: u32::MAX }).collect();
        let sim = LocalSimulator::new(&g);
        // Path diameter 5: after 6 rounds everyone knows node 0.
        sim.run(&mut programs, 6);
        assert!(programs.iter().all(|p| p.best == 0));
    }

    #[test]
    fn not_converged_before_enough_rounds() {
        let g = Graph::from_edges(6, (0u32..5).map(|i| (i, i + 1)));
        let mut programs: Vec<MinFlood> = (0..6).map(|_| MinFlood { best: u32::MAX }).collect();
        let sim = LocalSimulator::new(&g);
        sim.run(&mut programs, 2); // information travels ≤ 1 hop per round
        assert_eq!(programs[5].best, 4); // farthest node has only heard 1 hop
    }

    #[test]
    fn message_accounting() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let mut programs: Vec<MinFlood> = (0..3).map(|_| MinFlood { best: u32::MAX }).collect();
        let sim = LocalSimulator::new(&g);
        let stats = sim.run(&mut programs, 3);
        assert_eq!(stats[0].messages, 0); // nothing delivered in round 0
        assert_eq!(stats[0].max_inbox, 0);
        assert_eq!(stats[1].messages, 4); // everyone broadcast in round 0
        assert_eq!(stats[1].max_inbox, 2); // the middle node hears both ends
        assert!(stats[2].messages <= 4);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = Graph::from_edges(8, (0u32..8).map(|i| (i, (i + 1) % 8)));
        let run = |threads: usize| {
            let mut programs: Vec<MinFlood> = (0..8).map(|_| MinFlood { best: u32::MAX }).collect();
            LocalSimulator::with_threads(&g, threads).run(&mut programs, 5);
            programs.iter().map(|p| p.best).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    /// A program that (incorrectly) tries to message a non-neighbour.
    struct Rogue;
    impl NodeProgram for Rogue {
        type Msg = ();
        fn step(
            &mut self,
            me: NodeId,
            _neighbors: &[NodeId],
            _round: usize,
            _inbox: &[(NodeId, Self::Msg)],
        ) -> Vec<(NodeId, Self::Msg)> {
            if me == 0 {
                vec![(2, ())] // 0 and 2 are not adjacent in the path 0-1-2
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn local_model_enforced() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let mut programs = vec![Rogue, Rogue, Rogue];
        let sim = LocalSimulator::with_threads(&g, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run(&mut programs, 1);
        }));
        assert!(result.is_err(), "non-neighbour send must panic");
    }
}
