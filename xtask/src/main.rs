//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The only task so far is `lint`: a project-specific static-analysis pass
//! enforcing rules a generic linter cannot express — panic-freedom in
//! library code, the RNG determinism gate, checked CSR accessors in hot
//! paths, paper-anchor doc comments on the algorithm API, `// ord:`
//! happens-before justifications on every atomic-ordering site, and the
//! `crates/oracle` sync-facade boundary (no direct `std::sync` atomics).
//! See `DESIGN.md` § Correctness tooling and §12 Memory model.
//!
//! Dependency-free by design so it builds offline.

mod report;
mod rules;
mod scan;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cargo xtask lint [--json] [--fix-report <path>] [--root <dir>]\n\
         \n\
         tasks:\n\
         \x20 lint    run the project-specific static-analysis rules over crates/*/src\n\
         \n\
         options:\n\
         \x20 --json               print the machine-readable JSON report to stdout\n\
         \x20 --fix-report <path>  also write the JSON report to <path>\n\
         \x20 --root <dir>         workspace root (default: xtask's parent directory)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(task) = args.first() else { usage() };
    match task.as_str() {
        "lint" => lint(&args[1..]),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown task `{other}`");
            usage();
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json_stdout = false;
    let mut fix_report: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_stdout = true,
            "--fix-report" => match it.next() {
                Some(p) => fix_report = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let root = root.unwrap_or_else(|| {
        // xtask lives at <workspace>/xtask.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask has a parent directory")
            .to_path_buf()
    });

    let files = match scan::collect_sources(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut violations = Vec::new();
    for file in &files {
        rules::check_file(file, &mut violations);
    }
    violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));

    if json_stdout {
        println!("{}", report::to_json(&violations, files.len()));
    } else {
        report::print_text(&violations, files.len());
    }
    if let Some(path) = fix_report {
        let json = report::to_json(&violations, files.len());
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote JSON report to {}", path.display());
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
