//! Source discovery and a line-oriented source model.
//!
//! The lint rules work on a per-line view of each file in which string and
//! character literal *contents* and comments are blanked out (so a pattern
//! like `panic!` inside a string or doc comment never matches), with two
//! extra annotations per line:
//!
//! * `in_test` — the line sits inside a `#[cfg(test)]`-gated item, where
//!   panics and ad-hoc RNGs are fine;
//! * `allows` — rules disabled for this line by an inline
//!   `// xtask: allow(<rule>)` directive (same line or the line above);
//!   directives are the escape hatch for deliberate, justified violations.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A scanned source file.
pub(crate) struct SourceFile {
    /// Workspace-relative path with forward slashes (e.g. `crates/graph/src/graph.rs`).
    pub(crate) rel: String,
    /// Per-line views.
    pub(crate) lines: Vec<LineInfo>,
    /// Doc-comment text per line (`///` / `//!` contents; empty otherwise).
    pub(crate) docs: Vec<String>,
}

/// One line of a scanned file.
pub(crate) struct LineInfo {
    /// The raw line as written.
    pub(crate) raw: String,
    /// The line with comments and literal contents blanked.
    pub(crate) code: String,
    /// The comment text of the line (`//…` tail or block-comment body);
    /// empty when the line has no comment. Used by `atomic_ordering` to
    /// find `// ord:` justifications.
    pub(crate) comment: String,
    /// True inside `#[cfg(test)]` items.
    pub(crate) in_test: bool,
    /// Rules allowed (suppressed) on this line.
    pub(crate) allows: Vec<String>,
}

/// Collect every `.rs` file under `crates/*/src`, sorted by path.
pub(crate) fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(parse_source(rel, &text));
    }
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lexer state carried across lines while blanking literals and comments.
enum State {
    Normal,
    BlockComment(u32),
    RawString(u32),
}

/// Build the per-line model: blank literals/comments, record doc text,
/// detect `#[cfg(test)]` regions and `xtask: allow(...)` directives.
pub(crate) fn parse_source(rel: String, text: &str) -> SourceFile {
    let raw_lines: Vec<&str> = text.lines().collect();
    let mut code_lines = Vec::with_capacity(raw_lines.len());
    let mut comment_lines = Vec::with_capacity(raw_lines.len());
    let mut doc_lines = Vec::with_capacity(raw_lines.len());
    let mut state = State::Normal;
    for raw in &raw_lines {
        let (code, comment, doc, next) = strip_line(raw, state);
        code_lines.push(code);
        comment_lines.push(comment);
        doc_lines.push(doc);
        state = next;
    }

    let in_test = test_regions(&code_lines);
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); raw_lines.len()];
    for (i, comment) in comment_lines.iter().enumerate() {
        for rule in parse_allow_directive(comment) {
            // A directive covers its own line and the one below it, so it
            // can sit at the end of the offending line or just above it.
            allows[i].push(rule.clone());
            if i + 1 < raw_lines.len() {
                allows[i + 1].push(rule);
            }
        }
    }

    let lines = raw_lines
        .iter()
        .zip(code_lines)
        .zip(comment_lines)
        .zip(in_test)
        .zip(allows)
        .map(|((((raw, code), comment), in_test), allows)| LineInfo {
            raw: (*raw).to_string(),
            code,
            comment,
            in_test,
            allows,
        })
        .collect();
    SourceFile {
        rel,
        lines,
        docs: doc_lines,
    }
}

/// Blank one line under the running lexer `state`. Returns
/// `(code, comment_text, doc_text, next_state)`.
fn strip_line(raw: &str, mut state: State) -> (String, String, String, State) {
    let bytes = raw.as_bytes();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut doc = String::new();
    let mut i = 0usize;

    // Doc comments: capture text so the doc-anchor rule can search it.
    let trimmed = raw.trim_start();
    if trimmed.starts_with("///") || trimmed.starts_with("//!") {
        doc.push_str(trimmed[3..].trim());
    }

    while i < bytes.len() {
        match state {
            State::BlockComment(depth) => {
                if bytes[i..].starts_with(b"*/") {
                    state = if depth <= 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if bytes[i..].starts_with(b"/*") {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(bytes[i] as char);
                    i += 1;
                }
            }
            State::RawString(hashes) => {
                // Closing delimiter: '"' followed by `hashes` '#'s.
                if bytes[i] == b'"' {
                    let h = hashes as usize;
                    if bytes[i + 1..].len() >= h
                        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                    {
                        code.push('"');
                        for _ in 0..h {
                            code.push('#');
                        }
                        i += 1 + h;
                        state = State::Normal;
                        continue;
                    }
                }
                i += 1;
            }
            State::Normal => {
                if bytes[i..].starts_with(b"//") {
                    comment.push_str(&raw[i..]);
                    break;
                }
                if bytes[i..].starts_with(b"/*") {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                match bytes[i] {
                    b'"' => {
                        code.push('"');
                        i += 1;
                        // Ordinary string: skip to unescaped closing quote.
                        while i < bytes.len() {
                            match bytes[i] {
                                b'\\' => i += 2,
                                b'"' => {
                                    code.push('"');
                                    i += 1;
                                    break;
                                }
                                _ => i += 1,
                            }
                        }
                        // Unterminated: multi-line plain string — treat the
                        // remainder of following lines as raw-ish; model as
                        // raw string with 0 hashes.
                        if i > bytes.len() {
                            state = State::RawString(0);
                        }
                    }
                    b'r' if is_raw_string_start(bytes, i) => {
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while j < bytes.len() && bytes[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        code.push('r');
                        code.push('"');
                        i = j + 1; // skip opening quote
                        state = State::RawString(hashes);
                    }
                    b'\'' => {
                        // Char literal vs lifetime.
                        if let Some(len) = char_literal_len(bytes, i) {
                            code.push('\'');
                            code.push('\'');
                            i += len;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    b => {
                        code.push(b as char);
                        i += 1;
                    }
                }
            }
        }
    }

    // Multi-line plain strings are rare in this codebase; if a plain string
    // ran off the end of the line, stay in Normal (best effort).
    (code, comment, doc, state)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"` or `r#...#"`; avoid identifiers ending in r like `for r` (the
    // previous char check) and `br` byte strings are matched at `b`? We only
    // need `r`-forms used in this workspace.
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// If a char literal starts at `i`, return its byte length; else `None`
/// (then it's a lifetime or a loose quote).
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let rest = &bytes[i + 1..];
    if rest.is_empty() {
        return None;
    }
    if rest[0] == b'\\' {
        // Escaped char: find closing quote.
        let mut j = 1;
        while j < rest.len() && rest[j] != b'\'' {
            j += 1;
        }
        return (j < rest.len()).then_some(j + 2);
    }
    // Plain char `'x'` (possibly multi-byte UTF-8).
    let mut j = 1;
    while j < rest.len() && j <= 4 {
        if rest[j] == b'\'' {
            return Some(j + 2);
        }
        j += 1;
    }
    None
}

/// Mark lines inside `#[cfg(test)]` items by tracking brace depth.
fn test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code_lines.len()];
    let mut depth: i32 = 0;
    // (start_depth) of each open test region; regions can in principle nest.
    let mut region_stack: Vec<i32> = Vec::new();
    let mut pending_attr = false;

    for (idx, code) in code_lines.iter().enumerate() {
        let has_cfg_test = code.contains("#[cfg(test)]")
            || code.contains("#[cfg(any(test")
            || code.contains("#[cfg(all(test");
        if !region_stack.is_empty() {
            in_test[idx] = true;
        }
        if has_cfg_test && region_stack.is_empty() {
            pending_attr = true;
            in_test[idx] = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending_attr {
                        region_stack.push(depth);
                        pending_attr = false;
                        in_test[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(&start) = region_stack.last() {
                        if depth == start {
                            region_stack.pop();
                        }
                    }
                }
                ';' if pending_attr && region_stack.is_empty() => {
                    // `#[cfg(test)] use …;` — attribute consumed by a
                    // braceless item.
                    pending_attr = false;
                }
                _ => {}
            }
        }
    }
    in_test
}

/// Parse `xtask: allow(rule1, rule2)` out of a comment.
fn parse_allow_directive(comment: &str) -> Vec<String> {
    let Some(pos) = comment.find("xtask: allow(") else {
        return Vec::new();
    };
    let rest = &comment[pos + "xtask: allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = parse_source(
            "x.rs".into(),
            "let s = \"panic!()\"; // panic! here\nlet c = 'x';\n",
        );
        assert!(!f.lines[0].code.contains("panic"));
        assert!(!f.lines[1].code.contains('x') || f.lines[1].code.contains("let c"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = parse_source("x.rs".into(), "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("str"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = parse_source(
            "x.rs".into(),
            "let s = r#\"has .unwrap() inside\"#;\nlet t = 1;\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[1].code.contains("let t"));
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}\n";
        let f = parse_source("x.rs".into(), src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test, "region must close");
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_latch() {
        let src = "#[cfg(test)]\nuse std::fmt;\npub fn f() { g() }\n";
        let f = parse_source("x.rs".into(), src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn allow_directive_covers_this_and_next_line() {
        let src = "// xtask: allow(no_panic)\nx.unwrap();\ny.unwrap();\n";
        let f = parse_source("x.rs".into(), src);
        assert_eq!(f.lines[0].allows, vec!["no_panic"]);
        assert_eq!(f.lines[1].allows, vec!["no_panic"]);
        assert!(f.lines[2].allows.is_empty());
    }

    #[test]
    fn comment_text_is_captured_per_line() {
        let f = parse_source(
            "x.rs".into(),
            "let a = 1; // ord: Relaxed — statistic\nlet b = 2;\n",
        );
        assert!(f.lines[0].comment.contains("ord: Relaxed"));
        assert!(f.lines[1].comment.is_empty());
    }

    #[test]
    fn doc_text_is_captured() {
        let f = parse_source("x.rs".into(), "/// See Theorem 3.\npub fn f() {}\n");
        assert_eq!(f.docs[0], "See Theorem 3.");
        assert!(f.docs[1].is_empty());
    }

    #[test]
    fn block_comments_blanked_across_lines() {
        let f = parse_source("x.rs".into(), "/* start\n.unwrap()\nend */ let a = 1;\n");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("let a"));
    }
}
