//! The four project-specific lint rules.
//!
//! | rule            | scope                                   | enforces |
//! |-----------------|------------------------------------------|----------|
//! | `no_panic`      | all `crates/*/src`, non-test code        | no `.unwrap()` / `.expect(...)` / `panic!` family in library paths |
//! | `rng_gate`      | all `crates/*/src` except `graph/src/rng.rs`, non-test | RNG construction only via `dcspan_graph::rng` (determinism) |
//! | `checked_index` | `crates/graph/src` (except `invariants.rs`), `crates/routing/src`, non-test | no direct `.adj[...]` / `.offsets[...]` CSR indexing outside the checked accessors |
//! | `doc_anchor`    | `crates/core/src` algorithm modules      | every `pub fn` doc references a paper anchor (Theorem/Lemma/Algorithm/…) |
//!
//! Deliberate exceptions carry an inline `// xtask: allow(<rule>) — why`
//! directive; the directive is itself the audit trail.

use crate::scan::SourceFile;

/// One rule violation.
pub(crate) struct Violation {
    /// Workspace-relative file path.
    pub(crate) file: String,
    /// 1-based line number.
    pub(crate) line: usize,
    /// Rule identifier (`no_panic`, `rng_gate`, `checked_index`, `doc_anchor`).
    pub(crate) rule: &'static str,
    /// Human-readable description.
    pub(crate) message: String,
}

/// Panicking constructs forbidden in library (non-test) code.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()` in library code — return a `Result`, use a checked accessor, or justify with `xtask: allow(no_panic)`"),
    (".expect(", "`.expect(...)` in library code — return a `Result` or justify with `xtask: allow(no_panic)`"),
    ("panic!", "`panic!` in library code — return an error or justify with `xtask: allow(no_panic)`"),
    ("unreachable!", "`unreachable!` in library code — prove it or justify with `xtask: allow(no_panic)`"),
    ("todo!", "`todo!` must not ship in library code"),
    ("unimplemented!", "`unimplemented!` must not ship in library code"),
];

/// RNG constructors that bypass the `dcspan_graph::rng` determinism gate.
const RNG_PATTERNS: &[(&str, &str)] = &[
    (
        "seed_from_u64(",
        "direct RNG construction — derive per-item RNGs via `dcspan_graph::rng::item_rng`",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG breaks reproducibility — all randomness must flow from explicit seeds",
    ),
    (
        "thread_rng",
        "`thread_rng` is nondeterministic — all randomness must flow from explicit seeds",
    ),
    (
        "StdRng",
        "only `SmallRng` seeded via `dcspan_graph::rng` is permitted",
    ),
    ("OsRng", "OS randomness breaks reproducibility"),
];

/// Direct CSR-array indexing in hot paths (use the checked accessors).
const INDEX_PATTERNS: &[(&str, &str)] = &[
    (".adj[", "direct adjacency-array indexing — use `Graph::neighbors`/`Graph::degree` (checked accessors)"),
    (".offsets[", "direct CSR-offset indexing — use `Graph::neighbors`/`Graph::degree` (checked accessors)"),
];

/// Paper anchors accepted by `doc_anchor`.
const ANCHOR_WORDS: &[&str] = &[
    "Theorem",
    "Lemma",
    "Algorithm",
    "Corollary",
    "Definition",
    "Section",
    "Figure",
    "Table",
    "Claim",
    "Proposition",
];

/// `crates/core/src` modules whose public API must cite paper anchors.
const CORE_ALGORITHM_MODULES: &[&str] = &[
    "crates/core/src/baswana_sen.rs",
    "crates/core/src/becchetti.rs",
    "crates/core/src/certify.rs",
    "crates/core/src/eval.rs",
    "crates/core/src/exact.rs",
    "crates/core/src/expander.rs",
    "crates/core/src/fault.rs",
    "crates/core/src/greedy.rs",
    "crates/core/src/koutis_xu.rs",
    "crates/core/src/regular.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/support.rs",
    "crates/core/src/vft.rs",
];

/// Run every applicable rule over one file.
pub(crate) fn check_file(file: &SourceFile, out: &mut Vec<Violation>) {
    no_panic(file, out);
    rng_gate(file, out);
    checked_index(file, out);
    doc_anchor(file, out);
}

fn push(out: &mut Vec<Violation>, file: &SourceFile, idx: usize, rule: &'static str, msg: &str) {
    out.push(Violation {
        file: file.rel.clone(),
        line: idx + 1,
        rule,
        message: msg.to_string(),
    });
}

fn allowed(file: &SourceFile, idx: usize, rule: &str) -> bool {
    file.lines[idx].allows.iter().any(|a| a == rule)
}

fn no_panic(file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "no_panic") {
            continue;
        }
        for (pat, msg) in PANIC_PATTERNS {
            if let Some(pos) = line.code.find(pat) {
                // `.expect(` must not also fire on `.expect_err(`; none of
                // the other patterns have prefix collisions.
                if *pat == "panic!" {
                    // Skip attribute forms like #[should_panic] (already
                    // code-only, but `debug_assert!`/`assert!` contain no
                    // `panic!` substring, so nothing else to exclude).
                    let before = &line.code[..pos];
                    if before.trim_end().ends_with("should_") {
                        continue;
                    }
                }
                push(out, file, idx, "no_panic", msg);
            }
        }
    }
}

fn rng_gate(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == "crates/graph/src/rng.rs" {
        return; // the gate itself
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "rng_gate") {
            continue;
        }
        for (pat, msg) in RNG_PATTERNS {
            if line.code.contains(pat) {
                push(out, file, idx, "rng_gate", msg);
            }
        }
    }
}

fn checked_index(file: &SourceFile, out: &mut Vec<Violation>) {
    let hot =
        file.rel.starts_with("crates/graph/src") || file.rel.starts_with("crates/routing/src");
    if !hot {
        return;
    }
    // The invariant checkers audit the raw CSR arrays by design — they are
    // the module that *validates* what the checked accessors assume.
    if file.rel == "crates/graph/src/invariants.rs" {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "checked_index") {
            continue;
        }
        for (pat, msg) in INDEX_PATTERNS {
            // A match preceded by another `.` is the range operator
            // (`0..adj[i]` on a local variable), not a field access.
            let fires = line
                .code
                .match_indices(pat)
                .any(|(pos, _)| pos == 0 || line.code.as_bytes()[pos - 1] != b'.');
            if fires {
                push(out, file, idx, "checked_index", msg);
            }
        }
    }
}

fn doc_anchor(file: &SourceFile, out: &mut Vec<Violation>) {
    if !CORE_ALGORITHM_MODULES.contains(&file.rel.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "doc_anchor") {
            continue;
        }
        let t = line.code.trim_start();
        if !t.starts_with("pub fn ") {
            continue;
        }
        // Gather the contiguous doc block above (skipping attributes).
        let mut has_anchor = false;
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let above = file.lines[j].raw.trim_start();
            if above.starts_with("#[") || above.starts_with("#![") {
                continue; // attributes may sit between docs and the fn
            }
            if above.starts_with("///") {
                if contains_anchor(&file.docs[j]) {
                    has_anchor = true;
                    break;
                }
                continue;
            }
            break; // end of the doc/attribute block
        }
        if !has_anchor {
            let name = t["pub fn ".len()..]
                .split(['(', '<'])
                .next()
                .unwrap_or("?")
                .trim()
                .to_string();
            push(
                out,
                file,
                idx,
                "doc_anchor",
                &format!(
                    "`pub fn {name}` lacks a paper anchor in its doc comment \
                     (cite a Theorem/Lemma/Algorithm/Definition/Section/Figure/Table)"
                ),
            );
        }
    }
}

fn contains_anchor(doc: &str) -> bool {
    ANCHOR_WORDS.iter().any(|w| doc.contains(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        let file = parse_source(rel.into(), src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    #[test]
    fn unwrap_in_lib_flagged() {
        let v = check("crates/gen/src/x.rs", "pub fn f() { g().unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no_panic");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f() -> u32 { g().unwrap_or(0).max(h().unwrap_or_else(|| 1)) }\n",
        );
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| &v.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unwrap_in_test_module_ok() {
        let v = check(
            "crates/gen/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { g().unwrap(); }\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unwrap_in_string_or_comment_ok() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f() -> &'static str { \".unwrap()\" } // calls .unwrap()\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f() { // xtask: allow(no_panic) — infallible by construction\n    g().unwrap();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn expect_flagged_expect_err_not() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f() { g().expect(\"reason\"); }\npub fn h() { g().expect_err(\"no\"); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn rng_construction_outside_gate_flagged() {
        let v = check(
            "crates/core/src/x.rs",
            "pub fn f() { let rng = SmallRng::seed_from_u64(7); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rng_gate");
    }

    #[test]
    fn rng_gate_file_itself_exempt() {
        let v = check(
            "crates/graph/src/rng.rs",
            "pub fn item_rng(s: u64) -> SmallRng { SmallRng::seed_from_u64(s) }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn rng_in_tests_ok() {
        let v = check(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let r = SmallRng::seed_from_u64(1); }\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn csr_indexing_flagged_in_hot_crates_only() {
        let hot = check(
            "crates/graph/src/x.rs",
            "pub fn f(&self) { self.adj[0]; }\n",
        );
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].rule, "checked_index");
        let cold = check("crates/gen/src/x.rs", "pub fn f(&self) { self.adj[0]; }\n");
        assert!(cold.is_empty());
    }

    #[test]
    fn range_over_local_adj_not_flagged() {
        let v = check(
            "crates/graph/src/x.rs",
            "fn f(adj: &[Vec<u32>]) { for i in 0..adj[0].len() { let _ = i; } }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn doc_anchor_required_in_core_modules() {
        let bad = check(
            "crates/core/src/regular.rs",
            "/// Does things.\npub fn f() {}\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "doc_anchor");
        let good = check(
            "crates/core/src/regular.rs",
            "/// Runs Algorithm 1 (Theorem 3).\npub fn f() {}\n",
        );
        assert!(good.is_empty());
        // Attributes between the doc and the fn are fine.
        let attr = check(
            "crates/core/src/regular.rs",
            "/// Per Lemma 7.\n#[inline]\npub fn f() {}\n",
        );
        assert!(attr.is_empty());
    }

    #[test]
    fn doc_anchor_not_applied_outside_core() {
        let v = check("crates/graph/src/x.rs", "/// Plain docs.\npub fn f() {}\n");
        assert!(v.is_empty());
    }
}
