//! The seven project-specific lint rules.
//!
//! | rule            | scope                                   | enforces |
//! |-----------------|------------------------------------------|----------|
//! | `no_panic`      | all `crates/*/src` except `loomlite`, non-test code | no `.unwrap()` / `.expect(...)` / `panic!` family in library paths |
//! | `rng_gate`      | all `crates/*/src` except `graph/src/rng.rs`, non-test | RNG construction only via `dcspan_graph::rng` (determinism) |
//! | `checked_index` | `crates/graph/src` (except `invariants.rs`), `crates/routing/src`, non-test | no direct `.adj[...]` / `.offsets[...]` CSR indexing outside the checked accessors |
//! | `doc_anchor`    | `crates/core/src` algorithm modules      | every `pub fn` doc references a paper anchor (Theorem/Lemma/Algorithm/…) |
//! | `atomic_ordering` | all `crates/*/src` except `loomlite`, non-test | every `Ordering::*` site carries a `// ord:` happens-before justification; `SeqCst` additionally must say why weaker orderings fail |
//! | `sync_facade`   | `crates/oracle/src` except `sync.rs`, non-test | no direct `std::sync::atomic` / `std::sync::Arc` — all sync routes through the `--cfg loom`-swappable `crate::sync` facade |
//! | `unsafe_gate`   | all `crates/*/src` except `store/src/region.rs` | no `unsafe` anywhere else — the whole unsafe surface (mmap + borrowed-section casts) lives in the one narrowly-audited module |
//!
//! Deliberate exceptions carry an inline `// xtask: allow(<rule>) — why`
//! directive; the directive is itself the audit trail. `crates/loomlite`
//! is exempt from `no_panic` and `atomic_ordering` wholesale: it is the
//! model checker itself — its failure mode *is* a panic carrying the
//! counterexample schedule, and its `Ordering::` matches are the modeled
//! operations, not callsites choosing an ordering.

use crate::scan::SourceFile;

/// One rule violation.
pub(crate) struct Violation {
    /// Workspace-relative file path.
    pub(crate) file: String,
    /// 1-based line number.
    pub(crate) line: usize,
    /// Rule identifier (`no_panic`, `rng_gate`, `checked_index`, `doc_anchor`).
    pub(crate) rule: &'static str,
    /// Human-readable description.
    pub(crate) message: String,
}

/// Panicking constructs forbidden in library (non-test) code.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()` in library code — return a `Result`, use a checked accessor, or justify with `xtask: allow(no_panic)`"),
    (".expect(", "`.expect(...)` in library code — return a `Result` or justify with `xtask: allow(no_panic)`"),
    ("panic!", "`panic!` in library code — return an error or justify with `xtask: allow(no_panic)`"),
    ("unreachable!", "`unreachable!` in library code — prove it or justify with `xtask: allow(no_panic)`"),
    ("todo!", "`todo!` must not ship in library code"),
    ("unimplemented!", "`unimplemented!` must not ship in library code"),
];

/// RNG constructors that bypass the `dcspan_graph::rng` determinism gate.
const RNG_PATTERNS: &[(&str, &str)] = &[
    (
        "seed_from_u64(",
        "direct RNG construction — derive per-item RNGs via `dcspan_graph::rng::item_rng`",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG breaks reproducibility — all randomness must flow from explicit seeds",
    ),
    (
        "thread_rng",
        "`thread_rng` is nondeterministic — all randomness must flow from explicit seeds",
    ),
    (
        "StdRng",
        "only `SmallRng` seeded via `dcspan_graph::rng` is permitted",
    ),
    ("OsRng", "OS randomness breaks reproducibility"),
];

/// Direct CSR-array indexing in hot paths (use the checked accessors).
const INDEX_PATTERNS: &[(&str, &str)] = &[
    (".adj[", "direct adjacency-array indexing — use `Graph::neighbors`/`Graph::degree` (checked accessors)"),
    (".offsets[", "direct CSR-offset indexing — use `Graph::neighbors`/`Graph::degree` (checked accessors)"),
];

/// Paper anchors accepted by `doc_anchor`.
const ANCHOR_WORDS: &[&str] = &[
    "Theorem",
    "Lemma",
    "Algorithm",
    "Corollary",
    "Definition",
    "Section",
    "Figure",
    "Table",
    "Claim",
    "Proposition",
];

/// `crates/core/src` modules whose public API must cite paper anchors.
const CORE_ALGORITHM_MODULES: &[&str] = &[
    "crates/core/src/baswana_sen.rs",
    "crates/core/src/becchetti.rs",
    "crates/core/src/certify.rs",
    "crates/core/src/eval.rs",
    "crates/core/src/exact.rs",
    "crates/core/src/expander.rs",
    "crates/core/src/fault.rs",
    "crates/core/src/greedy.rs",
    "crates/core/src/koutis_xu.rs",
    "crates/core/src/regular.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/support.rs",
    "crates/core/src/vft.rs",
];

/// Run every applicable rule over one file.
pub(crate) fn check_file(file: &SourceFile, out: &mut Vec<Violation>) {
    no_panic(file, out);
    rng_gate(file, out);
    checked_index(file, out);
    doc_anchor(file, out);
    atomic_ordering(file, out);
    sync_facade(file, out);
    unsafe_gate(file, out);
}

/// The single module permitted to contain `unsafe` code: the region/
/// section layer of `dcspan-store` (mmap syscalls, aligned allocation,
/// and the probed `&[u8] → &[u32]`-family casts). Everything else in the
/// workspace lives under `forbid(unsafe_code)`; this rule is the
/// belt-and-suspenders check that nobody relaxes a crate-level lint
/// table to sneak a second unsafe island in.
const UNSAFE_MODULE: &str = "crates/store/src/region.rs";

fn unsafe_gate(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == UNSAFE_MODULE {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "unsafe_gate") {
            continue;
        }
        // Match the keyword `unsafe` as a whole word; `unsafe_code`
        // (lint-table mentions like `#[allow(unsafe_code)]`) and other
        // identifiers containing the substring never fire.
        let bytes = line.code.as_bytes();
        let fires = line.code.match_indices("unsafe").any(|(pos, m)| {
            let before_ok =
                pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
            let after = pos + m.len();
            let after_ok = after >= bytes.len()
                || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
            before_ok && after_ok
        });
        if fires {
            push(
                out,
                file,
                idx,
                "unsafe_gate",
                &format!(
                    "`unsafe` outside `{UNSAFE_MODULE}` — all unsafe code is \
                     confined to that one audited module; extend it there or \
                     find a safe formulation"
                ),
            );
        }
    }
}

fn push(out: &mut Vec<Violation>, file: &SourceFile, idx: usize, rule: &'static str, msg: &str) {
    out.push(Violation {
        file: file.rel.clone(),
        line: idx + 1,
        rule,
        message: msg.to_string(),
    });
}

fn allowed(file: &SourceFile, idx: usize, rule: &str) -> bool {
    file.lines[idx].allows.iter().any(|a| a == rule)
}

fn no_panic(file: &SourceFile, out: &mut Vec<Violation>) {
    // The model checker reports counterexamples by panicking (its whole
    // public contract) and recovers poisoned scheduler locks with
    // unwraps that cannot fail by construction; see the module docs.
    if file.rel.starts_with("crates/loomlite/src") {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "no_panic") {
            continue;
        }
        for (pat, msg) in PANIC_PATTERNS {
            if let Some(pos) = line.code.find(pat) {
                // `.expect(` must not also fire on `.expect_err(`; none of
                // the other patterns have prefix collisions.
                if *pat == "panic!" {
                    // Skip attribute forms like #[should_panic] (already
                    // code-only, but `debug_assert!`/`assert!` contain no
                    // `panic!` substring, so nothing else to exclude).
                    let before = &line.code[..pos];
                    if before.trim_end().ends_with("should_") {
                        continue;
                    }
                }
                push(out, file, idx, "no_panic", msg);
            }
        }
    }
}

fn rng_gate(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == "crates/graph/src/rng.rs" {
        return; // the gate itself
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "rng_gate") {
            continue;
        }
        for (pat, msg) in RNG_PATTERNS {
            if line.code.contains(pat) {
                push(out, file, idx, "rng_gate", msg);
            }
        }
    }
}

fn checked_index(file: &SourceFile, out: &mut Vec<Violation>) {
    let hot =
        file.rel.starts_with("crates/graph/src") || file.rel.starts_with("crates/routing/src");
    if !hot {
        return;
    }
    // The invariant checkers audit the raw CSR arrays by design — they are
    // the module that *validates* what the checked accessors assume.
    if file.rel == "crates/graph/src/invariants.rs" {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "checked_index") {
            continue;
        }
        for (pat, msg) in INDEX_PATTERNS {
            // A match preceded by another `.` is the range operator
            // (`0..adj[i]` on a local variable), not a field access.
            let fires = line
                .code
                .match_indices(pat)
                .any(|(pos, _)| pos == 0 || line.code.as_bytes()[pos - 1] != b'.');
            if fires {
                push(out, file, idx, "checked_index", msg);
            }
        }
    }
}

fn doc_anchor(file: &SourceFile, out: &mut Vec<Violation>) {
    if !CORE_ALGORITHM_MODULES.contains(&file.rel.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "doc_anchor") {
            continue;
        }
        let t = line.code.trim_start();
        if !t.starts_with("pub fn ") {
            continue;
        }
        // Gather the contiguous doc block above (skipping attributes).
        let mut has_anchor = false;
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let above = file.lines[j].raw.trim_start();
            if above.starts_with("#[") || above.starts_with("#![") {
                continue; // attributes may sit between docs and the fn
            }
            if above.starts_with("///") {
                if contains_anchor(&file.docs[j]) {
                    has_anchor = true;
                    break;
                }
                continue;
            }
            break; // end of the doc/attribute block
        }
        if !has_anchor {
            let name = t["pub fn ".len()..]
                .split(['(', '<'])
                .next()
                .unwrap_or("?")
                .trim()
                .to_string();
            push(
                out,
                file,
                idx,
                "doc_anchor",
                &format!(
                    "`pub fn {name}` lacks a paper anchor in its doc comment \
                     (cite a Theorem/Lemma/Algorithm/Definition/Section/Figure/Table)"
                ),
            );
        }
    }
}

fn contains_anchor(doc: &str) -> bool {
    ANCHOR_WORDS.iter().any(|w| doc.contains(w))
}

/// The five memory orderings — matched exactly so `cmp::Ordering::Less`
/// and friends (ubiquitous in merge loops) never fire the rule.
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn mentions_atomic_ordering(code: &str) -> bool {
    ATOMIC_ORDERINGS.iter().any(|o| code.contains(o))
}

/// How many lines above an `Ordering::` site the justification search
/// walks before giving up (bounds pathological files).
const ORD_SEARCH_DEPTH: usize = 20;

/// True when `comment` carries an `ord:` justification marker — `ord:`
/// not glued to a preceding identifier character (so `record:` or
/// `word:` never count).
fn has_ord_marker(comment: &str) -> bool {
    comment.match_indices("ord:").any(|(pos, _)| {
        pos == 0
            || !comment[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
    })
}

/// Find the `// ord:` justification covering the `Ordering::` site at
/// `idx`, searching the site line's own comment and then upward through
/// the contiguous run of related lines: other `Ordering::` lines (one
/// comment may justify a dense block like a stats snapshot),
/// comment-only lines, and lines this statement visibly continues from
/// (the site starts with `.`/`)`/`}`). Returns the comment text.
fn find_ord_justification(file: &SourceFile, idx: usize) -> Option<String> {
    let here = &file.lines[idx];
    if has_ord_marker(&here.comment) {
        return Some(here.comment.clone());
    }
    let mut continuing = here.code.trim_start().starts_with(['.', ')', '}', ']']);
    let lo = idx.saturating_sub(ORD_SEARCH_DEPTH);
    for j in (lo..idx).rev() {
        let line = &file.lines[j];
        let code = line.code.trim();
        if has_ord_marker(&line.comment) {
            return Some(line.comment.clone());
        }
        if code.is_empty() {
            if line.comment.trim().is_empty() {
                return None; // blank line ends the block
            }
            continue; // comment-only line without the marker: keep looking
        }
        if mentions_atomic_ordering(code) {
            continuing = code.starts_with(['.', ')', '}', ']']);
            continue; // same justified run (e.g. a stats snapshot block)
        }
        if continuing || code.ends_with(['{', '(', ',', '=']) {
            // Either the line below started mid-expression, or this line
            // ends with an opener — meaning the line below continues the
            // statement this line belongs to (a multi-line closure or
            // call). The search passes through the whole statement.
            continuing = code.starts_with(['.', ')', '}', ']']);
            continue;
        }
        return None; // unrelated statement ends the block
    }
    None
}

/// Every atomic-ordering choice must carry a happens-before
/// justification: an `// ord: …` comment on the site line, directly
/// above it, or heading the contiguous `Ordering::` block it belongs to.
/// `SeqCst` is held to a higher bar — its justification must name
/// `SeqCst` explicitly and say why weaker orderings fail, because an
/// unexplained `SeqCst` is almost always a "not sure, go strongest"
/// that hides the actual protocol.
fn atomic_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    // The model checker's `Ordering::` mentions are the modeled
    // operations themselves, not ordering choices at a call site.
    if file.rel.starts_with("crates/loomlite/src") {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test
            || allowed(file, idx, "atomic_ordering")
            || !mentions_atomic_ordering(&line.code)
        {
            continue;
        }
        match find_ord_justification(file, idx) {
            None => push(
                out,
                file,
                idx,
                "atomic_ordering",
                "atomic ordering without a `// ord:` happens-before justification \
                 (state what the ordering pairs with, or why Relaxed suffices)",
            ),
            Some(just) => {
                if line.code.contains("Ordering::SeqCst") && !just.contains("SeqCst") {
                    push(
                        out,
                        file,
                        idx,
                        "atomic_ordering",
                        "bare `SeqCst` — the `// ord:` justification must name SeqCst \
                         and explain why acquire/release orderings are insufficient",
                    );
                }
            }
        }
    }
}

/// Sync primitives the facade re-exports; importing them straight from
/// `std` bypasses the `--cfg loom` swap and silently exempts the code
/// from model checking.
const FACADE_BYPASS_PATTERNS: &[(&str, &str)] = &[
    (
        "std::sync::atomic",
        "direct `std::sync::atomic` import in the serving core — route through \
         `crate::sync::atomic` so the type is model-checked under `--cfg loom`",
    ),
    (
        "std::sync::Arc",
        "direct `std::sync::Arc` import in the serving core — route through \
         `crate::sync::Arc` so the facade stays the single doorway",
    ),
];

/// `crates/oracle` is the model-checked serving core: all of its sync
/// primitives must flow through the `crate::sync` facade (the one place
/// `--cfg loom` swaps std for `loomlite`). `sync.rs` is the facade.
fn sync_facade(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.rel.starts_with("crates/oracle/src") || file.rel == "crates/oracle/src/sync.rs" {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allowed(file, idx, "sync_facade") {
            continue;
        }
        for (pat, msg) in FACADE_BYPASS_PATTERNS {
            if line.code.contains(pat) {
                push(out, file, idx, "sync_facade", msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        let file = parse_source(rel.into(), src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    #[test]
    fn unsafe_outside_region_flagged() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f(p: *const u32) -> u32 { unsafe { *p } }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe_gate");
    }

    #[test]
    fn unsafe_inside_region_module_ok() {
        let v = check(
            "crates/store/src/region.rs",
            "pub fn f(p: *const u32) -> u32 { unsafe { *p } }\n",
        );
        assert!(v.iter().all(|v| v.rule != "unsafe_gate"));
    }

    #[test]
    fn unsafe_code_lint_mention_ok() {
        let v = check(
            "crates/store/src/lib.rs",
            "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\nmod region;\n",
        );
        assert!(
            v.is_empty(),
            "lint-table mentions must not fire: {:?}",
            v.iter().map(|v| &v.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unwrap_in_lib_flagged() {
        let v = check("crates/gen/src/x.rs", "pub fn f() { g().unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no_panic");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f() -> u32 { g().unwrap_or(0).max(h().unwrap_or_else(|| 1)) }\n",
        );
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| &v.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unwrap_in_test_module_ok() {
        let v = check(
            "crates/gen/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { g().unwrap(); }\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unwrap_in_string_or_comment_ok() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f() -> &'static str { \".unwrap()\" } // calls .unwrap()\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f() { // xtask: allow(no_panic) — infallible by construction\n    g().unwrap();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn expect_flagged_expect_err_not() {
        let v = check(
            "crates/gen/src/x.rs",
            "pub fn f() { g().expect(\"reason\"); }\npub fn h() { g().expect_err(\"no\"); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn rng_construction_outside_gate_flagged() {
        let v = check(
            "crates/core/src/x.rs",
            "pub fn f() { let rng = SmallRng::seed_from_u64(7); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rng_gate");
    }

    #[test]
    fn rng_gate_file_itself_exempt() {
        let v = check(
            "crates/graph/src/rng.rs",
            "pub fn item_rng(s: u64) -> SmallRng { SmallRng::seed_from_u64(s) }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn rng_in_tests_ok() {
        let v = check(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let r = SmallRng::seed_from_u64(1); }\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn csr_indexing_flagged_in_hot_crates_only() {
        let hot = check(
            "crates/graph/src/x.rs",
            "pub fn f(&self) { self.adj[0]; }\n",
        );
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].rule, "checked_index");
        let cold = check("crates/gen/src/x.rs", "pub fn f(&self) { self.adj[0]; }\n");
        assert!(cold.is_empty());
    }

    #[test]
    fn range_over_local_adj_not_flagged() {
        let v = check(
            "crates/graph/src/x.rs",
            "fn f(adj: &[Vec<u32>]) { for i in 0..adj[0].len() { let _ = i; } }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn doc_anchor_required_in_core_modules() {
        let bad = check(
            "crates/core/src/regular.rs",
            "/// Does things.\npub fn f() {}\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "doc_anchor");
        let good = check(
            "crates/core/src/regular.rs",
            "/// Runs Algorithm 1 (Theorem 3).\npub fn f() {}\n",
        );
        assert!(good.is_empty());
        // Attributes between the doc and the fn are fine.
        let attr = check(
            "crates/core/src/regular.rs",
            "/// Per Lemma 7.\n#[inline]\npub fn f() {}\n",
        );
        assert!(attr.is_empty());
    }

    #[test]
    fn doc_anchor_not_applied_outside_core() {
        let v = check("crates/graph/src/x.rs", "/// Plain docs.\npub fn f() {}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn unjustified_ordering_flagged() {
        let v = check(
            "crates/oracle/src/x.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "atomic_ordering");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn ord_comment_justifies_same_line_and_above() {
        let same = check(
            "crates/oracle/src/x.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Acquire); } // ord: pairs with store\n",
        );
        assert!(same.is_empty());
        let above = check(
            "crates/oracle/src/x.rs",
            "fn f(a: &AtomicU64) {\n    // ord: Acquire pairs with the publish Release.\n    a.load(Ordering::Acquire);\n}\n",
        );
        assert!(above.is_empty());
    }

    #[test]
    fn one_ord_comment_covers_a_dense_block() {
        // The stats-snapshot shape: one justification heads a contiguous
        // run of ordering sites.
        let v = check(
            "crates/oracle/src/x.rs",
            "fn snap(c: &C) -> S {\n    S {\n        // ord: Relaxed — monitoring snapshot.\n        a: c.a.load(Ordering::Relaxed),\n        b: c.b.load(Ordering::Relaxed),\n        d: c.d.load(Ordering::Relaxed),\n    }\n}\n",
        );
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.line).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ord_comment_covers_a_multiline_statement() {
        // The ordering site sits inside a closure opened on the line
        // above; the justification heads the whole statement.
        let v = check(
            "crates/oracle/src/x.rs",
            "fn f(bits: &[AtomicU64], idx: usize) -> bool {\n    // ord: AcqRel — publishes the bit with the odd stamp.\n    bits.get(idx / 64).is_some_and(|w| {\n        w.fetch_or(1 << (idx % 64), Ordering::AcqRel) & 1 != 0\n    })\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn ord_comment_does_not_leak_past_blank_or_unrelated_lines() {
        let blank = check(
            "crates/oracle/src/x.rs",
            "// ord: Relaxed — for the other site.\nlet x = 1;\n\nfn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(blank.len(), 1, "a blank line must end the covered block");
        // `record:` in a comment is not an `ord:` marker.
        let word = check(
            "crates/oracle/src/x.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); } // see the record: above\n",
        );
        assert_eq!(word.len(), 1);
    }

    #[test]
    fn ordering_in_tests_and_under_allow_ok() {
        let test_code = check(
            "crates/oracle/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}\n",
        );
        assert!(test_code.is_empty());
        let allowed = check(
            "crates/oracle/src/x.rs",
            "// xtask: allow(atomic_ordering) — migration in flight\nfn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n",
        );
        assert!(allowed.is_empty());
    }

    #[test]
    fn seqcst_needs_a_justification_naming_it() {
        let bare = check(
            "crates/oracle/src/x.rs",
            "fn f(a: &AtomicU64) {\n    // ord: strongest, just in case.\n    a.load(Ordering::SeqCst);\n}\n",
        );
        assert_eq!(bare.len(), 1, "a SeqCst alibi must name SeqCst");
        assert!(bare[0].message.contains("SeqCst"));
        let justified = check(
            "crates/oracle/src/x.rs",
            "fn f(a: &AtomicU64) {\n    // ord: SeqCst — the flag and the queue need a single total\n    // order; acquire/release alone allows both to observe each\n    // other's update as not-yet-happened (IRIW).\n    a.load(Ordering::SeqCst);\n}\n",
        );
        assert!(justified.is_empty());
    }

    #[test]
    fn cmp_ordering_never_fires_the_atomic_rule() {
        let v = check(
            "crates/graph/src/x.rs",
            "fn m(a: u32, b: u32) {\n    match a.cmp(&b) {\n        std::cmp::Ordering::Less => {}\n        std::cmp::Ordering::Greater => {}\n        std::cmp::Ordering::Equal => {}\n    }\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn loomlite_exempt_from_panic_and_ordering_rules() {
        let v = check(
            "crates/loomlite/src/exec.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); g().unwrap(); panic!(\"x\"); }\n",
        );
        assert!(
            v.is_empty(),
            "the model checker is the documented exception"
        );
    }

    #[test]
    fn facade_bypass_flagged_in_oracle_only() {
        let bad = check(
            "crates/oracle/src/fault.rs",
            "use std::sync::atomic::{AtomicU64, Ordering};\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "sync_facade");
        let arc = check("crates/oracle/src/snapshot.rs", "use std::sync::Arc;\n");
        assert_eq!(arc.len(), 1);
        // Other crates keep importing std directly.
        let other = check("crates/graph/src/x.rs", "use std::sync::Arc;\n");
        assert!(other.is_empty());
    }

    #[test]
    fn facade_itself_tests_and_barrier_exempt_from_sync_facade() {
        let facade = check(
            "crates/oracle/src/sync.rs",
            "pub(crate) use std::sync::atomic::AtomicU64;\npub(crate) use std::sync::Arc;\n",
        );
        assert!(
            facade.is_empty(),
            "the facade is the single allowed doorway"
        );
        let test_code = check(
            "crates/oracle/src/snapshot.rs",
            "#[cfg(test)]\nmod tests {\n    use std::sync::Arc;\n}\n",
        );
        assert!(test_code.is_empty());
        // `std::sync::Barrier` is deliberately outside the facade.
        let barrier = check("crates/oracle/src/chaos.rs", "use std::sync::Barrier;\n");
        assert!(barrier.is_empty());
    }

    #[test]
    fn sync_facade_allow_escape_works() {
        let v = check(
            "crates/oracle/src/x.rs",
            "// xtask: allow(sync_facade) — never reached by models\nuse std::sync::Arc;\n",
        );
        assert!(v.is_empty());
    }
}
