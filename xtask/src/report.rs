//! Violation reporting: human-readable text and machine-readable JSON
//! (the `--json` / `--fix-report` modes).

use crate::rules::Violation;

/// Print the human-readable report to stdout/stderr.
pub(crate) fn print_text(violations: &[Violation], files_scanned: usize) {
    for v in violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    if violations.is_empty() {
        eprintln!("xtask lint: {files_scanned} files scanned, no violations");
    } else {
        eprintln!(
            "xtask lint: {files_scanned} files scanned, {} violation(s)",
            violations.len()
        );
    }
}

/// Render the JSON report:
/// `{"files_scanned":N,"total":N,"by_rule":{"<rule>":N,..},"violations":[{"file":..,"line":..,"rule":..,"message":..}]}`.
///
/// `by_rule` holds one entry per rule that fired (sorted by rule name, so
/// the output is deterministic); rules with zero violations are omitted.
pub(crate) fn to_json(violations: &[Violation], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"files_scanned\": ");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\n  \"total\": ");
    out.push_str(&violations.len().to_string());
    out.push_str(",\n  \"by_rule\": {");
    let mut rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_str(&mut out, rule);
        out.push_str(": ");
        let n = violations.iter().filter(|v| v.rule == *rule).count();
        out.push_str(&n.to_string());
    }
    out.push_str("},\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": ");
        push_json_str(&mut out, &v.file);
        out.push_str(", \"line\": ");
        out.push_str(&v.line.to_string());
        out.push_str(", \"rule\": ");
        push_json_str(&mut out, v.rule);
        out.push_str(", \"message\": ");
        push_json_str(&mut out, &v.message);
        out.push('}');
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let v = vec![Violation {
            file: "crates/x/src/a.rs".into(),
            line: 7,
            rule: "no_panic",
            message: "say \"no\"".into(),
        }];
        let json = to_json(&v, 3);
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"by_rule\": {\"no_panic\": 1}"));
    }

    #[test]
    fn json_empty_report() {
        let json = to_json(&[], 5);
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"total\": 0"));
        assert!(json.contains("\"by_rule\": {}"));
    }

    #[test]
    fn json_by_rule_counts_are_sorted_and_exact() {
        let mk = |rule: &'static str, line: u32| Violation {
            file: "crates/x/src/a.rs".into(),
            line: line as usize,
            rule,
            message: "m".into(),
        };
        let v = vec![
            mk("sync_facade", 1),
            mk("atomic_ordering", 2),
            mk("atomic_ordering", 3),
        ];
        let json = to_json(&v, 2);
        assert!(json.contains("\"by_rule\": {\"atomic_ordering\": 2, \"sync_facade\": 1}"));
        assert!(json.contains("\"total\": 3"));
    }
}
