//! Format-v2 acceptance tests (DESIGN.md §15): a v2 artifact without
//! reordering serves **bit-identically** to the v1 encoding of the same
//! build; an RCM-reordered v2 artifact serves **semantically
//! equivalent** routes (valid paths, same outcome/kind/hops per query,
//! comparable congestion) at `n = 2000`; and a second OS process
//! serving the same v2 file pays almost no *private* RSS because the
//! mapped sections stay in the shared page cache.

use dcspan::core::serve::SpannerAlgo;
use dcspan::experiments::workloads;
use dcspan::oracle::{Oracle, OracleConfig, ReorderKind};
use dcspan::routing::RoutingProblem;
use dcspan::store::MappedArtifact;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;

const N: usize = 2000;
const SEED: u64 = 20240807;
const QUERIES: usize = 5000;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dcspan-v2-{tag}-{}.bin", std::process::id()))
}

#[test]
fn v2_serves_bit_identically_and_reordered_serves_equivalently() {
    let delta = workloads::theorem3_degree(N);
    let g = workloads::regime_expander(N, delta, SEED);
    let config = OracleConfig {
        seed: SEED,
        ..OracleConfig::default()
    };

    // Same build, both encodings on disk.
    let artifact = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, SEED);
    let (p1, p2) = (temp("v1"), temp("v2"));
    artifact.save(&p1).expect("save v1");
    artifact.save_v2(&p2).expect("save v2");
    let from_v1 = Oracle::from_artifact_file(&p1, config).expect("load v1");
    let from_v2 = Oracle::from_artifact_file(&p2, config).expect("open v2");
    assert!(!from_v1.uses_shared_storage());

    // v2 without reordering is bit-identical to v1 serving: every
    // response — including cache_hit flags, both caches cold — matches.
    let problem = RoutingProblem::random_pairs(N, QUERIES, SEED ^ 0xBEEF);
    for (q, &(u, v)) in problem.pairs().iter().enumerate() {
        let a = from_v1.route(u, v, q as u64);
        let b = from_v2.route(u, v, q as u64);
        assert_eq!(a, b, "query {q} ({u}, {v}) diverged between v1 and v2");
    }

    // RCM-reordered artifact of the same instance: answers are
    // semantically equivalent and paths are valid walks in G between
    // the queried (external) endpoints.
    let reordered_artifact =
        Oracle::build_artifact_reordered(&g, SpannerAlgo::Theorem3, SEED, ReorderKind::Rcm)
            .expect("reordered build");
    assert!(reordered_artifact.perm.is_some());
    let pr = temp("v2r");
    reordered_artifact.save_v2(&pr).expect("save reordered");
    let reordered = Oracle::from_artifact_file(&pr, config).expect("open reordered");
    assert!(reordered.is_reordered());

    let mut answered = 0usize;
    let mut load_plain = vec![0u64; N];
    let mut load_reord = vec![0u64; N];
    for (q, &(u, v)) in problem.pairs().iter().enumerate() {
        let id = (QUERIES + q) as u64;
        match (from_v2.route(u, v, id), reordered.route(u, v, id)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.kind, b.kind, "query {q}: kind diverged");
                assert_eq!(a.hops(), b.hops(), "query {q}: hop count diverged");
                let nodes = b.path.nodes();
                assert_eq!(nodes.first().copied(), Some(u), "query {q}: wrong source");
                assert_eq!(nodes.last().copied(), Some(v), "query {q}: wrong target");
                for w in nodes.windows(2) {
                    assert!(
                        g.has_edge(w[0], w[1]),
                        "query {q}: reordered path uses non-edge ({}, {})",
                        w[0],
                        w[1]
                    );
                }
                for &x in a.path.nodes() {
                    load_plain[x as usize] += 1;
                }
                for &x in nodes {
                    load_reord[x as usize] += 1;
                }
                answered += 1;
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "query {q}: rejections diverged"),
            (a, b) => panic!("query {q}: outcome diverged: {a:?} vs {b:?}"),
        }
    }
    assert!(
        answered * 10 >= QUERIES * 9,
        "only {answered}/{QUERIES} queries answered"
    );
    // β-equivalence: identical hop counts bound total load exactly; the
    // peak may shift between nodes with detour tie-breaks, but not blow
    // up. (Both profiles were accumulated in external ids above.)
    let (max_p, max_r) = (
        load_plain.iter().copied().max().unwrap_or(0).max(1),
        load_reord.iter().copied().max().unwrap_or(0).max(1),
    );
    assert_eq!(
        load_plain.iter().sum::<u64>(),
        load_reord.iter().sum::<u64>(),
        "total load must match when every hop count matches"
    );
    assert!(
        max_r <= 2 * max_p && max_p <= 2 * max_r,
        "peak congestion diverged: {max_p} plain vs {max_r} reordered"
    );

    for p in [&p1, &p2, &pr] {
        let _ = std::fs::remove_file(p);
    }
}

/// Private (non-file-backed) and shared resident KiB of `pid`, from
/// `/proc/<pid>/statm` (4 KiB pages); `None` off Linux.
fn statm_kb(pid: u32) -> Option<(i64, i64)> {
    let statm = std::fs::read_to_string(format!("/proc/{pid}/statm")).ok()?;
    let mut fields = statm.split_whitespace();
    let resident: i64 = fields.nth(1)?.parse().ok()?;
    let shared: i64 = fields.next()?.parse().ok()?;
    Some(((resident - shared) * 4, shared * 4))
}

/// Spawn `dcspan serve` on `artifact`, prove it is answering (one routed
/// query), and return the live child plus its stdio handles.
fn spawn_serve(
    artifact: &std::path::Path,
) -> (
    std::process::Child,
    std::process::ChildStdin,
    BufReader<std::process::ChildStdout>,
) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_dcspan"))
        .args(["serve", "--artifact"])
        .arg(artifact)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dcspan serve");
    let mut stdin = child.stdin.take().expect("child stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    stdin
        .write_all(b"{\"u\":1,\"v\":200}\n")
        .and_then(|()| stdin.flush())
        .expect("write query");
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read response");
    assert!(line.contains("\"ok\""), "unexpected response: {line}");
    (child, stdin, stdout)
}

#[test]
fn second_serving_process_shares_the_mapped_artifact_pages() {
    let n = 300;
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, 11);
    let artifact = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, 11);
    let path = temp("share");
    artifact.save_v2(&path).expect("save v2");
    let file_kb = std::fs::metadata(&path).expect("stat artifact").len() as i64 / 1024;
    assert!(
        file_kb > 512,
        "artifact too small to measure ({file_kb} KiB)"
    );

    // Page sharing only exists on the real-mmap backing; the portable
    // heap fallback (and non-Linux hosts) have nothing to measure.
    let mapped = MappedArtifact::open(&path).expect("open v2");
    if !mapped.is_mmap() || statm_kb(std::process::id()).is_none() {
        let _ = std::fs::remove_file(&path);
        return;
    }
    drop(mapped);

    let (mut c1, in1, out1) = spawn_serve(&path);
    let (mut c2, in2, out2) = spawn_serve(&path);
    // Both children checksum-verified the whole file at open, so every
    // artifact page is resident and file-backed: it must show up as
    // shared, not private, in both — the "one page-cache copy,
    // N replicas" contract.
    for (who, child) in [("first", &c1), ("second", &c2)] {
        let (private_kb, shared_kb) = statm_kb(child.id()).expect("child statm");
        assert!(
            shared_kb >= file_kb / 2,
            "{who} serve process shares only {shared_kb} KiB of a {file_kb} KiB artifact"
        );
        assert!(
            private_kb < file_kb / 2,
            "{who} serve process holds {private_kb} KiB private against a {file_kb} KiB \
             artifact — the mapped sections were copied, not shared"
        );
    }
    drop((in1, in2));
    let _ = (c1.wait(), c2.wait());
    drop((out1, out2));
    let _ = std::fs::remove_file(&path);
}
