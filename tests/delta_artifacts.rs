//! Acceptance tests for the delta-driven artifact lifecycle on real
//! builds (DESIGN.md §16): a v2 artifact carrying a `DELTA` section
//! replays transparently at open and serves the *current* state; folding
//! the log (`migrate-artifact --compact`'s code path) is byte-identical
//! to building the mutated graph directly; and a permutation-carrying
//! artifact keeps its `PERM` section through apply, replay, and compact.

use dcspan::core::serve::SpannerAlgo;
use dcspan::experiments::workloads;
use dcspan::graph::delta::{apply_mutations, EdgeMutation};
use dcspan::graph::Graph;
use dcspan::oracle::{apply_delta_to_artifact, Oracle, OracleConfig, ReorderKind};
use dcspan::routing::RoutingProblem;
use dcspan::store::{save_v2_delta, MappedArtifact, SpannerArtifact};
use std::path::PathBuf;

const SEED: u64 = 20240808;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dcspan-delta-art-{tag}-{}.bin", std::process::id()))
}

/// A small degree-preserving removal batch: disjoint endpoints, so the
/// untouched nodes keep full degree and `(n, Δ)` is invariant.
fn removal_batch(g: &Graph, k: usize) -> Vec<EdgeMutation> {
    let mut used = vec![false; g.n()];
    let mut batch = Vec::new();
    for e in g.edges() {
        if batch.len() == k {
            break;
        }
        if !used[e.u as usize] && !used[e.v as usize] {
            used[e.u as usize] = true;
            used[e.v as usize] = true;
            batch.push(EdgeMutation::Remove(e.u, e.v));
        }
    }
    batch
}

#[test]
fn delta_file_serves_current_state_and_compacts_to_direct_build() {
    let n = 300;
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, SEED);
    let config = OracleConfig {
        seed: SEED,
        ..OracleConfig::default()
    };
    let base = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, SEED);
    let batch = removal_batch(&g, 4);
    let (patched, report) = apply_delta_to_artifact(&base, &batch).expect("delta apply");
    assert_eq!(report.edges_removed, 4);

    // Persist as base + log; every open path must see the current state.
    let path = temp("replay");
    save_v2_delta(&base, &patched, &batch, &path).expect("save delta");

    let raw = MappedArtifact::open_raw(&path).expect("raw open");
    assert!(raw.has_delta());
    assert_eq!(raw.decode_owned().expect("raw decode"), base);
    assert_eq!(raw.delta_ops().expect("ops"), batch);
    assert_eq!(raw.current_artifact().expect("current"), patched);
    drop(raw);

    let loaded = SpannerArtifact::load(&path).expect("load replays");
    assert_eq!(loaded, patched, "load must replay the DELTA section");

    // Compacting (fold the log, re-encode without DELTA) is byte-identical
    // to building the mutated graph directly.
    let (g_new, _) = apply_mutations(&g, &batch).expect("mutate");
    let direct = Oracle::build_artifact(&g_new, SpannerAlgo::Theorem3, SEED);
    assert_eq!(
        loaded.encode_v2().expect("compact encode"),
        direct.encode_v2().expect("direct encode"),
        "compacted delta artifact must equal the direct build byte-for-byte"
    );

    // Serving from the delta file equals serving the direct build.
    let from_file = Oracle::from_artifact_file(&path, config).expect("serve delta file");
    let rebuilt = Oracle::from_artifact(direct, config).expect("serve direct");
    let problem = RoutingProblem::random_pairs(n, 500, SEED ^ 0xD17A);
    for (q, &(u, v)) in problem.pairs().iter().enumerate() {
        assert_eq!(
            from_file.route(u, v, q as u64),
            rebuilt.route(u, v, q as u64),
            "query {q} ({u}, {v}) diverged between delta file and direct build"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn permutation_rides_through_delta_save_replay_and_compact() {
    let n = 200;
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, SEED ^ 1);
    let base = Oracle::build_artifact_reordered(&g, SpannerAlgo::Theorem3, SEED, ReorderKind::Rcm)
        .expect("reordered build");
    assert!(base.perm.is_some());

    let batch = removal_batch(&g, 3);
    let (patched, _) = apply_delta_to_artifact(&base, &batch).expect("delta apply");
    assert_eq!(patched.perm, base.perm, "apply must keep the permutation");

    let path = temp("perm");
    save_v2_delta(&base, &patched, &batch, &path).expect("save delta");
    let loaded = SpannerArtifact::load(&path).expect("load replays");
    assert_eq!(loaded.perm, base.perm, "replay must keep the permutation");
    assert_eq!(loaded, patched);

    // Compact: re-encode without the DELTA section, PERM still aboard.
    let compact_path = temp("perm-compact");
    loaded.save_v2(&compact_path).expect("compact save");
    let compacted = SpannerArtifact::load(&compact_path).expect("compact load");
    assert_eq!(
        compacted.perm, base.perm,
        "compact must keep the permutation"
    );
    assert_eq!(compacted, patched);
    let raw = MappedArtifact::open_raw(&compact_path).expect("raw open");
    assert!(!raw.has_delta(), "compacted artifact carries no DELTA");
    drop(raw);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&compact_path);
}
