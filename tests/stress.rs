//! Larger-scale stress tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`). These exercise the constructions
//! at sizes closer to the bench scale and pin down scaling-sensitive
//! invariants that small unit tests cannot see.

use dcspan::core::eval::distance_stretch_edges;
use dcspan::core::expander::{build_expander_spanner, ExpanderSpannerParams};
use dcspan::core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan::core::serve::SpannerAlgo;
use dcspan::gen::regular::random_regular;
use dcspan::graph::rng::splitmix64;
use dcspan::oracle::{Oracle, OracleConfig, SnapshotSlot};
use dcspan::spectral::expansion::spectral_expansion;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// Concurrent fault churn: one mutator thread fails/heals spanner edges
/// and nodes while three router threads serve queries the whole time.
/// Not `#[ignore]`d — this is the serving subsystem's core concurrency
/// contract: no panics, every served path stays inside `H`, and the
/// fault-overlay epoch each thread observes through `RouteResponse` is
/// monotone non-decreasing.
#[test]
fn concurrent_fail_heal_route_interleaving() {
    let n = 240usize;
    let g = random_regular(n, 12, 9);
    let oracle = Oracle::from_algo(
        &g,
        SpannerAlgo::Theorem2WithProb(0.6),
        OracleConfig {
            seed: 0x57_AE55,
            ..OracleConfig::default()
        },
    );
    let stop = AtomicBool::new(false);
    let start = Barrier::new(4);
    let (total_served, max_epoch) = std::thread::scope(|s| {
        let mutator = {
            let (oracle, stop, start) = (&oracle, &stop, &start);
            s.spawn(move || {
                start.wait();
                let edges = oracle.spanner().edges().to_vec();
                for round in 0..400u64 {
                    let e = edges[splitmix64(round ^ 0xFA17) as usize % edges.len()];
                    oracle.fail_edge(e.u, e.v);
                    oracle.fail_node((splitmix64(round ^ 0xC0DE) as usize % n) as u32);
                    if round % 5 == 4 {
                        oracle.heal_all();
                    }
                    std::thread::yield_now();
                }
                oracle.heal_all();
                stop.store(true, Ordering::Release);
            })
        };
        let workers: Vec<_> = (0..3u64)
            .map(|t| {
                let (oracle, stop, start) = (&oracle, &stop, &start);
                s.spawn(move || {
                    start.wait();
                    let mut last_epoch = 0u64;
                    let mut served = 0u64;
                    let mut q = t << 48;
                    while !stop.load(Ordering::Acquire) {
                        q += 1;
                        let a = (splitmix64(q) as usize % n) as u32;
                        let b = (splitmix64(q ^ 0xB0B) as usize % n) as u32;
                        if a == b {
                            continue;
                        }
                        // Either outcome is legal under churn; panics and
                        // paths leaving `H` are not.
                        if let Ok(resp) = oracle.route(a, b, q) {
                            assert!(
                                resp.epoch >= last_epoch,
                                "epoch went backwards: {} after {}",
                                resp.epoch,
                                last_epoch
                            );
                            last_epoch = resp.epoch;
                            assert_eq!(resp.path.source(), a);
                            assert_eq!(resp.path.destination(), b);
                            assert!(resp.path.is_valid_in(oracle.spanner()));
                            served += 1;
                        }
                    }
                    (served, last_epoch)
                })
            })
            .collect();
        mutator.join().expect("mutator must not panic");
        workers.into_iter().fold((0u64, 0u64), |acc, w| {
            let (served, epoch) = w.join().expect("worker must not panic");
            (acc.0 + served, acc.1.max(epoch))
        })
    });
    assert!(total_served > 0, "churn must not starve the routers");
    assert!(max_epoch > 0, "workers must observe fault mutations");
    // The final heal leaves a fault-free oracle that still serves.
    assert!(!oracle.faults().faults_present());
    assert!(oracle.route(0, 1, u64::MAX).is_ok());
}

/// Hot-swap churn on top of fault churn: one thread swaps fresh oracle
/// generations into a [`SnapshotSlot`] while a mutator kills/heals
/// elements of whatever generation is live and three workers route
/// against pinned snapshots. The real-thread counterpart of the loomlite
/// models in `crates/oracle/tests/loom_models.rs` (which explore the
/// small-instance interleavings exhaustively; this runs the full oracle
/// at scale under the OS scheduler). Invariants: slot epoch observations
/// are monotone per worker, a pinned snapshot's answers stay valid in
/// *its* spanner regardless of concurrent swaps, and the fault-overlay
/// epoch observed through each snapshot never regresses for that
/// generation.
#[test]
fn concurrent_swap_fail_heal_route_on_snapshot_slot() {
    let n = 96usize;
    let g = random_regular(n, 10, 11);
    let make = |seed: u64| {
        Oracle::from_algo(
            &g,
            SpannerAlgo::Theorem2WithProb(0.6),
            OracleConfig {
                seed,
                ..OracleConfig::default()
            },
        )
    };
    let slot = SnapshotSlot::new(make(1));
    let stop = AtomicBool::new(false);
    let start = Barrier::new(5);
    let total_served = std::thread::scope(|s| {
        let swapper = {
            let (slot, stop, start, make) = (&slot, &stop, &start, &make);
            s.spawn(move || {
                start.wait();
                for generation in 2..12u64 {
                    slot.swap(make(generation));
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Release);
            })
        };
        let mutator = {
            let (slot, stop, start) = (&slot, &stop, &start);
            s.spawn(move || {
                start.wait();
                let mut round = 0u64;
                while !stop.load(Ordering::Acquire) {
                    round += 1;
                    let snap = slot.snapshot();
                    let edges = snap.spanner().edges();
                    let e = edges[splitmix64(round ^ 0x5AFE) as usize % edges.len()];
                    snap.fail_edge(e.u, e.v);
                    if round.is_multiple_of(3) {
                        snap.heal_all();
                    }
                    std::thread::yield_now();
                }
            })
        };
        let workers: Vec<_> = (0..3u64)
            .map(|t| {
                let (slot, stop, start) = (&slot, &stop, &start);
                s.spawn(move || {
                    start.wait();
                    let mut last_slot_epoch = 0u64;
                    let mut served = 0u64;
                    let mut q = t << 48;
                    while !stop.load(Ordering::Acquire) {
                        q += 1;
                        let slot_epoch = slot.epoch();
                        assert!(
                            slot_epoch >= last_slot_epoch,
                            "slot epoch went backwards: {slot_epoch} after {last_slot_epoch}"
                        );
                        last_slot_epoch = slot_epoch;
                        let snap = slot.snapshot();
                        let a = (splitmix64(q) as usize % n) as u32;
                        let b = (splitmix64(q ^ 0xB0B) as usize % n) as u32;
                        if a == b {
                            continue;
                        }
                        if let Ok(resp) = snap.route(a, b, q) {
                            assert_eq!(resp.path.source(), a);
                            assert_eq!(resp.path.destination(), b);
                            assert!(
                                resp.path.is_valid_in(snap.spanner()),
                                "path left the snapshot that served it"
                            );
                            served += 1;
                        }
                    }
                    served
                })
            })
            .collect();
        swapper.join().expect("swapper must not panic");
        mutator.join().expect("mutator must not panic");
        workers
            .into_iter()
            .map(|w| w.join().expect("worker must not panic"))
            .sum::<u64>()
    });
    assert!(total_served > 0, "swap churn must not starve the routers");
    assert_eq!(slot.epoch(), 10, "every swap must be counted exactly once");
    // The final generation still serves after churn settles.
    slot.snapshot().heal_all();
    assert!(slot.snapshot().route(0, 1, u64::MAX).is_ok());
}

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn theorem2_at_n_1024() {
    let n = 1024;
    let delta = 320; // ≈ n^{0.83}
    let g = random_regular(n, delta, 1);
    let est = spectral_expansion(&g, 1);
    assert!(est.is_near_ramanujan(1.3), "λ = {}", est.lambda);
    let sp = build_expander_spanner(&g, ExpanderSpannerParams::paper(n, delta), 2);
    let ratio = sp.h.m() as f64 / (n as f64).powf(5.0 / 3.0);
    assert!((0.3..0.8).contains(&ratio), "size ratio {ratio}");
    let dist = distance_stretch_edges(&g, &sp.h, 3);
    assert_eq!(
        dist.overflow_pairs, 0,
        "some edge lost its 3-hop substitute"
    );
}

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn algorithm1_at_n_1000() {
    let n = 1000;
    let delta = 100; // = n^{2/3}
    let g = random_regular(n, delta, 3);
    let sp = build_regular_spanner(&g, RegularSpannerParams::calibrated(n, delta), 4);
    assert!(sp.h.m() < g.m());
    let dist = distance_stretch_edges(&g, &sp.h, 3);
    assert_eq!(dist.overflow_pairs, 0);
}

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn distributed_equivalence_at_n_512() {
    let n = 512;
    let delta = 64;
    let g = random_regular(n, delta, 5);
    let mut params = RegularSpannerParams::calibrated(n, delta);
    params.safe_reinsert = false;
    let dist = dcspan::local::distributed_regular_spanner(&g, params, 6, 8);
    let seq = dcspan::core::regular::build_regular_spanner_pair_sampled(&g, params, 6);
    assert!(dist.endpoints_agree);
    assert_eq!(dist.h, seq.h);
}
