//! Larger-scale stress tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`). These exercise the constructions
//! at sizes closer to the bench scale and pin down scaling-sensitive
//! invariants that small unit tests cannot see.

use dcspan::core::eval::distance_stretch_edges;
use dcspan::core::expander::{build_expander_spanner, ExpanderSpannerParams};
use dcspan::core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan::gen::regular::random_regular;
use dcspan::spectral::expansion::spectral_expansion;

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn theorem2_at_n_1024() {
    let n = 1024;
    let delta = 320; // ≈ n^{0.83}
    let g = random_regular(n, delta, 1);
    let est = spectral_expansion(&g, 1);
    assert!(est.is_near_ramanujan(1.3), "λ = {}", est.lambda);
    let sp = build_expander_spanner(&g, ExpanderSpannerParams::paper(n, delta), 2);
    let ratio = sp.h.m() as f64 / (n as f64).powf(5.0 / 3.0);
    assert!((0.3..0.8).contains(&ratio), "size ratio {ratio}");
    let dist = distance_stretch_edges(&g, &sp.h, 3);
    assert_eq!(
        dist.overflow_pairs, 0,
        "some edge lost its 3-hop substitute"
    );
}

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn algorithm1_at_n_1000() {
    let n = 1000;
    let delta = 100; // = n^{2/3}
    let g = random_regular(n, delta, 3);
    let sp = build_regular_spanner(&g, RegularSpannerParams::calibrated(n, delta), 4);
    assert!(sp.h.m() < g.m());
    let dist = distance_stretch_edges(&g, &sp.h, 3);
    assert_eq!(dist.overflow_pairs, 0);
}

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn distributed_equivalence_at_n_512() {
    let n = 512;
    let delta = 64;
    let g = random_regular(n, delta, 5);
    let mut params = RegularSpannerParams::calibrated(n, delta);
    params.safe_reinsert = false;
    let dist = dcspan::local::distributed_regular_spanner(&g, params, 6, 8);
    let seq = dcspan::core::regular::build_regular_spanner_pair_sampled(&g, params, 6);
    assert!(dist.endpoints_agree);
    assert_eq!(dist.h, seq.h);
}
