//! Smoke test: every experiment runner executes end-to-end at minimum
//! scale and produces a well-formed table. Guards the bench harnesses
//! against bitrot without paying bench-scale runtimes in CI.

use dcspan::experiments as ex;

fn check(text: &str, id: &str) {
    assert!(text.contains(id), "banner missing for {id}");
    // A separator line under the header means the table rendered.
    assert!(text.contains("---"), "no table rendered for {id}");
}

#[test]
fn all_experiments_run_at_minimum_scale() {
    let seed = 99;
    check(&ex::e1_expander::run(&[64, 96], 0.18, seed).1, "E1");
    check(&ex::e2_becchetti::run(&[64], 4, seed).1, "E2");
    check(&ex::e3_koutis_xu::run(&[96], seed).1, "E3");
    check(&ex::e4_regular::run(&[64], seed).1, "E4");
    check(&ex::e5_lower_bound::run(&[(5, 1)]).1, "E5");
    check(&ex::e6_vft::run(&[24], seed).1, "E6");
    check(&ex::e7_lemma2::run(&[8]).1, "E7");
    check(&ex::e8_matching::run(&[96], 0.2, 8, seed).1, "E8");
    check(&ex::e9_support::run(&[64], seed).1, "E9");
    check(&ex::e10_decompose::run(64, &[16], seed).1, "E10");
    check(&ex::e11_local::run(&[36], seed).1, "E11");
    check(&ex::e12_latency::run(64, 24, seed).1, "E12");
    check(&ex::e13_frontier::run(96, seed).1, "E13");
    check(&ex::e14_definition::run(64, &[16], seed).1, "E14");
    check(&ex::e15_vft_tradeoff::run(64, &[1], seed).1, "E15");
    check(&ex::e16_scaling::run(&[64, 96], seed).1, "E16");
    check(
        &ex::e17_oracle::run(&[64], 0.18, &[1, 2], 100, seed).1,
        "E17",
    );
    check(&ex::ablations::run_a1(64, seed).1, "A1");
    check(&ex::ablations::run_a2(64, seed).1, "A2");
    check(&ex::ablations::run_a3(64, 40, seed).1, "A3");
    check(&ex::sweep::sweep_theorem2(64, 0.2, 2, seed).1, "SWEEP-T2");
    check(&ex::sweep::sweep_theorem3(64, 2, seed).1, "SWEEP-T3");
}

#[test]
fn experiment_rows_serialise_to_json() {
    let (rows, _) = ex::e5_lower_bound::run(&[(5, 1)]);
    let json = ex::record::to_json_pretty(&rows).unwrap();
    assert!(json.starts_with('['));
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(!parsed.as_array().unwrap().is_empty());
}
