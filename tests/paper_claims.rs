//! Integration tests pinning the paper's headline claims at test scale —
//! small versions of the experiment suite (E1–E11 run their own tests in
//! `dcspan-experiments`; these exercise the claims through the facade).

use dcspan::gen::fan::FanGraph;
use dcspan::gen::lower_bound::LowerBoundGraph;
use dcspan::gen::setsystem::LineSystem;
use dcspan::graph::Path;
use dcspan::routing::problem::RoutingProblem;
use dcspan::routing::routing::Routing;
use dcspan::routing::shortest::shortest_path_routing;

#[test]
fn lemma1_dc_spanner_implies_both_stretches() {
    // A DC-spanner is both an α-distance and β-congestion spanner: check
    // the distance half constructively via the all-edges routing problem.
    let n = 64;
    let g = dcspan::gen::regular::random_regular(n, 16, 1);
    let params = dcspan::core::regular::RegularSpannerParams::calibrated(n, 16);
    let sp = dcspan::core::regular::build_regular_spanner(&g, params, 2);
    let all_edges = RoutingProblem::all_edges(&g);
    let router = dcspan::routing::replace::SpannerDetourRouter::new(
        &sp.h,
        dcspan::routing::replace::DetourPolicy::UniformShortest,
    );
    let routing = dcspan::routing::replace::route_matching(&router, &all_edges, 3).unwrap();
    assert!(routing.is_valid_for(&all_edges, &sp.h));
    // Every edge of G replaced by a ≤3-hop path in H ⇒ 3-distance spanner.
    assert!(routing.max_length() <= 3);
}

#[test]
fn lemma18_fan_bound_is_met_exactly() {
    // β ≥ x/4 with x = 2k−1 for the optimal spanner; our measured β at the
    // special node is exactly k (all k replacement paths cross s, the base
    // routing has congestion ≤ 2).
    for k in [3usize, 6, 10] {
        let fan = FanGraph::new(k);
        let h = fan.optimal_spanner();
        let pairs = fan.adversarial_routing_pairs();
        let problem = RoutingProblem::from_pairs(pairs.clone());
        let base = Routing::new(pairs.iter().map(|&(u, v)| Path::new(vec![u, v])).collect());
        let sub = shortest_path_routing(&h, &problem).unwrap();
        let beta = sub.congestion(fan.graph.n()) as f64 / base.congestion(fan.graph.n()) as f64;
        assert!(
            beta >= (2.0 * k as f64 - 1.0) / 4.0,
            "k={k}: β = {beta} below Lemma 18's bound"
        );
        // All substitutes cross s.
        for p in sub.paths() {
            assert!(p.nodes().contains(&fan.s()), "k={k}: a path avoided s");
        }
    }
}

#[test]
fn theorem4_composite_scales_like_n_to_seventh_sixths() {
    // |E(H)| / n^{7/6} stays bounded below across sizes.
    let mut ratios = Vec::new();
    for (q, blocks) in [(5usize, 1usize), (5, 4), (7, 2)] {
        let lb = LowerBoundGraph::new(q, blocks);
        let h = lb.optimal_spanner();
        ratios.push(h.m() as f64 / (lb.graph.n() as f64).powf(7.0 / 6.0));
    }
    for r in &ratios {
        assert!(*r > 0.3, "ratio {r} collapsed — not Ω(n^{{7/6}})");
    }
}

#[test]
fn lemma19_set_system_properties() {
    // (i) every element in Θ(n^{1/6}) subsets — here exactly q;
    // (ii) pairwise intersections ≤ 1.
    let s = LineSystem::new(7, 3);
    let freq = s.element_frequencies();
    assert!(freq.iter().all(|&f| f == 7));
    assert!(s.verify_pairwise_intersections());
    assert_eq!(s.subsets().len(), s.num_elements());
}

#[test]
fn corollary3_distributed_equals_sequential() {
    let n = 64;
    let delta = 16;
    let g = dcspan::gen::regular::random_regular(n, delta, 5);
    let mut params = dcspan::core::regular::RegularSpannerParams::calibrated(n, delta);
    params.safe_reinsert = false;
    let dist = dcspan::local::distributed_regular_spanner(&g, params, 6, 2);
    let seq = dcspan::core::regular::build_regular_spanner_pair_sampled(&g, params, 6);
    assert_eq!(dist.rounds, 5);
    assert!(dist.endpoints_agree);
    assert_eq!(dist.h, seq.h);
}

#[test]
fn table1_theorem2_row_shape_at_test_scale() {
    let (rows, _) = dcspan::experiments::e1_expander::run(&[96], 0.18, 99);
    let r = &rows[0];
    assert!(r.alpha <= 3.0);
    assert!(r.edges_h < r.edges_g);
}

#[test]
fn table1_theorem3_row_shape_at_test_scale() {
    let (rows, _) = dcspan::experiments::e4_regular::run(&[96], 99);
    let r = &rows[0];
    assert!(r.alpha <= 3.0);
    assert!((r.matching_congestion as f64) <= r.lemma17_bound);
}
