//! Cross-crate integration tests: the full DC-spanner pipeline exercised
//! through the `dcspan` facade, generate → verify spectrum → build spanner
//! → decompose routing → check both stretches.

use dcspan::core::eval::{
    distance_stretch_edges, evaluate_dc_spanner, general_substitute_congestion,
};
use dcspan::core::expander::{
    build_expander_spanner, ExpanderMatchingRouter, ExpanderSpannerParams,
};
use dcspan::core::regular::{build_regular_spanner, RegularSpannerParams};
use dcspan::gen::regular::random_regular;
use dcspan::routing::problem::RoutingProblem;
use dcspan::routing::replace::{DetourPolicy, SpannerDetourRouter};
use dcspan::routing::shortest::random_shortest_path_routing;
use dcspan::spectral::expansion::spectral_expansion;

#[test]
fn theorem3_pipeline_end_to_end() {
    let n = 125;
    let delta = 26; // ≥ n^{2/3} = 25
    let g = random_regular(n, delta, 11);
    let params = RegularSpannerParams::calibrated(n, delta);
    let sp = build_regular_spanner(&g, params, 12);

    // Spanner invariants.
    assert!(sp.h.is_subgraph_of(&g));
    assert!(sp.sampled.is_subgraph_of(&sp.h));
    assert!(dcspan::graph::traversal::is_connected(&sp.h));

    // α ≤ 3 with safe mode on.
    let dist = distance_stretch_edges(&g, &sp.h, 3);
    assert_eq!(dist.overflow_pairs, 0);
    assert!(dist.max_stretch <= 3.0);

    // Full DC evaluation with matching + general problems.
    let router = SpannerDetourRouter::new(&sp.h, DetourPolicy::UniformUpTo3);
    let matching = RoutingProblem::random_matching(n, n / 4, 13);
    let problem = RoutingProblem::random_permutation(n, 14);
    let base = random_shortest_path_routing(&g, &problem, 15).unwrap();
    let eval = evaluate_dc_spanner(&g, &sp.h, &router, &matching, Some(&base), 16).unwrap();

    assert!(eval.matching_alpha <= 3);
    // Lemma 17: matching congestion ≤ 1 + 2√Δ.
    assert!((eval.matching_congestion as f64) <= 1.0 + 2.0 * (delta as f64).sqrt());
    let gen = eval.general.unwrap();
    assert!(gen.report.lemma21_holds(n));
    assert!(gen.alpha <= 3.0);
    // β within the O(√Δ log n) envelope.
    assert!(gen.beta() <= 4.0 * (delta as f64).sqrt() * (n as f64).log2());
}

#[test]
fn theorem2_pipeline_end_to_end() {
    let n = 128;
    let delta = 64; // n^{2/3+ε} with ε ≈ 0.19
    let g = random_regular(n, delta, 21);

    // Premise: near-Ramanujan expansion.
    let est = spectral_expansion(&g, 22);
    assert!(est.is_near_ramanujan(1.3), "λ = {}", est.lambda);

    let sp = build_expander_spanner(&g, ExpanderSpannerParams::paper(n, delta), 23);
    assert!(sp.h.is_subgraph_of(&g));
    assert!(sp.h.m() < g.m());

    let dist = distance_stretch_edges(&g, &sp.h, 3);
    assert_eq!(dist.overflow_pairs, 0, "some edge has no ≤3-hop substitute");

    let router = ExpanderMatchingRouter::new(&g, &sp.h);
    let problem = RoutingProblem::random_permutation(n, 24);
    let base = random_shortest_path_routing(&g, &problem, 25).unwrap();
    let gen = general_substitute_congestion(n, &base, &router, 26).unwrap();
    assert!(gen.alpha <= 3.0, "α = {}", gen.alpha);
    let log2 = (n as f64).log2();
    assert!(gen.beta() <= 4.0 * log2 * log2, "β = {}", gen.beta());
}

#[test]
fn facade_reexports_are_usable() {
    // The facade exposes the graph types directly.
    let g = dcspan::Graph::from_edges(3, vec![(0, 1), (1, 2)]);
    assert_eq!(g.m(), 2);
    let p = dcspan::Path::new(vec![0, 1, 2]);
    assert!(p.is_valid_in(&g));
    let mut b = dcspan::GraphBuilder::new(2);
    b.add_edge(0, 1);
    assert_eq!(b.build().m(), 1);
}

#[test]
fn substitute_routings_are_never_invalid() {
    // Sweep seeds: whatever the sample, the substitute routing must be a
    // valid routing of the original problem inside the spanner.
    for seed in 0..5u64 {
        let n = 64;
        let delta = 16;
        let g = random_regular(n, delta, seed);
        let params = RegularSpannerParams::calibrated(n, delta);
        let sp = build_regular_spanner(&g, params, seed ^ 0xAB);
        let router = SpannerDetourRouter::new(&sp.h, DetourPolicy::UniformUpTo3);
        let problem = RoutingProblem::random_pairs(n, 30, seed ^ 0xCD);
        let base = random_shortest_path_routing(&g, &problem, seed ^ 0xEF).unwrap();
        let gen = general_substitute_congestion(n, &base, &router, seed ^ 0x12).unwrap();
        assert!(
            gen.report.routing.is_valid_for(&problem, &sp.h),
            "seed {seed}"
        );
    }
}
