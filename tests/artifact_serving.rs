//! Build/serve split acceptance test (ISSUE acceptance criteria): an
//! `n = 2000` Theorem 3 artifact saved to disk, checksum-verified, and
//! reloaded into a fresh [`Oracle`] answers 5 000 replayed queries
//! byte-identically to a same-seed in-process `Oracle::from_algo` build —
//! including under an injected fault schedule — and corrupting the file
//! surfaces as a typed [`StoreError`], never a panic.

use dcspan::core::serve::SpannerAlgo;
use dcspan::experiments::workloads;
use dcspan::oracle::{Oracle, OracleConfig};
use dcspan::routing::RoutingProblem;
use dcspan::store::{SpannerArtifact, StoreError};

const N: usize = 2000;
const SEED: u64 = 20240620;
const QUERIES: usize = 5000;

/// Replay `problem` sequentially through both oracles with identical
/// query ids, asserting every outcome (answer or typed rejection) is
/// identical, and return how many answered.
fn assert_identical_replay(
    rebuilt: &Oracle,
    loaded: &Oracle,
    problem: &RoutingProblem,
    id_base: u64,
) -> usize {
    let mut answered = 0;
    for (q, &(u, v)) in problem.pairs().iter().enumerate() {
        let id = id_base + q as u64;
        let a = rebuilt.route(u, v, id);
        let b = loaded.route(u, v, id);
        assert_eq!(a, b, "query {id} ({u}, {v}) diverged");
        answered += usize::from(a.is_ok());
    }
    answered
}

#[test]
fn loaded_artifact_serves_bit_identically_to_in_process_build() {
    let delta = workloads::theorem3_degree(N);
    let g = workloads::regime_expander(N, delta, SEED);
    let config = OracleConfig {
        seed: SEED,
        ..OracleConfig::default()
    };

    // Build → save → verify → load → restore, through the real files.
    let artifact = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, SEED);
    let path = std::env::temp_dir().join(format!(
        "dcspan-artifact-serving-{}.bin",
        std::process::id()
    ));
    artifact.save(&path).expect("save artifact");
    let meta = dcspan::store::verify_file(&path).expect("verify artifact");
    assert_eq!(meta.n, N);
    assert_eq!(meta.seed, SEED);
    assert_eq!(meta.algo, SpannerAlgo::Theorem3);
    let loaded_artifact = SpannerArtifact::load(&path).expect("load artifact");
    assert_eq!(loaded_artifact, artifact, "decode must be bit-faithful");

    let loaded = Oracle::from_artifact(loaded_artifact, config).expect("restore oracle");
    let rebuilt = Oracle::from_algo(&g, SpannerAlgo::Theorem3, config);
    assert_eq!(rebuilt.spanner().edges(), loaded.spanner().edges());
    assert_eq!(
        rebuilt.index().stats().missing_edges,
        loaded.index().stats().missing_edges
    );

    // Healthy replay: 5 000 random-pair queries, identical outcomes.
    let problem = RoutingProblem::random_pairs(N, QUERIES, SEED ^ 0xD1FF);
    let answered = assert_identical_replay(&rebuilt, &loaded, &problem, 0);
    assert!(
        answered * 10 >= QUERIES * 9,
        "only {answered}/{QUERIES} healthy queries answered"
    );

    // Injected fault schedule: kill the same nodes and spanner edges on
    // both oracles, replay again, heal, and replay once more. Degraded
    // answers (filtered detours, survivor BFS) must match rung for rung.
    for (fault_step, kill) in [(1u64, 17u32), (2, 63)].iter().enumerate() {
        let stride = (N as u32) / (11 + fault_step as u32);
        let mut node = kill.1;
        for _ in 0..40 {
            rebuilt.faults().fail_node(node);
            loaded.faults().fail_node(node);
            node = (node + stride) % N as u32;
        }
        for edge_id in (kill.1 as usize..rebuilt.spanner().m())
            .step_by(97)
            .take(60)
        {
            rebuilt.faults().fail_edge_id(edge_id);
            loaded.faults().fail_edge_id(edge_id);
        }
        assert_eq!(rebuilt.faults().epoch(), loaded.faults().epoch());
        let faulted = RoutingProblem::random_pairs(N, QUERIES / 2, SEED ^ kill.0);
        assert_identical_replay(
            &rebuilt,
            &loaded,
            &faulted,
            (QUERIES * (fault_step + 1)) as u64,
        );
    }
    rebuilt.faults().heal_all();
    loaded.faults().heal_all();
    let healed = RoutingProblem::random_pairs(N, QUERIES / 2, SEED ^ 0x8EA1);
    assert_identical_replay(&rebuilt, &loaded, &healed, (QUERIES * 4) as u64);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_artifact_is_a_typed_error_never_a_panic() {
    let n = 200;
    let delta = workloads::theorem3_degree(n);
    let g = workloads::regime_expander(n, delta, 7);
    let artifact = Oracle::build_artifact(&g, SpannerAlgo::Theorem3, 7);
    let bytes = artifact.encode().expect("encode artifact");

    // A representative byte in every region: magic, version, header
    // checksum, section table, and each payload — all typed errors.
    let mut probes = vec![0usize, 9, 21, 30];
    let step = (bytes.len() - 64).max(1) / 16;
    probes.extend((64..bytes.len()).step_by(step.max(1)));
    for i in probes {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x40;
        let decode = SpannerArtifact::decode(&corrupt);
        assert!(decode.is_err(), "flip at byte {i} decoded successfully");
        assert!(dcspan::store::verify(&corrupt).is_err(), "verify at {i}");
    }
    assert!(matches!(
        SpannerArtifact::decode(&bytes[..bytes.len() / 2]),
        Err(StoreError::Truncated) | Err(StoreError::ChecksumMismatch { .. })
    ));
}
