//! Serving-subsystem acceptance test (ISSUE acceptance criteria): a
//! 10 000-query matching workload against an oracle over an `n = 3000`
//! expander measures distance stretch α ≤ 3, and `substitute_routing`
//! returns bit-identical answers under 1-thread and 4-thread rayon
//! pools for a fixed seed.

use dcspan::core::serve::SpannerAlgo;
use dcspan::experiments::workloads;
use dcspan::oracle::{Oracle, OracleConfig};

const N: usize = 3000;
const DELTA: usize = 64;
const SEED: u64 = 20240617;

#[test]
fn matching_workload_serves_10k_queries_with_stretch_three() {
    let g = workloads::regime_expander(N, DELTA, SEED);
    // Survival probability 0.55 keeps ~14 three-hop detours per missing
    // edge in expectation — α ≤ 3 with overwhelming margin at this seed.
    let oracle = Oracle::from_algo(
        &g,
        SpannerAlgo::Theorem2WithProb(0.55),
        OracleConfig {
            seed: SEED ^ 0xACCE55,
            ..OracleConfig::default()
        },
    );
    assert!(oracle.spanner().m() < g.m(), "spanner must sparsify");

    let matching = workloads::removed_edge_matching(&g, oracle.spanner());
    let pairs = matching.pairs().len();
    assert!(pairs > 0, "expander regime must shed edges");

    // 10k queries: cycle the missing-edge matching with fresh query ids.
    let cycles = 10_000usize.div_ceil(pairs);
    let mut max_hops = 0usize;
    for cycle in 0..cycles {
        let report = oracle.substitute_routing(&matching, (cycle * pairs) as u64);
        assert_eq!(
            report.error_count(),
            0,
            "errors: {:?}",
            report.error_counts()
        );
        let routing = report
            .into_routing()
            .expect("matching must be routable in the spanner");
        max_hops = max_hops.max(routing.max_length());
    }

    let stats = oracle.stats();
    assert!(stats.queries >= 10_000, "served {} queries", stats.queries);
    assert_eq!(stats.rejected(), 0);
    assert!(max_hops <= 3, "measured α = {max_hops} > 3");
    // Matching traffic goes through the index, never the BFS fallback.
    assert_eq!(stats.bfs, 0, "{} queries fell back to BFS", stats.bfs);
    assert!(oracle.live_congestion() >= 1);

    // Determinism across pool widths: same query ids ⇒ same paths,
    // whether one worker serves the whole problem or four share it.
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let pool4 = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let serial = pool1
        .install(|| oracle.substitute_routing(&matching, 777))
        .into_routing()
        .unwrap();
    let parallel = pool4
        .install(|| oracle.substitute_routing(&matching, 777))
        .into_routing()
        .unwrap();
    assert_eq!(serial.paths(), parallel.paths());
}
